"""Monte-Carlo read-time-penalty study (Section III.B: Fig. 5, Table IV).

The paper's key methodological point: simulating full parasitic netlists
for thousands of samples is prohibitive, but the analytical formula of
Section III.A turns each sampled RC variation into a tdp value in
microseconds of CPU time.  The flow here follows the paper exactly:

1. the parameterized LPE tool samples the patterning parameters and
   extracts the bit-line ``(Rvar, Cvar)`` distribution (the expensive but
   still fast part — a quasi-2D extraction per sample);
2. the analytical formula maps every ``(Rvar, Cvar)`` sample to a tdp;
3. the tdp distribution (Fig. 5) and its standard deviation (Table IV) are
   reported per option and — for LE3 — per overlay budget.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..extraction.lpe import BatchRCVariation, ParameterizedLPE, RCVariation
from ..layout.array import SRAMArrayLayout, generate_array_layout
from ..patterning import create_option
from ..patterning.base import PatterningOption
from ..technology.node import TechnologyNode
from ..variability.doe import DOEPoint, StudyDOE, paper_doe
from ..variability.statistics import Histogram, SummaryStatistics
from .analytical import AnalyticalDelayModel, model_from_technology
from .operations import (
    OperationResponseSurface,
    OperationSimulators,
    calibrate_response_surface,
    create_operation,
)
from .results import MonteCarloTdpRecord, OperationSigmaRow, TdpSigmaRow


class MonteCarloStudyError(RuntimeError):
    """Raised when the Monte-Carlo study cannot be evaluated."""


#: Per-process study instance installed by the pool initializer, so the
#: study is pickled once per worker process instead of once per point and
#: each worker's layout/LPE caches amortise across its points.
_worker_study: Optional["MonteCarloTdpStudy"] = None


def _init_worker_study(study: "MonteCarloTdpStudy") -> None:
    global _worker_study
    _worker_study = study


def _tdp_record_worker(point: DOEPoint, bins: int):
    """Module-level worker so process pools can pickle the call."""
    return _worker_study.tdp_record(point, bins=bins)


class MonteCarloTdpStudy:
    """Monte-Carlo distribution of the read-time penalty.

    Parameters
    ----------
    node:
        Technology node; its variation assumptions provide the sampling
        budgets (the LE3 overlay budget is overridden per study point).
    doe:
        Experiment grid (options, overlay sweep, array sizes).
    model:
        Analytical delay model; derived from the node when omitted.
    n_samples:
        Monte-Carlo samples per study point.
    seed:
        Base random seed; each study point derives its own stream from it
        so points are independent yet reproducible.
    batch:
        When true (default) every study point runs through the vectorised
        sampling/printing/extraction path; ``batch=False`` keeps the
        scalar per-sample loop as the reference oracle.  Both paths use
        identical random streams, so they agree to round-off.
    """

    def __init__(
        self,
        node: TechnologyNode,
        doe: Optional[StudyDOE] = None,
        model: Optional[AnalyticalDelayModel] = None,
        n_samples: int = 1000,
        seed: int = 2015,
        batch: bool = True,
    ) -> None:
        if n_samples < 2:
            raise MonteCarloStudyError("the Monte-Carlo study needs at least two samples")
        self.node = node
        self.doe = doe if doe is not None else paper_doe()
        self.model = model if model is not None else model_from_technology(
            node, n_bitline_pairs=self.doe.n_bitline_pairs
        )
        self.n_samples = n_samples
        self.seed = seed
        self.batch = batch
        self._layout_cache: Dict[int, SRAMArrayLayout] = {}
        self._lpe_cache: Dict[Optional[float], ParameterizedLPE] = {}
        self._surface_cache: Dict[Tuple[str, int, float], OperationResponseSurface] = {}
        self._operation_simulators: Optional[OperationSimulators] = None

    def __getstate__(self):
        # Ship a lean study to process-pool workers: the layout and LPE
        # caches are cheap to rebuild and expensive to serialise per point.
        state = self.__dict__.copy()
        state["_layout_cache"] = {}
        state["_lpe_cache"] = {}
        state["_surface_cache"] = {}
        state["_operation_simulators"] = None
        return state

    # -- plumbing -----------------------------------------------------------------------

    def _layout_for(self, n_wordlines: int) -> SRAMArrayLayout:
        if n_wordlines not in self._layout_cache:
            self._layout_cache[n_wordlines] = generate_array_layout(
                n_wordlines=n_wordlines,
                n_bitline_pairs=self.doe.n_bitline_pairs,
                node=self.node,
            )
        return self._layout_cache[n_wordlines]

    def _node_for_point(self, point: DOEPoint) -> TechnologyNode:
        if point.overlay_three_sigma_nm is None:
            return self.node
        return self.node.with_variations(
            self.node.variations.for_overlay(point.overlay_three_sigma_nm)
        )

    def _lpe_for_point(self, point: DOEPoint) -> ParameterizedLPE:
        """One LPE instance per overlay budget (the only node-varying knob).

        Sharing the instance across study points lets its nominal-extraction
        cache serve every repeated sweep over the same layouts.
        """
        key = point.overlay_three_sigma_nm
        if key not in self._lpe_cache:
            self._lpe_cache[key] = ParameterizedLPE(self._node_for_point(point))
        return self._lpe_cache[key]

    def _seed_for_point(self, point: DOEPoint) -> int:
        # crc32 rather than hash(): stable across interpreter invocations
        # and hash-seed randomisation, so process-pool workers and the
        # serial path derive identical per-point streams.
        return zlib.crc32(f"{self.seed}/{point.label}".encode()) % (2**31)

    # -- sampling ------------------------------------------------------------------------

    def rc_variation_samples(self, point: DOEPoint) -> List[RCVariation]:
        """The LPE Monte-Carlo loop: per-sample (Rvar, Cvar) of the bit line."""
        option = create_option(point.option_name)
        layout = self._layout_for(point.n_wordlines)
        bl_net, _ = layout.central_pair_nets()
        lpe = self._lpe_for_point(point)
        return lpe.monte_carlo_variations(
            layout.metal1_pattern,
            option,
            bl_net,
            n_samples=self.n_samples,
            seed=self._seed_for_point(point),
        )

    def _central_nets(self, point: DOEPoint) -> Tuple[str, str]:
        """Net names of the central bit line and its VSS rail."""
        layout = self._layout_for(point.n_wordlines)
        bl_net, _blb, vss_net, _vdd = layout.central_column_nets()
        return bl_net, vss_net

    def _variation_samples_batch_multi(
        self, point: DOEPoint, nets: Tuple[str, ...]
    ) -> Dict[str, BatchRCVariation]:
        option = create_option(point.option_name)
        layout = self._layout_for(point.n_wordlines)
        lpe = self._lpe_for_point(point)
        return lpe.monte_carlo_variations_batch_multi(
            layout.metal1_pattern,
            option,
            nets,
            n_samples=self.n_samples,
            seed=self._seed_for_point(point),
        )

    def rc_variation_samples_batch(self, point: DOEPoint) -> BatchRCVariation:
        """The vectorised LPE Monte-Carlo loop: (Rvar, Cvar) arrays."""
        bl_net, _ = self._central_nets(point)
        return self._variation_samples_batch_multi(point, (bl_net,))[bl_net]

    def rail_variation_samples_batch(self, point: DOEPoint) -> BatchRCVariation:
        """Per-sample (Rvar, Cvar) of the central column's VSS rail.

        Drawn with the *same* per-point seed as
        :meth:`rc_variation_samples_batch`, so sample ``i`` of the rail
        arrays corresponds to the same printed wafer as sample ``i`` of
        the bit-line arrays (the sampler stream is seed-deterministic).
        """
        _, vss_net = self._central_nets(point)
        return self._variation_samples_batch_multi(point, (vss_net,))[vss_net]

    def column_variation_samples_batch(
        self, point: DOEPoint
    ) -> Tuple[BatchRCVariation, BatchRCVariation]:
        """Bit-line and VSS-rail sample batches from one draw/print/extract.

        The expensive stages run once for both nets; the operation suite's
        margin twins consume the pair.
        """
        bl_net, vss_net = self._central_nets(point)
        variations = self._variation_samples_batch_multi(point, (bl_net, vss_net))
        return variations[bl_net], variations[vss_net]

    def tdp_record(self, point: DOEPoint, bins: int = 30) -> MonteCarloTdpRecord:
        """Fig. 5 record for one study point: tdp samples, summary, histogram."""
        if self.batch:
            variations = self.rc_variation_samples_batch(point)
            tdp_array = self.model.tdp_percent(
                point.n_wordlines, variations.rvar, variations.cvar
            )
            tdp_percent = tuple(float(value) for value in tdp_array)
        else:
            tdp_percent = tuple(
                self.model.tdp_percent(point.n_wordlines, variation.rvar, variation.cvar)
                for variation in self.rc_variation_samples(point)
            )
        summary = SummaryStatistics.from_samples(tdp_percent)
        histogram = Histogram.from_samples(tdp_percent, bins=bins)
        return MonteCarloTdpRecord(
            option_name=point.option_name,
            overlay_three_sigma_nm=point.overlay_three_sigma_nm,
            n_wordlines=point.n_wordlines,
            n_samples=self.n_samples,
            tdp_percent_samples=tdp_percent,
            summary=summary,
            histogram=histogram,
        )

    def tdp_records(
        self,
        points: Sequence[DOEPoint],
        bins: int = 30,
        workers: Optional[int] = None,
    ) -> List[MonteCarloTdpRecord]:
        """Fig. 5 records for several study points, optionally in parallel.

        ``workers`` > 1 fans the per-point work (layout, printing,
        extraction, statistics) out over a process pool; the per-point
        seeds are derived with a process-stable hash, so the records are
        identical to the serial ones in any order.
        """
        if workers is not None and workers > 1 and len(points) > 1:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker_study,
                initargs=(self,),
            ) as pool:
                futures = [
                    pool.submit(_tdp_record_worker, point, bins) for point in points
                ]
                return [future.result() for future in futures]
        return [self.tdp_record(point, bins=bins) for point in points]

    # -- operation-suite Monte-Carlo twins -------------------------------------------------

    def response_surface(
        self,
        operation_name: str,
        n_wordlines: int,
        simulators: Optional[OperationSimulators] = None,
        delta: float = 0.05,
    ) -> OperationResponseSurface:
        """The operation's calibrated (Rvar, Cvar) response surface (cached).

        Calibration costs a handful of full simulations per (operation,
        array size, delta); everything downstream is vectorised over the
        sample batch, which is the "batched where the analytical layer
        allows" path of the operation suite.  The surface is a
        deterministic function of the node alone, so which simulator
        bundle performs the calibration does not affect the cached values.
        """
        key = (operation_name, n_wordlines, delta)
        surface = self._surface_cache.get(key)
        if surface is None:
            if simulators is None:
                if self._operation_simulators is None:
                    self._operation_simulators = OperationSimulators(
                        self.node, n_bitline_pairs=self.doe.n_bitline_pairs
                    )
                simulators = self._operation_simulators
            surface = calibrate_response_surface(
                create_operation(operation_name), simulators, n_wordlines, delta=delta
            )
            self._surface_cache[key] = surface
        return surface

    def operation_sigma_rows(
        self,
        operation_name: str,
        n_wordlines: int = 64,
        simulators: Optional[OperationSimulators] = None,
        delta: float = 0.05,
    ) -> List[OperationSigmaRow]:
        """Table IV's twin for one operation: σ of the relative impact (%).

        The batched LPE Monte-Carlo provides the per-sample (Rvar, Cvar)
        of the bit line — and, from the same seeded draw, the Rvar of the
        VSS rail, which is what the margins couple to — exactly as for the
        read-time study; the calibrated response surface maps the whole
        batch to per-sample impacts in one vectorised evaluation, and the
        rows report the distribution's σ per option and overlay budget.
        """
        surface = self.response_surface(
            operation_name, n_wordlines, simulators=simulators, delta=delta
        )
        rows: List[OperationSigmaRow] = []
        for point in self.doe.monte_carlo_points(n_wordlines=n_wordlines):
            variations, rails = self.column_variation_samples_batch(point)
            impacts = surface.change_percent(
                variations.rvar, variations.cvar, rails.rvar
            )
            summary = SummaryStatistics.from_samples(tuple(float(v) for v in impacts))
            rows.append(
                OperationSigmaRow(
                    operation=operation_name,
                    array_label=point.array_label,
                    option_name=point.option_name,
                    overlay_three_sigma_nm=point.overlay_three_sigma_nm,
                    sigma_percent=summary.std,
                )
            )
        return rows

    def sigma_rows(
        self,
        operation_name: str,
        n_wordlines: int = 64,
        workers: Optional[int] = None,
    ) -> List[OperationSigmaRow]:
        """Impact-σ rows of any operation, in one uniform row type.

        ``read`` goes through the paper's analytical tdp formula (the
        Table IV path, batched and pool-parallelisable); the other
        operations go through their calibrated response surfaces.  Either
        way the result is a list of :class:`OperationSigmaRow`, which is
        what the declarative API's ``monte_carlo`` experiments consume.
        """
        if operation_name == "read":
            return [
                OperationSigmaRow(
                    operation="read",
                    array_label=row.array_label,
                    option_name=row.option_name,
                    overlay_three_sigma_nm=row.overlay_three_sigma_nm,
                    sigma_percent=row.sigma_percent,
                )
                for row in self.table4(n_wordlines=n_wordlines, workers=workers)
            ]
        return self.operation_sigma_rows(operation_name, n_wordlines=n_wordlines)

    @classmethod
    def from_spec(cls, spec) -> "MonteCarloTdpStudy":
        """Build a Monte-Carlo study from an
        :class:`~repro.core.spec.ExperimentSpec` (sample count and seed
        come from the spec's operation/execution sections).  Prefer
        :func:`repro.api.run`; this hook exists for callers that need the
        study object itself."""
        return cls(
            spec.technology.build(),
            doe=spec.array.to_doe(),
            n_samples=spec.operation.samples,
            seed=spec.execution.seed,
        )

    # -- paper experiments ------------------------------------------------------------------

    def figure5(
        self,
        n_wordlines: int = 64,
        overlay_three_sigma_nm: float = 8.0,
        bins: int = 30,
        workers: Optional[int] = None,
    ) -> List[MonteCarloTdpRecord]:
        """Fig. 5: tdp distributions of the three options at 8 nm OL, n = 64."""
        points = []
        for option_name in self.doe.option_names:
            overlay = (
                overlay_three_sigma_nm if option_name.upper().startswith("LE") else None
            )
            points.append(
                DOEPoint(
                    n_wordlines=n_wordlines,
                    option_name=option_name,
                    overlay_three_sigma_nm=overlay,
                )
            )
        return self.tdp_records(points, bins=bins, workers=workers)

    def table4(
        self, n_wordlines: int = 64, workers: Optional[int] = None
    ) -> List[TdpSigmaRow]:
        """Table IV: tdp standard deviation per option and OL budget."""
        points = self.doe.monte_carlo_points(n_wordlines=n_wordlines)
        records = self.tdp_records(points, workers=workers)
        return [
            TdpSigmaRow(
                array_label=point.array_label,
                option_name=point.option_name,
                overlay_three_sigma_nm=point.overlay_three_sigma_nm,
                sigma_percent=record.sigma_percent,
            )
            for point, record in zip(points, records)
        ]

    def overlay_sensitivity(
        self,
        option_name: str = "LELELE",
        n_wordlines: int = 64,
        workers: Optional[int] = None,
    ) -> List[Tuple[float, float]]:
        """σ(tdp) versus overlay budget for one litho-etch option.

        The data behind the paper's conclusion that the OL budget is the
        decisive knob for LE3: returns ``(overlay_nm, sigma_percent)``
        pairs over the DOE's overlay sweep.
        """
        points = [
            DOEPoint(
                n_wordlines=n_wordlines,
                option_name=option_name,
                overlay_three_sigma_nm=budget,
            )
            for budget in self.doe.overlay_budgets_nm
        ]
        records = self.tdp_records(points, workers=workers)
        return [
            (point.overlay_three_sigma_nm, record.sigma_percent)
            for point, record in zip(points, records)
        ]
