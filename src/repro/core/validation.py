"""Formula-versus-simulation validation (Tables II and III).

Table II compares the *nominal* read time predicted by the lumped-RC
formula with the simulated one across the DOE array sizes: the formula
systematically underestimates (it is a lumped model of a distributed line
and ignores vias, leakage and the VSS return path) but preserves the
ordering and rough scaling — exactly the paper's observation.

Table III compares the *penalty* (tdp) instead: because tdp is a ratio,
most lumped-model errors cancel and the formula tracks the simulation
closely for LE3 and EUV; the known exception is SADP at large arrays,
where the anti-correlated VSS-rail resistance (present in the simulation,
absent from the formula) pushes the simulated tdp up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sram.read_path import ReadPathSimulator
from ..technology.node import TechnologyNode
from ..variability.doe import StudyDOE, paper_doe
from .analytical import AnalyticalDelayModel, model_from_technology
from .results import FormulaVsSimulationTdRow, FormulaVsSimulationTdpRow
from .worst_case import WorstCaseStudy


class ValidationError(RuntimeError):
    """Raised when the validation study cannot be evaluated."""


class FormulaValidation:
    """Runs the Table II / Table III comparisons.

    Parameters
    ----------
    node:
        Technology node.
    doe:
        Experiment grid (array sizes, options).
    model:
        Analytical delay model; derived from the node when omitted.
    simulator:
        Read-path simulator; constructed from the node when omitted.
    worst_case:
        Worst-case study providing the per-option worst corners; constructed
        when omitted (and shared with the caller when provided, so the
        expensive corner search is not repeated).
    """

    def __init__(
        self,
        node: TechnologyNode,
        doe: Optional[StudyDOE] = None,
        model: Optional[AnalyticalDelayModel] = None,
        simulator: Optional[ReadPathSimulator] = None,
        worst_case: Optional[WorstCaseStudy] = None,
    ) -> None:
        self.node = node
        self.doe = doe if doe is not None else paper_doe()
        self.model = model if model is not None else model_from_technology(
            node, n_bitline_pairs=self.doe.n_bitline_pairs
        )
        self.simulator = simulator if simulator is not None else ReadPathSimulator(
            node, n_bitline_pairs=self.doe.n_bitline_pairs
        )
        self.worst_case = worst_case if worst_case is not None else WorstCaseStudy(
            node, doe=self.doe
        )

    # -- Table II -----------------------------------------------------------------------

    def table2(
        self, array_sizes: Optional[Sequence[int]] = None
    ) -> List[FormulaVsSimulationTdRow]:
        """Nominal td: simulation versus formula, per array size."""
        sizes = list(array_sizes) if array_sizes is not None else list(self.doe.array_sizes)
        rows: List[FormulaVsSimulationTdRow] = []
        for size in sizes:
            simulated = self.simulator.measure_nominal(size)
            formula_td = self.model.td_nominal_s(size)
            rows.append(
                FormulaVsSimulationTdRow(
                    array_label=f"{self.doe.n_bitline_pairs}x{size}",
                    n_wordlines=size,
                    simulation_td_s=simulated.td_s,
                    formula_td_s=formula_td,
                )
            )
        return rows

    # -- Table III -----------------------------------------------------------------------

    def table3(
        self, array_sizes: Optional[Sequence[int]] = None
    ) -> List[FormulaVsSimulationTdpRow]:
        """Worst-case tdp (%): simulation and formula rows per array size.

        The returned list interleaves one ``"simulation"`` and one
        ``"formula"`` row per array size, mirroring the structure of the
        paper's Table III.
        """
        sizes = list(array_sizes) if array_sizes is not None else list(self.doe.array_sizes)
        rows: List[FormulaVsSimulationTdpRow] = []

        corners = {
            option_name: self.worst_case.find_worst_corner(option_name)
            for option_name in self.doe.option_names
        }

        for size in sizes:
            nominal = self.simulator.measure_nominal(size)
            simulated: Dict[str, float] = {}
            formula: Dict[str, float] = {}
            for option_name, corner in corners.items():
                varied = self.simulator.measure_with_patterning(
                    size,
                    self.worst_case.option(option_name),
                    corner.parameters,
                )
                simulated[option_name] = varied.penalty_percent_vs(nominal)
                formula[option_name] = self.model.tdp_percent(
                    size,
                    corner.bitline_variation.rvar,
                    corner.bitline_variation.cvar,
                )
            label = f"{self.doe.n_bitline_pairs}x{size}"
            rows.append(
                FormulaVsSimulationTdpRow(
                    method="simulation",
                    array_label=label,
                    n_wordlines=size,
                    tdp_percent_by_option=simulated,
                )
            )
            rows.append(
                FormulaVsSimulationTdpRow(
                    method="formula",
                    array_label=label,
                    n_wordlines=size,
                    tdp_percent_by_option=formula,
                )
            )
        return rows

    # -- agreement metrics ---------------------------------------------------------------------

    def tdp_agreement_percent(
        self, rows: Optional[List[FormulaVsSimulationTdpRow]] = None
    ) -> Dict[str, float]:
        """Largest |formula − simulation| tdp gap per option (percentage points).

        The paper's qualitative claim — good agreement for LE3/EUV, a known
        divergence for SADP at large arrays — becomes checkable numbers.
        """
        chosen = rows if rows is not None else self.table3()
        by_size: Dict[str, Dict[str, Dict[str, float]]] = {}
        for row in chosen:
            by_size.setdefault(row.array_label, {})[row.method] = row.tdp_percent_by_option
        gaps: Dict[str, float] = {}
        for methods in by_size.values():
            if "simulation" not in methods or "formula" not in methods:
                raise ValidationError("table3 rows must come in simulation/formula pairs")
            for option_name, simulated_value in methods["simulation"].items():
                gap = abs(simulated_value - methods["formula"][option_name])
                gaps[option_name] = max(gaps.get(option_name, 0.0), gap)
        return gaps
