"""Result containers for the paper's tables and figures.

Each experiment of the evaluation section has a typed row/record class so
benches, examples and the reporting layer share one vocabulary.  All
percentages are in percent (not fractions); all times carry explicit
units in their field names.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..variability.statistics import Histogram, SummaryStatistics


def atomic_write_text(path: Union[str, os.PathLike], text: str) -> None:
    """Write ``text`` to ``path`` atomically (UTF-8).

    The content lands in a temporary file in the destination directory and
    is moved into place with :func:`os.replace`, so readers — the result
    cache served by concurrent HTTP threads, or a watcher tailing a CLI
    ``--output`` file — never observe a half-written document.
    """
    path = Path(path)
    handle = tempfile.NamedTemporaryFile(
        mode="w",
        encoding="utf-8",
        dir=path.parent,
        prefix=f".{path.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class WorstCaseRCRow:
    """One row of Table I: the worst-case RC impact of a patterning option."""

    option_name: str
    corner_parameters: Dict[str, float]
    delta_cbl_percent: float
    delta_rbl_percent: float
    delta_rvss_percent: float = 0.0

    @property
    def cvar(self) -> float:
        return 1.0 + self.delta_cbl_percent / 100.0

    @property
    def rvar(self) -> float:
        return 1.0 + self.delta_rbl_percent / 100.0

    @property
    def vss_rvar(self) -> float:
        return 1.0 + self.delta_rvss_percent / 100.0

    def to_record(self) -> Dict[str, object]:
        """Flat, JSON-ready view (the ``ResultSet`` record of this row)."""
        return {
            "record": "worst_corner",
            "option": self.option_name,
            "corner_parameters": dict(self.corner_parameters),
            "delta_cbl_percent": self.delta_cbl_percent,
            "delta_rbl_percent": self.delta_rbl_percent,
            "delta_rvss_percent": self.delta_rvss_percent,
        }


@dataclass(frozen=True)
class TrackDistortion:
    """Printed-versus-drawn geometry of one track (Fig. 2 data)."""

    net: str
    mask: Optional[str]
    drawn_left_nm: float
    drawn_right_nm: float
    printed_left_nm: float
    printed_right_nm: float

    @property
    def width_change_nm(self) -> float:
        return (self.printed_right_nm - self.printed_left_nm) - (
            self.drawn_right_nm - self.drawn_left_nm
        )

    @property
    def center_shift_nm(self) -> float:
        return 0.5 * (self.printed_left_nm + self.printed_right_nm) - 0.5 * (
            self.drawn_left_nm + self.drawn_right_nm
        )


@dataclass(frozen=True)
class LayoutDistortionRecord:
    """Worst-case layout distortion of one option (one panel of Fig. 2)."""

    option_name: str
    corner_parameters: Dict[str, float]
    tracks: Tuple[TrackDistortion, ...]

    def track_for(self, net: str) -> TrackDistortion:
        for track in self.tracks:
            if track.net == net:
                return track
        raise KeyError(f"no track for net {net!r}")


@dataclass(frozen=True)
class WorstCaseTdRow:
    """One array size of Fig. 4: nominal td plus per-option worst-case tdp."""

    array_label: str
    n_wordlines: int
    nominal_td_ps: float
    tdp_percent_by_option: Dict[str, float]

    def tdp_percent(self, option_name: str) -> float:
        try:
            return self.tdp_percent_by_option[option_name]
        except KeyError:
            raise KeyError(
                f"no tdp recorded for option {option_name!r}; "
                f"options: {sorted(self.tdp_percent_by_option)}"
            ) from None


def unit_scale(unit: str) -> Tuple[float, str]:
    """Scale factor and display label of an operation unit (s→ps, V→mV).

    Single source of the unit-scaling rule shared by the result rows and
    the reporting formatters — add new operation units here only.
    """
    if unit == "s":
        return 1e12, "ps"
    if unit == "V":
        return 1e3, "mV"
    return 1.0, unit


def display_value(value: float, unit: str) -> str:
    """An operation value rendered in its readable unit."""
    factor, label = unit_scale(unit)
    return f"{value * factor:.2f} {label}"


@dataclass(frozen=True)
class OperationImpactRow:
    """One array size of an operation table: nominal value plus worst-case
    per-option impact of the operation suite (write delay, hold/read SNM)."""

    operation: str
    array_label: str
    n_wordlines: int
    nominal_value: float
    unit: str                       # "s" or "V"
    delta_percent_by_option: Dict[str, float]

    def delta_percent(self, option_name: str) -> float:
        try:
            return self.delta_percent_by_option[option_name]
        except KeyError:
            raise KeyError(
                f"no impact recorded for option {option_name!r}; "
                f"options: {sorted(self.delta_percent_by_option)}"
            ) from None

    @property
    def nominal_display(self) -> str:
        """The nominal value scaled to a readable unit (ps or mV)."""
        return display_value(self.nominal_value, self.unit)

    def to_records(self) -> List[Dict[str, object]]:
        """One flat, JSON-ready record per patterning option."""
        return [
            {
                "record": "impact",
                "operation": self.operation,
                "array_label": self.array_label,
                "n_wordlines": self.n_wordlines,
                "option": option_name,
                "nominal_value": self.nominal_value,
                "unit": self.unit,
                "delta_percent": delta,
            }
            for option_name, delta in sorted(self.delta_percent_by_option.items())
        ]


@dataclass(frozen=True)
class OperationSigmaRow:
    """One Monte-Carlo row of an operation: σ of the relative impact (%)."""

    operation: str
    array_label: str
    option_name: str
    overlay_three_sigma_nm: Optional[float]
    sigma_percent: float

    @property
    def label(self) -> str:
        if self.overlay_three_sigma_nm is None:
            return self.option_name
        return f"{self.option_name} {self.overlay_three_sigma_nm:g}nm OL"

    def to_record(self) -> Dict[str, object]:
        """Flat, JSON-ready view (the ``ResultSet`` record of this row)."""
        return {
            "record": "sigma",
            "operation": self.operation,
            "array_label": self.array_label,
            "option": self.option_name,
            "overlay_three_sigma_nm": self.overlay_three_sigma_nm,
            "sigma_percent": self.sigma_percent,
        }


@dataclass(frozen=True)
class FormulaVsSimulationTdRow:
    """One row of Table II: nominal td from simulation versus formula."""

    array_label: str
    n_wordlines: int
    simulation_td_s: float
    formula_td_s: float

    @property
    def ratio(self) -> float:
        return self.simulation_td_s / self.formula_td_s


@dataclass(frozen=True)
class FormulaVsSimulationTdpRow:
    """One (method, array) row of Table III: per-option worst-case tdp."""

    method: str                     # "simulation" or "formula"
    array_label: str
    n_wordlines: int
    tdp_percent_by_option: Dict[str, float]


@dataclass(frozen=True)
class MonteCarloTdpRecord:
    """Monte-Carlo tdp distribution of one option (Fig. 5 + Table IV input).

    ``tdp_percent_samples`` holds the per-sample read-time penalty in
    percent; the summary and histogram are precomputed views of the same
    samples.
    """

    option_name: str
    overlay_three_sigma_nm: Optional[float]
    n_wordlines: int
    n_samples: int
    tdp_percent_samples: Tuple[float, ...]
    summary: SummaryStatistics
    histogram: Histogram

    @property
    def label(self) -> str:
        if self.overlay_three_sigma_nm is None:
            return self.option_name
        return f"{self.option_name} {self.overlay_three_sigma_nm:g}nm OL"

    @property
    def sigma_percent(self) -> float:
        """The σ value reported in Table IV (percentage points of tdp)."""
        return self.summary.std


@dataclass(frozen=True)
class TdpSigmaRow:
    """One row of Table IV: patterning option (and OL budget) → tdp σ."""

    array_label: str
    option_name: str
    overlay_three_sigma_nm: Optional[float]
    sigma_percent: float

    @property
    def label(self) -> str:
        if self.overlay_three_sigma_nm is None:
            return self.option_name
        return f"{self.option_name} {self.overlay_three_sigma_nm:g}nm OL"


@dataclass
class StudyReport:
    """Everything a full study run produced, keyed by experiment."""

    table1: List[WorstCaseRCRow] = field(default_factory=list)
    figure2: List[LayoutDistortionRecord] = field(default_factory=list)
    figure4: List[WorstCaseTdRow] = field(default_factory=list)
    table2: List[FormulaVsSimulationTdRow] = field(default_factory=list)
    table3: List[FormulaVsSimulationTdpRow] = field(default_factory=list)
    figure5: List[MonteCarloTdpRecord] = field(default_factory=list)
    table4: List[TdpSigmaRow] = field(default_factory=list)

    def is_complete(self) -> bool:
        """Whether every experiment of the evaluation has at least one entry."""
        return all(
            bool(collection)
            for collection in (
                self.table1,
                self.figure2,
                self.figure4,
                self.table2,
                self.table3,
                self.figure5,
                self.table4,
            )
        )
