"""The analytical read-time formula (Section III.A, eqs. 1–5).

The paper models the bit-line discharge as a lumped RC step response
(eq. 1), defines the time-to-discharge as ``td = a · RC`` (eq. 2) where the
constant ``a`` follows from the target discharge level (eq. 3, ``a ≈ 0.105``
for the 10 % discharge implied by a 70 mV sense threshold on a 0.7 V
precharge), and then expands R and C into their array-size-dependent parts
(eq. 4):

    td = a · (n·Rbl·Rvar + R_FE) · (n·(Cbl·Cvar + C_FE) + Cpre(n))

with

* ``n``      — bit-line length in cells,
* ``Rbl``    — bit-line resistance of one cell pitch,
* ``Rvar``   — bit-line resistance variation as a ratio (1 + x),
* ``R_FE``   — front-end resistance of the discharge path (pass-gate +
  pull-down), constant,
* ``Cbl``    — bit-line wire capacitance of one cell pitch,
* ``Cvar``   — bit-line capacitance variation as a ratio (1 + x),
* ``C_FE``   — front-end capacitance per cell (off pass-gate junction),
* ``Cpre(n)``— precharge-circuit capacitance, which scales with ``n``.

Expanding in ``n`` gives the quadratic-plus-linear-plus-constant form of
eq. 5; the read-time penalty ``tdp`` is the rational function
``td(Rvar, Cvar) / td(1, 1)``, whose polynomial nature (together with the
negative Rvar of the worst cases) explains the non-monotonic tdp versus
array size seen in the simulations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from ..extraction.lpe import ParameterizedLPE, RCVariation
from ..layout.array import generate_array_layout
from ..sram.cell import bitline_loading_per_unselected_cell_f
from ..sram.precharge import PrechargeCapacitanceLaw
from ..technology.node import TechnologyNode

#: Scalars or sample arrays — every eq. 4/5 entry point accepts both and
#: broadcasts them together, so a whole Monte-Carlo study point is a single
#: vectorised evaluation.
ArrayLike = Union[int, float, np.ndarray]


class AnalyticalModelError(ValueError):
    """Raised for inconsistent analytical-model parameters."""


def discharge_constant(discharge_fraction: float) -> float:
    """The constant ``a`` of eq. 2/3 for a given discharge level.

    From ``V_out(t) = (1 − e^(−t/RC)) · V`` (eq. 1): discharging the bit
    line by a fraction ``f`` of its precharge level takes
    ``t = −ln(1 − f) · RC``, so ``a = −ln(1 − f)``.  For the paper's 10 %
    level this gives ``a ≈ 0.105`` (eq. 3).
    """
    if not 0.0 < discharge_fraction < 1.0:
        raise AnalyticalModelError(
            f"the discharge fraction must be within (0, 1), got {discharge_fraction}"
        )
    return -math.log(1.0 - discharge_fraction)


@dataclass(frozen=True)
class PolynomialCoefficients:
    """The ``td = c2·n² + c1·n + c0`` view of eq. 5 (for fixed Rvar/Cvar).

    ``c1`` and ``c0`` are "almost" constant in ``n`` in the paper's wording
    because ``Cpre(n)`` still depends weakly on ``n``; the coefficients
    here are exact for a given ``n`` (they are recomputed per array size).
    """

    c2: float
    c1: float
    c0: float

    def evaluate(self, n: int) -> float:
        return self.c2 * n * n + self.c1 * n + self.c0


@dataclass(frozen=True)
class AnalyticalDelayModel:
    """Eq. 4 with technology-derived parameters.

    Parameters
    ----------
    a:
        Discharge constant (eq. 3).
    rbl_per_cell_ohm / cbl_per_cell_f:
        Nominal bit-line wire resistance / capacitance per cell pitch.
    rfe_ohm:
        Front-end (discharge-path) resistance.
    cfe_per_cell_f:
        Front-end capacitance per cell.
    cpre_fn:
        ``Cpre(n)`` — precharge capacitance as a function of the array
        size, matching the scaling used in the simulated netlists.
    """

    a: float
    rbl_per_cell_ohm: float
    cbl_per_cell_f: float
    rfe_ohm: float
    cfe_per_cell_f: float
    cpre_fn: Callable[[int], float]

    def __post_init__(self) -> None:
        if self.a <= 0.0:
            raise AnalyticalModelError("the discharge constant must be positive")
        if self.rbl_per_cell_ohm <= 0.0 or self.cbl_per_cell_f <= 0.0:
            raise AnalyticalModelError("per-cell bit-line R and C must be positive")
        if self.rfe_ohm <= 0.0:
            raise AnalyticalModelError("the front-end resistance must be positive")
        if self.cfe_per_cell_f < 0.0:
            raise AnalyticalModelError("the front-end capacitance cannot be negative")

    # -- eq. 4 ------------------------------------------------------------------------

    def td_s(self, n: ArrayLike, rvar: ArrayLike = 1.0, cvar: ArrayLike = 1.0) -> ArrayLike:
        """Read time (seconds) for an ``n``-cell column at the given variation.

        ``n``, ``rvar`` and ``cvar`` may each be scalars or (broadcastable)
        arrays; with array inputs the result is the element-wise read time,
        which is how the Monte-Carlo study maps a whole sample set through
        eq. 4 in one call.
        """
        if np.any(np.asarray(n) < 1):
            raise AnalyticalModelError("the array size must be at least one cell")
        if np.any(np.asarray(rvar) <= 0.0) or np.any(np.asarray(cvar) <= 0.0):
            raise AnalyticalModelError("variation ratios must be positive")
        resistance = n * self.rbl_per_cell_ohm * rvar + self.rfe_ohm
        capacitance = n * (self.cbl_per_cell_f * cvar + self.cfe_per_cell_f) + self.cpre_fn(n)
        return self.a * resistance * capacitance

    def td_nominal_s(self, n: ArrayLike) -> ArrayLike:
        """Nominal read time (``Rvar = Cvar = 1``)."""
        return self.td_s(n, 1.0, 1.0)

    # -- eq. 5 ------------------------------------------------------------------------

    def polynomial_coefficients(
        self, n: int, rvar: float = 1.0, cvar: float = 1.0
    ) -> PolynomialCoefficients:
        """The second-degree polynomial form of eq. 5 at a given array size."""
        cpre = self.cpre_fn(n)
        cap_term = self.cbl_per_cell_f * cvar + self.cfe_per_cell_f
        c2 = self.a * self.rbl_per_cell_ohm * rvar * cap_term
        c1 = self.a * (self.rfe_ohm * cap_term + self.rbl_per_cell_ohm * rvar * cpre)
        c0 = self.a * self.rfe_ohm * cpre
        return PolynomialCoefficients(c2=c2, c1=c1, c0=c0)

    # -- tdp --------------------------------------------------------------------------

    def tdp(self, n: ArrayLike, rvar: ArrayLike, cvar: ArrayLike) -> ArrayLike:
        """Read-time penalty as a ratio: ``td(Rvar, Cvar) / td(1, 1)``.

        Accepts scalars or arrays like :meth:`td_s`.
        """
        return self.td_s(n, rvar, cvar) / self.td_nominal_s(n)

    def tdp_percent(self, n: ArrayLike, rvar: ArrayLike, cvar: ArrayLike) -> ArrayLike:
        """Read-time penalty in percent (the quantity of Tables III/IV)."""
        return (self.tdp(n, rvar, cvar) - 1.0) * 100.0

    def tdp_from_variation(self, n: int, variation: "RCVariation") -> ArrayLike:
        """tdp from an extracted :class:`RCVariation` or a batched variation.

        Any object with ``rvar``/``cvar`` attributes works, so a
        :class:`~repro.extraction.lpe.BatchRCVariation` maps a whole sample
        set in one call.
        """
        return self.tdp(n, variation.rvar, variation.cvar)

    # -- sensitivities -----------------------------------------------------------------

    def tdp_sensitivity(self, n: int, delta: float = 1e-4) -> Tuple[float, float]:
        """Partial derivatives of tdp w.r.t. Rvar and Cvar around nominal.

        Useful for the ablation study on which variation dominates at which
        array size: for small arrays Cvar dominates (the front-end
        resistance swamps the wire resistance), for large arrays the Rvar
        term gains weight.
        """
        base = self.tdp(n, 1.0, 1.0)
        d_r = (self.tdp(n, 1.0 + delta, 1.0) - base) / delta
        d_c = (self.tdp(n, 1.0, 1.0 + delta) - base) / delta
        return d_r, d_c

    def with_parameters(self, **changes: object) -> "AnalyticalDelayModel":
        return replace(self, **changes)


def model_from_technology(
    node: TechnologyNode,
    n_bitline_pairs: int = 10,
    reference_wordlines: int = 64,
) -> AnalyticalDelayModel:
    """Build the analytical model's parameters from a technology node.

    The per-cell bit-line R and C come from a nominal extraction of the
    reference array (per-cell values are size independent, the reference
    size only avoids single-cell edge effects); the front-end values come
    from the SRAM device set; ``Cpre(n)`` follows the same scaling law as
    the simulated precharge circuit.
    """
    layout = generate_array_layout(
        n_wordlines=reference_wordlines, n_bitline_pairs=n_bitline_pairs, node=node
    )
    lpe = ParameterizedLPE(node)
    extraction = lpe.extract_pattern(layout.metal1_pattern)
    bl_net, _blb_net = layout.central_pair_nets()
    parasitics = extraction[bl_net]
    cell_length = layout.cell.cell_length_nm

    devices = node.sram_devices
    conditions = node.operating_conditions
    return AnalyticalDelayModel(
        a=discharge_constant(conditions.discharge_fraction),
        rbl_per_cell_ohm=parasitics.resistance_per_nm * cell_length,
        cbl_per_cell_f=parasitics.capacitance_per_nm.total * cell_length,
        rfe_ohm=devices.discharge_path_resistance_ohm(conditions.vdd_v),
        cfe_per_cell_f=bitline_loading_per_unselected_cell_f(devices),
        cpre_fn=PrechargeCapacitanceLaw(device=devices.pull_up),
    )
