"""Batched, multiprocess campaign engine for the simulation pipeline.

The sequential path of the paper's simulated half (Fig. 4 worst-case
penalties, Tables II–III formula validation) walks the DOE one corner at a
time on one core.  :class:`SimulationCampaign` turns that walk into an
explicit work list — one :class:`CampaignItem` per (scenario × array size
× worst-case corner), plus one nominal item per distinct simulation
configuration — and executes it through a process pool:

* the per-option worst corners are searched once per overlay budget in the
  driver and embedded in the items, so workers only print, extract and
  simulate;
* items are grouped into chunks by ``(array size, simulation key)`` so a
  worker's layout / extraction / Jacobian-structure caches amortise across
  the chunk, and chunks are scheduled longest-first;
* every item carries a deterministic seed derived with the same crc32
  scheme as the Monte-Carlo engine, so any future stochastic scenario axis
  stays reproducible across process boundaries;
* records can be persisted to a disk store (one JSON file per item) and a
  rerun skips everything already recorded — a long campaign resumes where
  it stopped.

Scenario diversity is a first-class axis: overlay-budget sweeps, stored
value 0/1, VSS strap-interval variants and backward-Euler versus
trapezoidal integration all cross with the DOE grid.  The default single
scenario reproduces the paper's Fig. 4 / Table II–III numbers exactly
(the parity suite pins this at ``rtol <= 1e-12`` against the sequential
path).
"""

from __future__ import annotations

import json
import os
import time
import zlib
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..circuit.batch import PreparedWork, solve_prepared
from ..circuit.dc import ConvergenceError, solver_rescue
from ..circuit.mna import MNAError, solver_stats
from ..obs import metrics as obs_metrics
from ..obs.profile import (
    _clear_inherited_profiler,
    active_profiler,
    enable_worker_profiling,
)
from ..obs.trace import (
    _clear_inherited_tracer,
    active_tracer,
    enable_worker_tracing,
    span,
)
from ..technology.node import TechnologyNode
from ..testing import faults
from ..variability.doe import StudyDOE, paper_doe
from .analytical import AnalyticalDelayModel
from .failures import FAILURE_POLICIES, ItemFailure, ItemTimeoutError, item_deadline
from .operations import (
    OPERATION_NAMES,
    OperationError,
    OperationMeasurement,
    OperationSimulators,
    create_operation,
)
from .results import (
    FormulaVsSimulationTdRow,
    FormulaVsSimulationTdpRow,
    OperationImpactRow,
    WorstCaseTdRow,
)
from .worst_case import WorstCaseStudy

#: Transient methods a scenario may select.
CAMPAIGN_METHODS = ("backward-euler", "trapezoidal")

#: Solver tiers the campaign can execute items through.  ``scalar`` runs
#: one item at a time through the per-circuit Newton/transient solvers
#: (the rtol<=1e-12 oracle); ``batched`` stacks every pending item's
#: circuit lanes into the lockstep tier (:mod:`repro.circuit.batch`) and
#: solves them jointly — records are bitwise identical either way.
CAMPAIGN_SOLVERS = ("scalar", "batched")

#: Short method tags used in item keys and file names.
_METHOD_TAGS = {"backward-euler": "be", "trapezoidal": "trap"}


class CampaignError(RuntimeError):
    """Raised when a campaign cannot be configured, run or resumed."""


class CampaignExecutionError(CampaignError):
    """A work item failed under ``failure_policy="fail_fast"``.

    Carries the typed :class:`~repro.core.failures.ItemFailure` so callers
    (and the CLI's error path) can report what failed and why without
    parsing the message.
    """

    def __init__(self, failure: ItemFailure) -> None:
        super().__init__(
            f"campaign item {failure.key!r} failed "
            f"({failure.classification} after {failure.attempts} "
            f"attempt{'s' if failure.attempts != 1 else ''}): {failure.message}"
        )
        self.failure = failure

    def __reduce__(self):
        # Default exception pickling would re-call __init__ with the
        # formatted message; reconstruct from the failure instead so the
        # typed record survives the pool's process boundary.
        return (CampaignExecutionError, (self.failure,))


#: Exceptions the execution wrapper treats as *item* failures (isolated,
#: classified, retried) rather than campaign bugs (propagated).
_ITEM_ERRORS = (
    ConvergenceError,
    MNAError,
    OperationError,
    ItemTimeoutError,
    FloatingPointError,
    ZeroDivisionError,
)


@dataclass(frozen=True)
class CampaignScenario:
    """One simulation scenario: everything varied besides the DOE grid.

    Parameters
    ----------
    label:
        Unique name of the scenario (also used in item keys and store file
        names, so it is restricted to ``[A-Za-z0-9._-]``).
    overlay_three_sigma_nm:
        LE overlay budget override; ``None`` keeps the node's budget.  Only
        affects the worst-corner search (litho-etch options).
    stored_value:
        Logic value stored on the accessed cell's Q node (0 discharges BL,
        the paper's case; 1 discharges BLB).
    vss_strap_interval_cells:
        VSS strap pitch of the array (see :class:`ReadPathSimulator`).
    method:
        Transient integration method, ``"backward-euler"`` or
        ``"trapezoidal"``.
    """

    label: str = "paper"
    overlay_three_sigma_nm: Optional[float] = None
    stored_value: int = 0
    vss_strap_interval_cells: int = 256
    method: str = "backward-euler"
    #: The SRAM operation this scenario measures (the operation axis):
    #: ``read`` (the paper's td), ``write``, ``hold_snm`` or ``read_snm``.
    operation: str = "read"

    def __post_init__(self) -> None:
        if self.operation not in OPERATION_NAMES:
            raise CampaignError(
                f"operation must be one of {OPERATION_NAMES}, got {self.operation!r}"
            )
        if not self.label or not all(
            ch.isalnum() or ch in "._-" for ch in self.label
        ):
            raise CampaignError(
                f"scenario label {self.label!r} must be non-empty and use only "
                "letters, digits, '.', '_' or '-'"
            )
        if self.overlay_three_sigma_nm is not None and self.overlay_three_sigma_nm <= 0.0:
            raise CampaignError("the overlay budget must be positive")
        if self.stored_value not in (0, 1):
            raise CampaignError("stored_value must be 0 or 1")
        if self.vss_strap_interval_cells < 1:
            raise CampaignError("the VSS strap interval must be at least one cell")
        if self.method not in CAMPAIGN_METHODS:
            raise CampaignError(f"method must be one of {CAMPAIGN_METHODS}")

    @property
    def sim_key(self) -> str:
        """Key of the simulation configuration (everything the *nominal*
        measurement depends on — the overlay budget only moves corners).
        Read scenarios keep the pre-operation-axis key format, so stores
        and record keys from read-only campaigns stay stable."""
        base = (
            f"sv{self.stored_value}"
            f"-strap{self.vss_strap_interval_cells}"
            f"-{_METHOD_TAGS[self.method]}"
        )
        if self.operation == "read":
            return base
        return f"{self.operation}-{base}"

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class CampaignItem:
    """One unit of campaign work: a single read simulation."""

    kind: str                                   # "nominal" or "corner"
    n_wordlines: int
    scenario: CampaignScenario
    seed: int
    option_name: Optional[str] = None
    #: Worst-corner parameter assignment, sorted name→value pairs.
    corner_parameters: Tuple[Tuple[str, float], ...] = ()
    #: Bit-line / VSS RC ratios of the corner (feed the formula rows).
    corner_rvar: float = 1.0
    corner_cvar: float = 1.0
    corner_vss_rvar: float = 1.0

    @property
    def key(self) -> str:
        if self.kind == "nominal":
            return f"n{self.n_wordlines}-nominal-{self.scenario.sim_key}"
        return f"n{self.n_wordlines}-{self.option_name}-{self.scenario.label}"

    @property
    def chunk_key(self) -> Tuple[int, str]:
        """Items sharing a chunk share layouts, extractions and templates."""
        return (self.n_wordlines, self.scenario.sim_key)


@dataclass(frozen=True)
class CampaignRecord:
    """Everything one completed item produced, JSON-serialisable."""

    key: str
    kind: str
    n_wordlines: int
    option_name: Optional[str]
    scenario_label: str
    sim_key: str
    overlay_three_sigma_nm: Optional[float]
    stored_value: int
    vss_strap_interval_cells: int
    method: str
    seed: int
    td_s: float
    wordline_time_s: float
    sense_time_s: float
    stop_reason: str
    bitline_resistance_ohm: float
    bitline_capacitance_f: float
    vss_rail_resistance_ohm: float
    corner_parameters: Dict[str, float] = field(default_factory=dict)
    corner_rvar: float = 1.0
    corner_cvar: float = 1.0
    corner_vss_rvar: float = 1.0
    wall_s: float = 0.0
    #: Operation-axis fields: the operation name, its primary scalar and
    #: that scalar's unit ("s" for delays, "V" for margins).  For read
    #: records ``value`` equals ``td_s``.
    operation: str = "read"
    value: float = 0.0
    unit: str = "s"
    #: Execution provenance (``compare=False``: which solver tier produced
    #: a record — and how wide its batch was — is bookkeeping like
    #: ``wall_s``, never part of record identity; the parity suite compares
    #: scalar and batched records for full equality).
    solver: str = field(default="scalar", compare=False)
    batch_size: int = field(default=0, compare=False)
    #: Per-batch :class:`~repro.circuit.mna.SolverStats` delta, attached to
    #: every record the batch produced (empty on the scalar tier).
    batch_stats: Dict[str, int] = field(default_factory=dict, compare=False)

    @property
    def td_ps(self) -> float:
        return self.td_s * 1e12

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CampaignRecord":
        names = {f.name for f in cls.__dataclass_fields__.values()}
        unknown = set(payload) - names
        if unknown:
            raise CampaignError(f"unknown campaign record fields: {sorted(unknown)}")
        data = dict(payload)
        # Stores written before the operation axis carry no value/unit/
        # operation: they are read records whose primary value is td_s, so
        # backfill rather than defaulting value to 0 (which would poison
        # the penalty computation on resume).
        if "value" not in data:
            data.setdefault("operation", "read")
            data.setdefault("unit", "s")
            data["value"] = data.get("td_s", 0.0)
        return cls(**data)  # type: ignore[arg-type]


def _record_from_measurement(
    item: CampaignItem,
    measurement: OperationMeasurement,
    wall_s: float,
    solver: str = "scalar",
    batch_size: int = 0,
    batch_stats: Optional[Dict[str, int]] = None,
) -> CampaignRecord:
    scenario = item.scenario
    return CampaignRecord(
        key=item.key,
        kind=item.kind,
        n_wordlines=item.n_wordlines,
        option_name=item.option_name,
        scenario_label=scenario.label,
        sim_key=scenario.sim_key,
        overlay_three_sigma_nm=scenario.overlay_three_sigma_nm,
        stored_value=scenario.stored_value,
        vss_strap_interval_cells=scenario.vss_strap_interval_cells,
        method=scenario.method,
        seed=item.seed,
        td_s=measurement.td_s,
        wordline_time_s=measurement.wordline_time_s,
        sense_time_s=measurement.sense_time_s,
        stop_reason=measurement.stop_reason,
        bitline_resistance_ohm=measurement.bitline_resistance_ohm,
        bitline_capacitance_f=measurement.bitline_capacitance_f,
        vss_rail_resistance_ohm=measurement.vss_rail_resistance_ohm,
        corner_parameters=dict(item.corner_parameters),
        corner_rvar=item.corner_rvar,
        corner_cvar=item.corner_cvar,
        corner_vss_rvar=item.corner_vss_rvar,
        wall_s=wall_s,
        operation=measurement.operation,
        value=measurement.value,
        unit=measurement.unit,
        solver=solver,
        batch_size=batch_size,
        batch_stats=dict(batch_stats) if batch_stats else {},
    )


class CampaignResults:
    """The records a campaign run produced, in work-list order.

    Under the ``skip``/``retry`` failure policies the results may be
    *partial*: ``failures`` lists the typed :class:`ItemFailure` record of
    every item that produced no :class:`CampaignRecord`.  Strict lookups
    (:meth:`record`, :meth:`nominal`) still raise on a missing key;
    :meth:`get` is the tolerant twin the partial-aware views use.
    """

    def __init__(
        self,
        records: Sequence[CampaignRecord],
        failures: Sequence[ItemFailure] = (),
    ) -> None:
        self.records: List[CampaignRecord] = list(records)
        self.failures: List[ItemFailure] = list(failures)
        self._by_key: Dict[str, CampaignRecord] = {
            record.key: record for record in self.records
        }

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def record(self, key: str) -> CampaignRecord:
        try:
            return self._by_key[key]
        except KeyError:
            raise CampaignError(f"no campaign record with key {key!r}") from None

    def get(self, key: str) -> Optional[CampaignRecord]:
        """The record with this key, or ``None`` when the item failed."""
        return self._by_key.get(key)

    def nominal(self, sim_key: str, n_wordlines: int) -> CampaignRecord:
        return self.record(f"n{n_wordlines}-nominal-{sim_key}")

    def corner(
        self, scenario_label: str, option_name: str, n_wordlines: int
    ) -> CampaignRecord:
        return self.record(f"n{n_wordlines}-{option_name}-{scenario_label}")

    def penalty_percent_for(self, record: CampaignRecord) -> Optional[float]:
        """Relative impact (%) of a corner record versus its scenario's
        nominal; ``None`` for nominal records.

        For delay operations this is the paper's tdp; for margin
        operations a negative number means the margin shrank.
        """
        if record.kind != "corner":
            return None
        nominal = self.nominal(record.sim_key, record.n_wordlines)
        if nominal.value == 0.0:
            raise CampaignError("nominal value must be nonzero")
        return (record.value / nominal.value - 1.0) * 100.0

    def penalty_percent(
        self, scenario: CampaignScenario, option_name: str, n_wordlines: int
    ) -> float:
        """Simulated tdp (%) of one option/size/scenario versus its nominal."""
        return self.penalty_percent_for(
            self.corner(scenario.label, option_name, n_wordlines)
        )


class CampaignStore:
    """Disk-backed result store: one JSON file per completed item.

    Layout::

        <directory>/campaign.json     # campaign signature + metadata
        <directory>/items/<key>.json  # one CampaignRecord each

    A rerun against the same directory loads every stored record and skips
    the corresponding items; a signature mismatch (different DOE, scenario
    set or seed) raises instead of silently mixing incompatible runs.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.items_dir = self.directory / "items"

    @property
    def metadata_path(self) -> Path:
        return self.directory / "campaign.json"

    @staticmethod
    def _normalized_signature(signature: Mapping[str, object]) -> Dict[str, object]:
        """A signature with pre-operation-axis scenario dicts upgraded.

        Stores written before the operation axis describe the same (read)
        campaign as one whose scenarios all say ``operation: "read"``, so
        the comparison treats the two as equal instead of rejecting old
        stores.  Likewise, stores written before the declarative spec
        layer carry no ``schema_version``; they are definitionally
        version-1 stores, so the comparison backfills ``1`` rather than
        rejecting them — while a store stamped with a *different* version
        still mismatches and is refused.
        """
        payload = dict(signature)
        payload.setdefault("schema_version", 1)
        scenarios = payload.get("scenarios")
        if isinstance(scenarios, list):
            payload["scenarios"] = [
                {"operation": "read", **scenario} if isinstance(scenario, dict) else scenario
                for scenario in scenarios
            ]
        return payload

    def prepare(self, signature: Mapping[str, object]) -> None:
        """Create the store (or validate an existing one) for a signature."""
        self.items_dir.mkdir(parents=True, exist_ok=True)
        if self.metadata_path.exists():
            existing = json.loads(self.metadata_path.read_text(encoding="utf-8"))
            if self._normalized_signature(
                existing.get("signature", {})
            ) != self._normalized_signature(signature):
                raise CampaignError(
                    f"store {self.directory} belongs to a different campaign; "
                    "use a fresh --store directory or matching settings"
                )
            return
        payload = {
            "format": "repro-campaign-store-v1",
            "created_unix": int(time.time()),
            "signature": dict(signature),
        }
        self._atomic_write(self.metadata_path, payload)

    def load_records(self) -> Dict[str, CampaignRecord]:
        records: Dict[str, CampaignRecord] = {}
        if not self.items_dir.is_dir():
            return records
        for path in sorted(self.items_dir.glob("*.json")):
            payload = json.loads(path.read_text(encoding="utf-8"))
            record = CampaignRecord.from_dict(payload)
            records[record.key] = record
        return records

    def save_record(self, record: CampaignRecord) -> None:
        self._atomic_write(self.items_dir / f"{record.key}.json", record.to_dict())

    @staticmethod
    def _atomic_write(path: Path, payload: Mapping[str, object]) -> None:
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        tmp.replace(path)


class CampaignWorkerState:
    """Per-process simulation state: one simulator bundle per configuration.

    All bundles share the geometry caches (layouts, nominal and printed
    extractions, Jacobian structures) of the first one created, so a chunk
    of items touching the same array size extracts each layout once no
    matter how many scenario variants — or operations — visit it.
    """

    def __init__(
        self,
        node: TechnologyNode,
        n_bitline_pairs: int,
        max_segments: int,
        failure_policy: str = "fail_fast",
        max_retries: int = 2,
        item_timeout_s: Optional[float] = None,
        retry_backoff_s: float = 0.05,
        in_pool_worker: bool = False,
        solver: str = "scalar",
    ) -> None:
        self.node = node
        self.n_bitline_pairs = n_bitline_pairs
        self.max_segments = max_segments
        self.failure_policy = failure_policy
        self.max_retries = max_retries
        self.item_timeout_s = item_timeout_s
        self.retry_backoff_s = retry_backoff_s
        self.in_pool_worker = in_pool_worker
        self.solver = solver
        self._bundles: Dict[Tuple[int, str], OperationSimulators] = {}
        self._options: Dict[str, object] = {}

    def _simulators_for(self, scenario: CampaignScenario) -> OperationSimulators:
        # The bundle depends only on the strap interval and the transient
        # method; operation and stored value are per-call arguments, so
        # every operation of a scenario family shares one geometry stack.
        key = (scenario.vss_strap_interval_cells, scenario.method)
        bundle = self._bundles.get(key)
        if bundle is None:
            # transient_method (not a TransientOptions override) so the
            # method axis changes only the integrator: the derived
            # step-size policy stays identical across methods.
            bundle = OperationSimulators(
                self.node,
                n_bitline_pairs=self.n_bitline_pairs,
                max_segments=self.max_segments,
                vss_strap_interval_cells=scenario.vss_strap_interval_cells,
                transient_method=scenario.method,
            )
            if self._bundles:
                bundle.adopt_shared_caches(next(iter(self._bundles.values())))
            self._bundles[key] = bundle
        return bundle

    def _option_for(self, option_name: str):
        option = self._options.get(option_name)
        if option is None:
            from ..patterning import create_option

            option = create_option(option_name)
            self._options[option_name] = option
        return option

    def run_item(self, item: CampaignItem) -> CampaignRecord:
        simulators = self._simulators_for(item.scenario)
        operation = create_operation(item.scenario.operation)
        started = time.perf_counter()
        with span(
            "item.measure",
            item=item.key,
            operation=item.scenario.operation,
            kind=item.kind,
        ):
            if item.kind == "nominal":
                measurement = operation.measure_nominal(
                    simulators,
                    item.n_wordlines,
                    stored_value=item.scenario.stored_value,
                )
            elif item.kind == "corner":
                measurement = operation.measure_with_patterning(
                    simulators,
                    item.n_wordlines,
                    self._option_for(item.option_name),
                    dict(item.corner_parameters),
                    stored_value=item.scenario.stored_value,
                )
            else:
                raise CampaignError(f"unknown campaign item kind {item.kind!r}")
        wall_s = time.perf_counter() - started
        return _record_from_measurement(item, measurement, wall_s)

    def run_item_outcome(
        self, item: CampaignItem
    ) -> Union[CampaignRecord, ItemFailure]:
        """Run one item under the failure policy: record, failure or raise.

        Attempt schedule under ``retry``: the first retry repeats the
        attempt unchanged (a transient fault — an injected one, or a
        machine-level hiccup — then reproduces the fault-free result
        bit-for-bit), later retries escalate the solver rescue ladder
        (:func:`~repro.circuit.dc.solver_rescue`: bigger Newton/step
        budgets, jittered start points) with capped exponential backoff
        between attempts.  Solver errors are classified into a typed
        :class:`ItemFailure`; ``fail_fast`` raises it wrapped in
        :class:`CampaignExecutionError` instead of returning it.
        """
        faults.maybe_crash_worker(item.key, self.in_pool_worker)
        return self._item_attempts(item, start_attempt=0, last_error=None)

    def _item_attempts(
        self,
        item: CampaignItem,
        start_attempt: int,
        last_error: Optional[BaseException],
    ) -> Union[CampaignRecord, ItemFailure]:
        """Run attempts ``start_attempt..attempts-1`` of ``item``.

        The batched tier enters at ``start_attempt=1`` after a failed joint
        solve (attempt 0 happened inside the batch); the scalar tier enters
        at 0.  Either way the total attempt budget and the rescue-ladder
        schedule are identical, so a batch-quarantined item retries exactly
        like a scalar failure would.
        """
        attempts = 1 + (self.max_retries if self.failure_policy == "retry" else 0)
        for attempt in range(start_attempt, attempts):
            if attempt:
                time.sleep(min(self.retry_backoff_s * (2.0 ** (attempt - 1)), 2.0))
            try:
                with solver_rescue(max(0, attempt - 1), seed=item.seed):
                    with item_deadline(self.item_timeout_s):
                        faults.check_solver(item.key, attempt)
                        return self.run_item(item)
            except _ITEM_ERRORS as exc:
                last_error = exc
        failure = ItemFailure.from_exception(
            item.key, last_error, attempts=attempts
        )
        if self.failure_policy == "fail_fast":
            raise CampaignExecutionError(failure) from last_error
        return failure

    def prepare_item(self, item: CampaignItem) -> Tuple[PreparedWork, float]:
        """Build the item's lane set (batched attempt 0) and its prep wall."""
        simulators = self._simulators_for(item.scenario)
        operation = create_operation(item.scenario.operation)
        started = time.perf_counter()
        with span(
            "item.prepare",
            item=item.key,
            operation=item.scenario.operation,
            kind=item.kind,
        ):
            if item.kind == "nominal":
                prepared = operation.prepare_nominal(
                    simulators,
                    item.n_wordlines,
                    stored_value=item.scenario.stored_value,
                )
            elif item.kind == "corner":
                prepared = operation.prepare_with_patterning(
                    simulators,
                    item.n_wordlines,
                    self._option_for(item.option_name),
                    dict(item.corner_parameters),
                    stored_value=item.scenario.stored_value,
                )
            else:
                raise CampaignError(f"unknown campaign item kind {item.kind!r}")
        return prepared, time.perf_counter() - started

    def prepare_chunk(
        self, items: Sequence[CampaignItem]
    ) -> List[Tuple[CampaignItem, Union[PreparedWork, BaseException], float]]:
        """Phase 1 of the batched tier: build every item's lane set.

        Returns ``(item, prepared-or-error, prep_wall)`` per item.  An
        item error during preparation (including an injected fault for
        attempt 0) is captured for the scalar retry ladder; a non-item
        error (a bug) propagates, exactly as it would from
        :meth:`run_item` on the scalar tier.
        """
        entries: List[
            Tuple[CampaignItem, Union[PreparedWork, BaseException], float]
        ] = []
        for item in items:
            faults.maybe_crash_worker(item.key, self.in_pool_worker)
            started = time.perf_counter()
            try:
                faults.check_solver(item.key, 0)
                work, prep_wall = self.prepare_item(item)
            except _ITEM_ERRORS as exc:
                entries.append((item, exc, time.perf_counter() - started))
                continue
            entries.append((item, work, prep_wall))
        return entries

    def finish_chunks(
        self,
        chunked_entries: Sequence[
            Sequence[Tuple[CampaignItem, Union[PreparedWork, BaseException], float]]
        ],
    ) -> Iterator[List[Union[CampaignRecord, ItemFailure]]]:
        """Phase 2 of the batched tier: one joint solve, per-chunk outcomes.

        All prepared chunks are solved in a single jointly-vectorized
        call (same-topology lanes from different chunks stack into one
        system), then the outcome lists are yielded chunk by chunk, in
        order, so the caller can checkpoint at the same granularity as a
        scalar run.  An item whose preparation or joint solve failed is
        quarantined to the scalar retry ladder starting at attempt 1 —
        the joint solve *was* attempt 0 — so failure-policy semantics
        (``fail_fast``/``skip``/``retry`` budgets, escalating rescue) are
        unchanged.  ``item_timeout_s`` applies to scalar retries only: a
        per-item deadline cannot be enforced inside a joint solve.
        """
        works = [
            work
            for entries in chunked_entries
            for _, work, _ in entries
            if isinstance(work, PreparedWork)
        ]
        stats_before = solver_stats().as_dict()
        batch_started = time.perf_counter()
        with span(
            "campaign.joint_solve", chunks=len(chunked_entries), works=len(works)
        ) as solve_span:
            results = iter(solve_prepared(works))
            batch_wall = time.perf_counter() - batch_started
            batch_stats = {
                key: value - stats_before.get(key, 0)
                for key, value in solver_stats().as_dict().items()
            }
            batch_size = sum(1 for work in works if work.lanes)
            solve_span.annotate(
                batch_size=batch_size,
                solver_stats={k: v for k, v in batch_stats.items() if v},
            )
        share = batch_wall / batch_size if batch_size else 0.0
        for entries in chunked_entries:
            outcomes: List[Union[CampaignRecord, ItemFailure]] = []
            for item, work, prep_wall in entries:
                if isinstance(work, BaseException):
                    outcomes.append(
                        self._item_attempts(item, start_attempt=1, last_error=work)
                    )
                    continue
                result = next(results)
                if isinstance(result, BaseException):
                    if not isinstance(result, _ITEM_ERRORS):
                        raise result
                    outcomes.append(
                        self._item_attempts(item, start_attempt=1, last_error=result)
                    )
                    continue
                outcomes.append(
                    _record_from_measurement(
                        item,
                        result,
                        prep_wall + (share if work.lanes else 0.0),
                        solver="batched",
                        batch_size=batch_size,
                        batch_stats=batch_stats,
                    )
                )
            yield outcomes

    def run_chunk_batched(
        self, items: Sequence[CampaignItem]
    ) -> List[Union[CampaignRecord, ItemFailure]]:
        """Batched tier over one chunk (the pool-worker entry point)."""
        (outcomes,) = list(self.finish_chunks([self.prepare_chunk(items)]))
        return outcomes

    def run_chunk(
        self, items: Sequence[CampaignItem]
    ) -> List[Union[CampaignRecord, ItemFailure]]:
        with span(
            "campaign.chunk",
            items=len(items),
            first=items[0].key if items else None,
        ):
            if self.solver == "batched":
                return self.run_chunk_batched(items)
            return [self.run_item_outcome(item) for item in items]


#: Per-process worker state installed by the pool initializer (the node is
#: pickled once per worker, and each worker's caches amortise across its
#: chunks — the same pattern as the Monte-Carlo engine).
_worker_state: Optional[CampaignWorkerState] = None


def _init_campaign_worker(
    node: TechnologyNode,
    n_bitline_pairs: int,
    max_segments: int,
    failure_policy: str = "fail_fast",
    max_retries: int = 2,
    item_timeout_s: Optional[float] = None,
    retry_backoff_s: float = 0.05,
    solver: str = "scalar",
    trace_worker_dir: Optional[str] = None,
    profile_worker_dir: Optional[str] = None,
) -> None:
    global _worker_state
    # A forked worker inherits the parent's tracer object; two processes
    # appending to one file would interleave torn records, so the worker
    # either gets its own trace-<pid>.jsonl (merged by the parent on
    # chunk commit) or stops emitting entirely.  Same story for the
    # sampling profiler: the worker samples into its own
    # profile-<pid>.folded (summed by the parent at stop).
    if trace_worker_dir is not None:
        enable_worker_tracing(trace_worker_dir)
    else:
        _clear_inherited_tracer()
    if profile_worker_dir is not None:
        enable_worker_profiling(profile_worker_dir)
    else:
        _clear_inherited_profiler()
    _worker_state = CampaignWorkerState(
        node,
        n_bitline_pairs,
        max_segments,
        failure_policy=failure_policy,
        max_retries=max_retries,
        item_timeout_s=item_timeout_s,
        retry_backoff_s=retry_backoff_s,
        in_pool_worker=True,
        solver=solver,
    )


def _run_chunk_worker(
    items: Sequence[CampaignItem],
) -> List[Union[CampaignRecord, ItemFailure]]:
    return _worker_state.run_chunk(items)


class SimulationCampaign:
    """Batched, cached, multiprocess driver of the simulated experiments.

    Parameters
    ----------
    node:
        Technology node (its overlay budget is the default for scenarios
        that do not override it).
    doe:
        Experiment grid; the paper's by default.
    scenarios:
        Scenario axes to cross with the DOE; defaults to the single paper
        scenario.  Labels must be unique.
    worst_case:
        Optional pre-built worst-case study for the node-default overlay
        budget, shared so its corner-search cache is not repeated.
    store_dir:
        Optional directory for the disk-backed result store; reruns skip
        every item already recorded there.
    seed:
        Base seed of the per-item crc32 stream.
    max_segments:
        RC-ladder sections per bit line (see :class:`ReadPathSimulator`).
    signature_extra:
        Extra key/value pairs merged into :meth:`signature` (and therefore
        verified by the store).  The declarative spec layer uses this to
        stamp campaign stores with the spec ``schema_version`` so a store
        written under a different schema is rejected on resume.
    failure_policy:
        What a failed work item does to the campaign: ``fail_fast``
        aborts the run (:class:`CampaignExecutionError`), ``skip``
        records the typed :class:`ItemFailure` and continues, ``retry``
        re-attempts with backoff and an escalated rescue ladder first.
        Failure knobs are deliberately *not* part of :meth:`signature` —
        they change how items execute, never what a record contains, so
        a store resumed under a different policy stays valid.
    max_retries:
        Extra attempts per item under ``retry`` (total attempts is
        ``1 + max_retries``).
    item_timeout_s:
        Optional wall-clock deadline per item attempt (SIGALRM-based, so
        it can cut a runaway solve; see
        :func:`~repro.core.failures.item_deadline` for where it applies).
    retry_backoff_s:
        Base of the capped exponential backoff between attempts.
    solver:
        ``"batched"`` (default) stacks same-topology Newton/transient
        work across items into jointly-vectorized solves;
        ``"scalar"`` runs items one at a time.  Records are bitwise
        identical either way, so — like the failure knobs — the solver
        tier is *not* part of :meth:`signature` and a store written
        under one tier resumes cleanly under the other.
    """

    def __init__(
        self,
        node: TechnologyNode,
        doe: Optional[StudyDOE] = None,
        scenarios: Optional[Sequence[CampaignScenario]] = None,
        worst_case: Optional[WorstCaseStudy] = None,
        store_dir: Optional[Path] = None,
        seed: int = 2015,
        max_segments: int = 64,
        signature_extra: Optional[Mapping[str, object]] = None,
        failure_policy: str = "fail_fast",
        max_retries: int = 2,
        item_timeout_s: Optional[float] = None,
        retry_backoff_s: float = 0.05,
        solver: str = "batched",
    ) -> None:
        self.node = node
        self.doe = doe if doe is not None else paper_doe()
        self.scenarios: Tuple[CampaignScenario, ...] = tuple(
            scenarios if scenarios is not None else (CampaignScenario(),)
        )
        if not self.scenarios:
            raise CampaignError("the campaign needs at least one scenario")
        labels = [scenario.label for scenario in self.scenarios]
        if len(set(labels)) != len(labels):
            raise CampaignError(f"scenario labels must be unique, got {labels}")
        self.seed = seed
        self.max_segments = max_segments
        if failure_policy not in FAILURE_POLICIES:
            raise CampaignError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {failure_policy!r}"
            )
        if max_retries < 0:
            raise CampaignError("max_retries must be non-negative")
        if item_timeout_s is not None and item_timeout_s <= 0.0:
            raise CampaignError("item_timeout_s must be positive when set")
        if solver not in CAMPAIGN_SOLVERS:
            raise CampaignError(
                f"solver must be one of {CAMPAIGN_SOLVERS}, got {solver!r}"
            )
        self.failure_policy = failure_policy
        self.max_retries = int(max_retries)
        self.item_timeout_s = item_timeout_s
        self.retry_backoff_s = float(retry_backoff_s)
        self.solver = solver
        #: Solver-counter deltas of the most recent serial ``run()`` —
        #: factorizations, stamp evaluations, batch ticks and so on.
        #: Pool runs accumulate counters in worker processes, so this
        #: stays empty there.
        self.last_run_stats: Dict[str, int] = {}
        self.signature_extra: Dict[str, object] = (
            dict(signature_extra) if signature_extra is not None else {}
        )
        self.store = CampaignStore(store_dir) if store_dir is not None else None
        self._worst_case_by_overlay: Dict[Optional[float], WorstCaseStudy] = {}
        if worst_case is not None:
            self._worst_case_by_overlay[None] = worst_case
        #: In-memory record memo: repeated ``run()`` calls (e.g. fig4 then
        #: table2 then table3 through the same campaign) only simulate the
        #: first time, mirroring the disk store's resume semantics.
        self._memo: Dict[str, CampaignRecord] = {}
        #: Typed failures of the most recent attempts, keyed by item key.
        #: Not persisted to the store: a rerun retries failed items.
        self._failures: Dict[str, ItemFailure] = {}
        self._local_state: Optional[CampaignWorkerState] = None

    @classmethod
    def from_spec(cls, spec) -> "SimulationCampaign":
        """Build a campaign from an :class:`~repro.core.spec.ExperimentSpec`.

        The declarative twin of the constructor: technology, DOE,
        scenarios, seed, store and ladder resolution all come from the
        spec document, and the spec's ``schema_version`` is stamped into
        the store signature.  Prefer :func:`repro.api.run` — this hook
        exists for callers that need the campaign object itself.
        """
        return cls(
            spec.technology.build(),
            doe=spec.array.to_doe(),
            scenarios=[scenario.to_scenario() for scenario in spec.scenarios],
            store_dir=(
                Path(spec.execution.store_dir)
                if spec.execution.store_dir is not None
                else None
            ),
            seed=spec.execution.seed,
            max_segments=spec.execution.max_segments,
            signature_extra={"schema_version": spec.schema_version},
            failure_policy=spec.execution.failure_policy,
            max_retries=spec.execution.max_retries,
            item_timeout_s=spec.execution.timeout_s,
            solver=spec.execution.solver,
        )

    # -- corner search (driver side) ---------------------------------------------------

    def worst_case_for(self, overlay_three_sigma_nm: Optional[float]) -> WorstCaseStudy:
        """The worst-case study of one overlay budget (corner-search cache)."""
        study = self._worst_case_by_overlay.get(overlay_three_sigma_nm)
        if study is None:
            node = self.node
            if overlay_three_sigma_nm is not None:
                node = node.with_variations(
                    node.variations.for_overlay(overlay_three_sigma_nm)
                )
            study = WorstCaseStudy(node, doe=self.doe)
            self._worst_case_by_overlay[overlay_three_sigma_nm] = study
        return study

    # -- work-list enumeration ----------------------------------------------------------

    def _seed_for(self, key: str) -> int:
        # crc32 rather than hash(): stable across interpreter invocations
        # and hash-seed randomisation (the Monte-Carlo engine's scheme), so
        # pool workers and the serial path derive identical streams.
        return zlib.crc32(f"{self.seed}/{key}".encode()) % (2**31)

    def work_items(
        self, kinds: Optional[Sequence[str]] = None
    ) -> List[CampaignItem]:
        """Enumerate the campaign items, nominals deduplicated by sim key.

        ``kinds`` restricts the enumeration (``("nominal",)`` skips the
        corner items *and* the per-option corner search entirely — the
        Table II path needs only nominals).
        """
        chosen_kinds = set(kinds) if kinds is not None else {"nominal", "corner"}
        unknown = chosen_kinds - {"nominal", "corner"}
        if unknown:
            raise CampaignError(f"unknown item kinds: {sorted(unknown)}")
        items: List[CampaignItem] = []
        seen_nominals: set = set()
        for scenario in self.scenarios:
            for size in self.doe.array_sizes:
                nominal_key = (scenario.sim_key, size)
                if "nominal" in chosen_kinds and nominal_key not in seen_nominals:
                    seen_nominals.add(nominal_key)
                    nominal = CampaignItem(
                        kind="nominal",
                        n_wordlines=size,
                        # Nominal columns are overlay-independent (the
                        # budget only moves corners), so the shared record
                        # carries a neutral scenario named after the sim
                        # key rather than whichever sweep point came first.
                        scenario=replace(
                            scenario,
                            label=scenario.sim_key,
                            overlay_three_sigma_nm=None,
                        ),
                        seed=0,
                    )
                    items.append(replace(nominal, seed=self._seed_for(nominal.key)))
                if "corner" not in chosen_kinds:
                    continue
                worst_case = self.worst_case_for(scenario.overlay_three_sigma_nm)
                for option_name in self.doe.option_names:
                    corner = worst_case.find_worst_corner(option_name)
                    item = CampaignItem(
                        kind="corner",
                        n_wordlines=size,
                        scenario=scenario,
                        seed=0,
                        option_name=option_name,
                        corner_parameters=tuple(
                            sorted(
                                (name, float(value))
                                for name, value in corner.parameters.items()
                            )
                        ),
                        corner_rvar=corner.bitline_variation.rvar,
                        corner_cvar=corner.bitline_variation.cvar,
                        corner_vss_rvar=corner.vss_variation.rvar,
                    )
                    items.append(replace(item, seed=self._seed_for(item.key)))
        return items

    def signature(self) -> Dict[str, object]:
        """Identity of this campaign, stored and verified by the store."""
        signature: Dict[str, object] = dict(self.signature_extra)
        signature.update({
            "array_sizes": list(self.doe.array_sizes),
            "option_names": list(self.doe.option_names),
            "n_bitline_pairs": self.doe.n_bitline_pairs,
            "scenarios": [scenario.as_dict() for scenario in self.scenarios],
            "seed": self.seed,
            "max_segments": self.max_segments,
            "node": (
                f"{self.node.name}"
                f"/ol{self.node.variations.litho_etch.overlay.three_sigma_nm:g}"
            ),
        })
        return signature

    # -- execution ---------------------------------------------------------------------

    @staticmethod
    def _chunks(items: Sequence[CampaignItem]) -> List[List[CampaignItem]]:
        grouped: Dict[Tuple[int, str], List[CampaignItem]] = {}
        for item in items:
            grouped.setdefault(item.chunk_key, []).append(item)
        # Longest (biggest array, most items) chunks first: simulation cost
        # grows with the array size, so LPT-style ordering keeps the pool
        # balanced.
        return sorted(
            grouped.values(),
            key=lambda chunk: (chunk[0].n_wordlines * len(chunk), len(chunk)),
            reverse=True,
        )

    @staticmethod
    def available_cpus() -> int:
        """CPUs this process may actually run on (affinity-aware)."""
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux fallback
            return os.cpu_count() or 1

    def _commit(
        self, outcomes: Sequence[Union[CampaignRecord, ItemFailure]]
    ) -> None:
        """Checkpoint finished outcomes into the memo (and the store).

        Failures land in the in-memory failure map only — persisting them
        would turn a transient machine problem into a permanent store
        entry; this way a rerun retries exactly the failed items.

        Commit is also the observability checkpoint: each outcome feeds
        the metrics registry (item wall-time histogram, per-operation and
        failure counters), and any pool-worker trace files are merged
        into the main trace here — the same granularity at which results
        become durable.
        """
        with span("campaign.commit", outcomes=len(outcomes)):
            for outcome in outcomes:
                if isinstance(outcome, ItemFailure):
                    obs_metrics.record_item_failure(outcome.classification)
                    self._failures[outcome.key] = outcome
                    continue
                obs_metrics.registry().inc(
                    "repro_items_total", operation=outcome.operation
                )
                obs_metrics.observe_item_wall(outcome.wall_s, outcome.operation)
                self._failures.pop(outcome.key, None)
                self._memo[outcome.key] = outcome
                if self.store is not None:
                    self.store.save_record(outcome)
            tracer = active_tracer()
            if tracer is not None:
                tracer.merge_workers()

    def _worker_initargs(self) -> tuple:
        tracer = active_tracer()
        trace_worker_dir = (
            str(tracer.worker_dir)
            if tracer is not None and tracer.worker_dir is not None
            else None
        )
        profiler = active_profiler()
        profile_worker_dir = (
            str(profiler.worker_dir)
            if profiler is not None and profiler.worker_dir is not None
            else None
        )
        return (
            self.node,
            self.doe.n_bitline_pairs,
            self.max_segments,
            self.failure_policy,
            self.max_retries,
            self.item_timeout_s,
            self.retry_backoff_s,
            self.solver,
            trace_worker_dir,
            profile_worker_dir,
        )

    def _requeue_lost(
        self,
        lost: Sequence[Sequence[CampaignItem]],
        crash_counts: Dict[str, int],
    ) -> List[List[CampaignItem]]:
        """Items to resubmit after a pool break, poison items quarantined.

        A broken pool loses *every* in-flight chunk, not just the one
        whose worker died, so the culprit cannot be identified from the
        break alone.  Each lost item is charged one crash and resubmitted
        as a singleton chunk; :meth:`_run_pool` then switches to
        isolation mode (one chunk per pool), where a second break charges
        the true culprit alone — and two charges quarantine it as poison,
        recorded as a typed ``worker_crash`` failure and never run again.
        """
        requeued: List[List[CampaignItem]] = []
        for chunk in lost:
            for item in chunk:
                if item.key in self._memo:
                    continue
                count = crash_counts.get(item.key, 0) + 1
                crash_counts[item.key] = count
                if count >= 2:
                    failure = ItemFailure(
                        key=item.key,
                        classification="worker_crash",
                        error_type="BrokenProcessPool",
                        message=(
                            "a pool worker died twice while holding this "
                            "item; quarantined as poison"
                        ),
                        attempts=count,
                        stage="worker",
                    )
                    if self.failure_policy == "fail_fast":
                        raise CampaignExecutionError(failure)
                    self._failures[item.key] = failure
                else:
                    requeued.append([item])
        return requeued

    def _run_pool(self, chunks: List[List[CampaignItem]], effective: int) -> None:
        """Fan chunks out over a process pool, surviving dead workers.

        A worker killed mid-chunk (OOM, segfault, an injected crash)
        breaks the whole ``ProcessPoolExecutor``; the executor cannot be
        reused, so the pool is rebuilt and the lost chunks re-executed
        (see :meth:`_requeue_lost` for the poison bookkeeping).  Chunks
        that completed before the break stay committed either way.

        After the first break the run switches to *isolation mode*: one
        chunk per pool.  A shared break cannot tell the poison item from
        innocent chunks that happened to be in flight, so the first
        charge is collective — but every later charge must be precise,
        or a fast-crashing poison item would repeatedly drag its
        neighbours over the quarantine threshold.  Isolation pays one
        pool spin-up per remaining chunk, which only matters on the
        already-rare crash path.
        """
        crash_counts: Dict[str, int] = {}
        pending = list(chunks)
        isolate = False
        while pending:
            if isolate:
                batch, pending = [pending[0]], pending[1:]
            else:
                batch, pending = pending, []
            lost: List[List[CampaignItem]] = []
            with ProcessPoolExecutor(
                max_workers=min(effective, len(batch)),
                initializer=_init_campaign_worker,
                initargs=self._worker_initargs(),
            ) as pool:
                futures = {
                    pool.submit(_run_chunk_worker, chunk): chunk
                    for chunk in batch
                }
                for future in as_completed(futures):
                    try:
                        self._commit(future.result())
                    except BrokenExecutor:
                        lost.append(futures[future])
            if lost:
                isolate = True
                pending = self._requeue_lost(lost, crash_counts) + pending

    def _run_serial_batched(self, chunks: List[List[CampaignItem]]) -> None:
        """Serial batched execution: one joint solve over every chunk.

        All chunks are prepared first (cheap: circuit building and lane
        specs), then solved in a single jointly-vectorized call — lanes
        of the same topology stack across chunk boundaries, so e.g. the
        SNM butterfly sweeps of every array size iterate as one stacked
        Newton system.  Outcomes still commit chunk by chunk, in LPT
        order; if preparation dies mid-campaign the chunks prepared
        before the failure are solved and committed before the error
        propagates, preserving the scalar tier's checkpoint granularity.
        """
        state = self._local_state
        prepared: List[list] = []

        def flush() -> None:
            for outcomes in state.finish_chunks(prepared):
                self._commit(outcomes)
            prepared.clear()

        try:
            for chunk in chunks:
                with span("campaign.prepare", items=len(chunk)):
                    prepared.append(state.prepare_chunk(chunk))
        except BaseException:
            flush()
            raise
        flush()

    def run(
        self,
        workers: Optional[int] = None,
        clamp_to_cpus: bool = True,
        kinds: Optional[Sequence[str]] = None,
    ) -> CampaignResults:
        """Execute the campaign and return every record in work-list order.

        ``workers`` > 1 fans the chunks out over a process pool; the
        records are identical to a serial run (everything downstream of the
        corner search is a deterministic function of the item).  Completed
        items — from the in-memory memo or the disk store — are skipped,
        and finished chunks are checkpointed as they complete, so an
        interrupted or failing campaign resumes from the last finished
        chunk rather than from the previous run.

        ``workers`` is a request, not a mandate: by default it is clamped
        to the CPUs the process may run on (``-j``-style semantics), and
        when no parallelism is available the campaign runs in-process
        rather than paying pool overhead for nothing.  Pass
        ``clamp_to_cpus=False`` to force the pool regardless (used by the
        cross-process determinism tests).  ``kinds`` restricts the run to
        a subset of item kinds (see :meth:`work_items`).

        Under ``failure_policy="skip"``/``"retry"`` the results may be
        partial: items that failed every attempt (or were quarantined as
        poison after killing two pool workers) come back as typed
        :attr:`CampaignResults.failures` instead of records, and a later
        ``run()`` retries exactly those items.
        """
        items = self.work_items(kinds=kinds)
        if self.store is not None:
            self.store.prepare(self.signature())
            for key, record in self.store.load_records().items():
                self._memo.setdefault(key, record)
        pending = [item for item in items if item.key not in self._memo]
        for item in pending:
            self._failures.pop(item.key, None)
        chunks = self._chunks(pending)

        effective = workers if workers is not None else 1
        if clamp_to_cpus:
            effective = min(effective, self.available_cpus())

        self.last_run_stats = {}
        with span(
            "campaign.run",
            pending=len(pending),
            chunks=len(chunks),
            solver=self.solver,
        ) as run_span:
            if effective > 1 and len(chunks) > 1:
                with span("campaign.pool", workers=effective, chunks=len(chunks)):
                    self._run_pool(chunks, effective)
            else:
                if self._local_state is None:
                    self._local_state = CampaignWorkerState(
                        self.node,
                        self.doe.n_bitline_pairs,
                        self.max_segments,
                        failure_policy=self.failure_policy,
                        max_retries=self.max_retries,
                        item_timeout_s=self.item_timeout_s,
                        retry_backoff_s=self.retry_backoff_s,
                        solver=self.solver,
                    )
                stats_before = solver_stats().as_dict()
                if self.solver == "batched":
                    self._run_serial_batched(chunks)
                else:
                    for chunk in chunks:
                        self._commit(self._local_state.run_chunk(chunk))
                self.last_run_stats = {
                    key: value - stats_before.get(key, 0)
                    for key, value in solver_stats().as_dict().items()
                }
                run_span.annotate(
                    solver_stats={
                        k: v for k, v in self.last_run_stats.items() if v
                    }
                )
        tracer = active_tracer()
        if tracer is not None:
            tracer.merge_workers()

        return CampaignResults(
            [self._memo[item.key] for item in items if item.key in self._memo],
            failures=[
                self._failures[item.key]
                for item in items
                if item.key in self._failures
            ],
        )

    # -- experiment views ---------------------------------------------------------------

    def _scenario_or_default(
        self, scenario: Optional[CampaignScenario]
    ) -> CampaignScenario:
        chosen = scenario if scenario is not None else self.scenarios[0]
        if chosen not in self.scenarios:
            raise CampaignError(f"scenario {chosen.label!r} is not part of this campaign")
        return chosen

    def operation_rows(
        self,
        results: CampaignResults,
        scenario: Optional[CampaignScenario] = None,
    ) -> List[OperationImpactRow]:
        """Operation-suite rows: nominal value + per-option impact (%).

        Works for any operation scenario (including read, where the
        impacts are exactly the Fig. 4 tdp values).  Partial-result
        aware: a size whose nominal item failed is omitted entirely, and
        a failed corner item just drops its option from that row — the
        typed failures stay visible in ``results.failures``.
        """
        chosen = self._scenario_or_default(scenario)
        rows: List[OperationImpactRow] = []
        for size in self.doe.array_sizes:
            nominal = results.get(f"n{size}-nominal-{chosen.sim_key}")
            if nominal is None:
                continue
            deltas = {
                option_name: results.penalty_percent(chosen, option_name, size)
                for option_name in self.doe.option_names
                if results.get(f"n{size}-{option_name}-{chosen.label}") is not None
            }
            rows.append(
                OperationImpactRow(
                    operation=chosen.operation,
                    array_label=f"{self.doe.n_bitline_pairs}x{size}",
                    n_wordlines=size,
                    nominal_value=nominal.value,
                    unit=nominal.unit,
                    delta_percent_by_option=deltas,
                )
            )
        return rows

    def figure4_rows(
        self,
        results: CampaignResults,
        scenario: Optional[CampaignScenario] = None,
    ) -> List[WorstCaseTdRow]:
        """Fig. 4 rows (nominal td + per-option tdp) from campaign records."""
        chosen = self._scenario_or_default(scenario)
        if chosen.operation != "read":
            raise CampaignError(
                "Fig. 4 rows are defined for read scenarios; use operation_rows "
                f"for {chosen.operation!r}"
            )
        rows: List[WorstCaseTdRow] = []
        for size in self.doe.array_sizes:
            nominal = results.nominal(chosen.sim_key, size)
            penalties = {
                option_name: results.penalty_percent(chosen, option_name, size)
                for option_name in self.doe.option_names
            }
            rows.append(
                WorstCaseTdRow(
                    array_label=f"{self.doe.n_bitline_pairs}x{size}",
                    n_wordlines=size,
                    nominal_td_ps=nominal.td_ps,
                    tdp_percent_by_option=penalties,
                )
            )
        return rows

    def table2_rows(
        self,
        results: CampaignResults,
        model: AnalyticalDelayModel,
        scenario: Optional[CampaignScenario] = None,
    ) -> List[FormulaVsSimulationTdRow]:
        """Table II rows (simulated versus formula nominal td)."""
        chosen = self._scenario_or_default(scenario)
        if chosen.operation != "read":
            raise CampaignError("Table II rows are defined for read scenarios")
        return [
            FormulaVsSimulationTdRow(
                array_label=f"{self.doe.n_bitline_pairs}x{size}",
                n_wordlines=size,
                simulation_td_s=results.nominal(chosen.sim_key, size).td_s,
                formula_td_s=model.td_nominal_s(size),
            )
            for size in self.doe.array_sizes
        ]

    def table3_rows(
        self,
        results: CampaignResults,
        model: AnalyticalDelayModel,
        scenario: Optional[CampaignScenario] = None,
    ) -> List[FormulaVsSimulationTdpRow]:
        """Table III rows (simulation and formula tdp, interleaved per size)."""
        chosen = self._scenario_or_default(scenario)
        if chosen.operation != "read":
            raise CampaignError("Table III rows are defined for read scenarios")
        rows: List[FormulaVsSimulationTdpRow] = []
        for size in self.doe.array_sizes:
            simulated: Dict[str, float] = {}
            formula: Dict[str, float] = {}
            for option_name in self.doe.option_names:
                record = results.corner(chosen.label, option_name, size)
                simulated[option_name] = results.penalty_percent(
                    chosen, option_name, size
                )
                formula[option_name] = model.tdp_percent(
                    size, record.corner_rvar, record.corner_cvar
                )
            label = f"{self.doe.n_bitline_pairs}x{size}"
            rows.append(
                FormulaVsSimulationTdpRow(
                    method="simulation",
                    array_label=label,
                    n_wordlines=size,
                    tdp_percent_by_option=simulated,
                )
            )
            rows.append(
                FormulaVsSimulationTdpRow(
                    method="formula",
                    array_label=label,
                    n_wordlines=size,
                    tdp_percent_by_option=formula,
                )
            )
        return rows


    def report_dict(self, results: CampaignResults) -> Dict[str, object]:
        """JSON-ready report: the campaign signature plus every record."""
        return {
            "campaign": self.signature(),
            "n_records": len(results),
            "records": [record.to_dict() for record in results],
        }


def scenario_grid(
    overlay_budgets_nm: Sequence[Optional[float]] = (None,),
    stored_values: Sequence[int] = (0,),
    strap_intervals: Sequence[int] = (256,),
    methods: Sequence[str] = ("backward-euler",),
    operations: Sequence[str] = ("read",),
) -> List[CampaignScenario]:
    """Cross scenario axes into labelled :class:`CampaignScenario` objects.

    Labels are derived from the non-default axis values (``"paper"`` when
    every axis is at its default), so a sweep produces self-describing
    store keys such as ``"write-ol5nm"`` or ``"ol5nm-sv1-trap"``.
    """
    scenarios: List[CampaignScenario] = []
    for operation in operations:
        for overlay in overlay_budgets_nm:
            for stored_value in stored_values:
                for strap in strap_intervals:
                    for method in methods:
                        parts: List[str] = []
                        if operation != "read":
                            parts.append(operation)
                        if overlay is not None:
                            parts.append(f"ol{overlay:g}nm")
                        if stored_value != 0:
                            parts.append(f"sv{stored_value}")
                        if strap != 256:
                            parts.append(f"strap{strap}")
                        if method != "backward-euler":
                            parts.append(_METHOD_TAGS[method])
                        scenarios.append(
                            CampaignScenario(
                                label="-".join(parts) if parts else "paper",
                                overlay_three_sigma_nm=overlay,
                                stored_value=stored_value,
                                vss_strap_interval_cells=strap,
                                method=method,
                                operation=operation,
                            )
                        )
    return scenarios
