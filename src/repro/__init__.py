"""repro — reproduction of "Impact of Interconnect Multiple-Patterning
Variability on SRAMs" (Karageorgos et al., DATE 2015).

The library quantifies how multiple-patterning interconnect variability
(triple litho-etch, SADP, single-patterning EUV) on a 10 nm-class metal1
layer degrades SRAM read performance.  It contains everything the study
needs, built from scratch:

* :mod:`repro.technology` — N10-class metal stack, FinFET devices,
  variation assumptions;
* :mod:`repro.layout` — parametric 6T-cell / array layout generation and
  GDS-like I/O;
* :mod:`repro.patterning` — LE/LE3, SADP and EUV patterning models with
  mask decomposition, worst-case corners and Monte-Carlo sampling;
* :mod:`repro.extraction` — the parameterized LPE tool (trapezoidal wire
  profiles, Sakurai-Tamaru capacitance models, patterning-aware R/C/CC
  extraction);
* :mod:`repro.circuit` — an MNA-based SPICE-level DC/transient simulator
  with an alpha-power-law FinFET model;
* :mod:`repro.sram` — 6T cell, bit-line ladders, precharge, sense amp and
  the read-path simulation harness;
* :mod:`repro.variability` — distributions, statistics, Monte-Carlo
  engine, DOE;
* :mod:`repro.core` — the paper's contribution: the analytical td/tdp
  formula, the worst-case and Monte-Carlo studies and the option
  comparison;
* :mod:`repro.reporting` — paper-style tables and figure data.

Quick start — the declarative API (preferred)::

    from repro.api import run
    from repro.core.spec import ExperimentSpec

    result = run(ExperimentSpec(kind="worst_case"))
    print(result.to_text())            # worst-case dCbl/dRbl per option

or the classic study front door (maintained as a compatibility shim)::

    from repro import MultiPatterningSRAMStudy
    from repro.technology import n10

    study = MultiPatterningSRAMStudy(n10())
    print(study.run_table1())          # worst-case dCbl/dRbl per option
"""

from .core import (
    AnalyticalDelayModel,
    ArraySpec,
    ComparisonVerdict,
    ExecutionSpec,
    ExperimentSpec,
    FormulaValidation,
    MonteCarloTdpStudy,
    MultiPatterningSRAMStudy,
    OperationSpec,
    OptionComparison,
    ScenarioSpec,
    SpecError,
    StudyReport,
    TechnologySpec,
    WorstCaseStudy,
    discharge_constant,
    model_from_technology,
)
from .technology import TechnologyNode, n10

__version__ = "1.3.0"

__all__ = [
    "AnalyticalDelayModel",
    "ArraySpec",
    "ComparisonVerdict",
    "ExecutionSpec",
    "ExperimentSpec",
    "FormulaValidation",
    "MonteCarloTdpStudy",
    "MultiPatterningSRAMStudy",
    "OperationSpec",
    "OptionComparison",
    "ScenarioSpec",
    "SpecError",
    "StudyReport",
    "TechnologyNode",
    "TechnologySpec",
    "WorstCaseStudy",
    "__version__",
    "discharge_constant",
    "model_from_technology",
    "n10",
]
