"""Summary statistics and histograms for variability studies.

The Monte-Carlo tdp study reports its results as distributions (Fig. 5)
and as standard deviations (Table IV); this module provides the small set
of statistics the reporting layer needs, with explicit dataclasses instead
of loose tuples so results are self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


class StatisticsError(ValueError):
    """Raised for empty or malformed sample sets."""


@dataclass(frozen=True)
class SummaryStatistics:
    """Moments and quantiles of a sample set."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    percentile_1: float
    percentile_99: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "SummaryStatistics":
        array = np.asarray(list(samples), dtype=float)
        if array.size == 0:
            raise StatisticsError("cannot summarise an empty sample set")
        if not np.all(np.isfinite(array)):
            raise StatisticsError("samples contain non-finite values")
        return cls(
            count=int(array.size),
            mean=float(np.mean(array)),
            std=float(np.std(array, ddof=1)) if array.size > 1 else 0.0,
            minimum=float(np.min(array)),
            maximum=float(np.max(array)),
            median=float(np.median(array)),
            percentile_1=float(np.percentile(array, 1.0)),
            percentile_99=float(np.percentile(array, 99.0)),
        )

    @property
    def spread(self) -> float:
        """Max minus min."""
        return self.maximum - self.minimum

    def three_sigma_interval(self) -> Tuple[float, float]:
        return (self.mean - 3.0 * self.std, self.mean + 3.0 * self.std)


@dataclass(frozen=True)
class Histogram:
    """A fixed-bin histogram of a sample set (the data behind Fig. 5)."""

    bin_edges: Tuple[float, ...]
    counts: Tuple[int, ...]
    total: int

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[float],
        bins: int = 30,
        value_range: Optional[Tuple[float, float]] = None,
    ) -> "Histogram":
        array = np.asarray(list(samples), dtype=float)
        if array.size == 0:
            raise StatisticsError("cannot histogram an empty sample set")
        if bins < 1:
            raise StatisticsError("a histogram needs at least one bin")
        counts, edges = np.histogram(array, bins=bins, range=value_range)
        return cls(
            bin_edges=tuple(float(edge) for edge in edges),
            counts=tuple(int(count) for count in counts),
            total=int(array.size),
        )

    @property
    def bin_centers(self) -> List[float]:
        return [
            0.5 * (self.bin_edges[index] + self.bin_edges[index + 1])
            for index in range(len(self.counts))
        ]

    @property
    def densities(self) -> List[float]:
        """Counts normalised to unit total (probability per bin)."""
        if self.total == 0:
            raise StatisticsError("empty histogram")
        return [count / self.total for count in self.counts]

    def mode_bin_center(self) -> float:
        """Centre of the most populated bin."""
        index = int(np.argmax(self.counts))
        return self.bin_centers[index]

    def ascii_rows(self, width: int = 40) -> List[str]:
        """Render the histogram as text rows (used by the reporting layer)."""
        peak = max(self.counts) if self.counts else 0
        rows = []
        for center, count in zip(self.bin_centers, self.counts):
            bar = "" if peak == 0 else "#" * max(0, round(width * count / peak))
            rows.append(f"{center:10.4f} | {bar} {count}")
        return rows


def standard_deviation(samples: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1), the σ reported in Table IV."""
    return SummaryStatistics.from_samples(samples).std


def correlation(first: Sequence[float], second: Sequence[float]) -> float:
    """Pearson correlation between two equally long sample sets."""
    a = np.asarray(list(first), dtype=float)
    b = np.asarray(list(second), dtype=float)
    if a.size != b.size:
        raise StatisticsError("correlation needs equally long sample sets")
    if a.size < 2:
        raise StatisticsError("correlation needs at least two samples")
    if np.std(a) == 0.0 or np.std(b) == 0.0:
        raise StatisticsError("correlation is undefined for constant samples")
    return float(np.corrcoef(a, b)[0, 1])
