"""Probability distributions used by the variability studies.

The paper specifies all process variations as zero-mean normals through
their 3σ budgets.  Besides the plain normal, a truncated variant is
provided (specification-limited parameters cannot exceed their budget) and
a deterministic "corner" distribution that always returns ±3σ — useful for
reusing the Monte-Carlo machinery in worst-case mode and in tests.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np


class DistributionError(ValueError):
    """Raised for invalid distribution parameters."""


class Distribution(abc.ABC):
    """A scalar random variable that can be sampled with a numpy Generator."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw one value (``size=None``) or an array of ``size`` values."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Analytical mean."""

    @abc.abstractmethod
    def std(self) -> float:
        """Analytical standard deviation."""

    @abc.abstractmethod
    def logpdf(self, x):
        """Log density (or log mass) at ``x``; scalar in, scalar out,
        array in, array out.  Exact log densities are what make
        importance-sampling weights analytic: the high-sigma engine
        reweights proposal draws by ``exp(logpdf_target - logpdf_proposal)``
        without any numerical normalisation."""

    @abc.abstractmethod
    def shifted(self, mu: float) -> "Distribution":
        """The same-family distribution re-centred at ``mu``.

        The mean-shift importance sampler builds its proposal components
        with this: same spread and shape, new location."""


@dataclass(frozen=True)
class NormalDistribution(Distribution):
    """A normal distribution parameterised by mean and standard deviation."""

    mu: float = 0.0
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma < 0.0:
            raise DistributionError("sigma cannot be negative")

    @classmethod
    def from_three_sigma(cls, three_sigma: float, mu: float = 0.0) -> "NormalDistribution":
        """Build from a 3σ budget (the paper's way of quoting variations)."""
        if three_sigma < 0.0:
            raise DistributionError("a 3-sigma budget cannot be negative")
        return cls(mu=mu, sigma=three_sigma / 3.0)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if self.sigma == 0.0:
            return self.mu if size is None else np.full(size, self.mu)
        return rng.normal(self.mu, self.sigma, size)

    def mean(self) -> float:
        return self.mu

    def std(self) -> float:
        return self.sigma

    def logpdf(self, x):
        if self.sigma == 0.0:
            raise DistributionError("a degenerate normal has no density")
        z = (np.asarray(x, dtype=float) - self.mu) / self.sigma
        out = -0.5 * z * z - math.log(self.sigma) - 0.5 * math.log(2.0 * math.pi)
        return float(out) if np.isscalar(x) else out

    def shifted(self, mu: float) -> "NormalDistribution":
        return NormalDistribution(mu=float(mu), sigma=self.sigma)


@dataclass(frozen=True)
class TruncatedNormalDistribution(Distribution):
    """A normal truncated symmetrically at ``± n_sigma · sigma`` around the mean.

    Sampling uses rejection, which is perfectly efficient for the ±3σ
    truncation used here (acceptance ≈ 99.7 %).
    """

    mu: float = 0.0
    sigma: float = 1.0
    n_sigma: float = 3.0

    def __post_init__(self) -> None:
        if self.sigma < 0.0:
            raise DistributionError("sigma cannot be negative")
        if self.n_sigma <= 0.0:
            raise DistributionError("the truncation width must be positive")

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if self.sigma == 0.0:
            return self.mu if size is None else np.full(size, self.mu)
        bound = self.n_sigma * self.sigma
        count = 1 if size is None else int(size)
        samples = np.empty(count)
        filled = 0
        while filled < count:
            draw = rng.normal(self.mu, self.sigma, count - filled)
            keep = draw[np.abs(draw - self.mu) <= bound]
            samples[filled : filled + keep.size] = keep
            filled += keep.size
        return float(samples[0]) if size is None else samples

    def mean(self) -> float:
        return self.mu

    def std(self) -> float:
        # Variance of a symmetrically truncated normal.
        a = self.n_sigma
        phi = math.exp(-0.5 * a * a) / math.sqrt(2.0 * math.pi)
        cdf_width = math.erf(a / math.sqrt(2.0))
        variance_factor = 1.0 - 2.0 * a * phi / cdf_width
        return self.sigma * math.sqrt(max(variance_factor, 0.0))

    def logpdf(self, x):
        if self.sigma == 0.0:
            raise DistributionError("a degenerate truncated normal has no density")
        arr = np.asarray(x, dtype=float)
        z = (arr - self.mu) / self.sigma
        # The parent normal's log density, renormalised by the truncated
        # mass erf(a/sqrt(2)); outside the ±a·sigma support the density is
        # exactly zero (log → -inf), which is what makes IS weights of
        # out-of-support proposal draws vanish instead of misbehaving.
        log_mass = math.log(math.erf(self.n_sigma / math.sqrt(2.0)))
        body = (
            -0.5 * z * z
            - math.log(self.sigma)
            - 0.5 * math.log(2.0 * math.pi)
            - log_mass
        )
        out = np.where(np.abs(z) <= self.n_sigma, body, -np.inf)
        return float(out) if np.isscalar(x) else out

    def shifted(self, mu: float) -> "TruncatedNormalDistribution":
        return TruncatedNormalDistribution(
            mu=float(mu), sigma=self.sigma, n_sigma=self.n_sigma
        )


@dataclass(frozen=True)
class CornerDistribution(Distribution):
    """A two-point distribution at ``mu ± excursion`` (equal probability).

    Sampling from it turns a Monte-Carlo loop into a randomised corner
    study; it is also convenient for property-based tests, where the exact
    output set is known.
    """

    excursion: float
    mu: float = 0.0

    def __post_init__(self) -> None:
        if self.excursion < 0.0:
            raise DistributionError("the corner excursion cannot be negative")

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        signs = rng.choice((-1.0, 1.0), size=size)
        return self.mu + self.excursion * signs

    def mean(self) -> float:
        return self.mu

    def std(self) -> float:
        return self.excursion

    def logpdf(self, x):
        # Discrete two-point law: log *mass*, log(1/2) on each corner.
        # Matching is tolerant to float round-off so standardise →
        # unstandardise round trips stay on-support.
        arr = np.asarray(x, dtype=float)
        on_corner = np.isclose(np.abs(arr - self.mu), self.excursion)
        out = np.where(on_corner, math.log(0.5), -np.inf)
        return float(out) if np.isscalar(x) else out

    def shifted(self, mu: float) -> "CornerDistribution":
        return CornerDistribution(excursion=self.excursion, mu=float(mu))
