"""Variability substrate: distributions, statistics, generic Monte-Carlo engine, DOE."""

from .distributions import (
    CornerDistribution,
    Distribution,
    DistributionError,
    NormalDistribution,
    TruncatedNormalDistribution,
)
from .doe import DOEError, DOEPoint, StudyDOE, paper_doe, reduced_doe
from .montecarlo import (
    MonteCarloEngine,
    MonteCarloError,
    MonteCarloRun,
    MonteCarloSample,
)
from .statistics import (
    Histogram,
    StatisticsError,
    SummaryStatistics,
    correlation,
    standard_deviation,
)

__all__ = [
    "CornerDistribution",
    "DOEError",
    "DOEPoint",
    "Distribution",
    "DistributionError",
    "Histogram",
    "MonteCarloEngine",
    "MonteCarloError",
    "MonteCarloRun",
    "MonteCarloSample",
    "NormalDistribution",
    "StatisticsError",
    "StudyDOE",
    "SummaryStatistics",
    "TruncatedNormalDistribution",
    "correlation",
    "paper_doe",
    "reduced_doe",
    "standard_deviation",
]
