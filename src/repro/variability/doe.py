"""Design-of-experiments description of the study.

The paper's DOE (Fig. 3) is the cross product of:

* four array sizes — 16, 64, 256 and 1024 word lines — at a fixed word
  length of 10 bit-line pairs;
* three patterning options — LELELE, SADP and EUV;
* (for the Monte-Carlo study) four LE3 overlay budgets — 3, 5, 7 and 8 nm.

:class:`StudyDOE` captures that grid so the worst-case and Monte-Carlo
studies, the benches and the examples all iterate the same cells in the
same order as the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..layout.array import PAPER_ARRAY_SIZES, PAPER_BITLINE_PAIRS
from ..patterning import PAPER_OPTIONS


class DOEError(ValueError):
    """Raised for malformed DOE descriptions."""


@dataclass(frozen=True)
class DOEPoint:
    """One cell of the study grid."""

    n_wordlines: int
    option_name: str
    overlay_three_sigma_nm: Optional[float] = None

    @property
    def array_label(self) -> str:
        return f"{PAPER_BITLINE_PAIRS}x{self.n_wordlines}"

    @property
    def label(self) -> str:
        if self.overlay_three_sigma_nm is None:
            return f"{self.array_label}/{self.option_name}"
        return (
            f"{self.array_label}/{self.option_name}"
            f"@OL{self.overlay_three_sigma_nm:g}nm"
        )


@dataclass(frozen=True)
class StudyDOE:
    """The full experiment grid of the reproduction."""

    array_sizes: Tuple[int, ...] = PAPER_ARRAY_SIZES
    option_names: Tuple[str, ...] = PAPER_OPTIONS
    n_bitline_pairs: int = PAPER_BITLINE_PAIRS
    overlay_budgets_nm: Tuple[float, ...] = (3.0, 5.0, 7.0, 8.0)

    def __post_init__(self) -> None:
        if not self.array_sizes:
            raise DOEError("the DOE needs at least one array size")
        if any(size < 1 for size in self.array_sizes):
            raise DOEError("array sizes must be positive")
        if not self.option_names:
            raise DOEError("the DOE needs at least one patterning option")
        if self.n_bitline_pairs < 1:
            raise DOEError("the word length must be at least one bit-line pair")
        if any(budget <= 0.0 for budget in self.overlay_budgets_nm):
            raise DOEError("overlay budgets must be positive")

    # -- grids ------------------------------------------------------------------------

    def worst_case_points(self) -> List[DOEPoint]:
        """Array × option grid of the worst-case study (Fig. 4 / Table III)."""
        return [
            DOEPoint(n_wordlines=size, option_name=option)
            for size in self.array_sizes
            for option in self.option_names
        ]

    def monte_carlo_points(self, n_wordlines: Optional[int] = None) -> List[DOEPoint]:
        """Option × overlay grid of the Monte-Carlo study (Table IV).

        The overlay budget only applies to litho-etch options; SADP and EUV
        appear once each.  The paper runs this at ``n = 64``.
        """
        size = n_wordlines if n_wordlines is not None else 64
        if size < 1:
            raise DOEError("the Monte-Carlo array size must be positive")
        points: List[DOEPoint] = []
        for option in self.option_names:
            if option.upper().startswith("LE"):
                for budget in self.overlay_budgets_nm:
                    points.append(
                        DOEPoint(
                            n_wordlines=size,
                            option_name=option,
                            overlay_three_sigma_nm=budget,
                        )
                    )
            else:
                points.append(DOEPoint(n_wordlines=size, option_name=option))
        return points

    def __iter__(self) -> Iterator[DOEPoint]:
        return iter(self.worst_case_points())


def paper_doe() -> StudyDOE:
    """The exact DOE of the paper."""
    return StudyDOE()


def reduced_doe(max_wordlines: int = 64) -> StudyDOE:
    """A smaller DOE (array sizes capped) for fast tests and CI runs."""
    sizes = tuple(size for size in PAPER_ARRAY_SIZES if size <= max_wordlines)
    if not sizes:
        sizes = (min(PAPER_ARRAY_SIZES),)
    return StudyDOE(array_sizes=sizes)
