"""A small generic Monte-Carlo engine.

The LPE driver has its own specialised Monte-Carlo loop; this engine is
the generic counterpart used by the core study when the evaluated quantity
is a cheap function of the sampled parameters (for example the analytical
tdp formula evaluated on sampled RC variations).  It takes care of
seeding, batching and collecting per-sample records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

from .distributions import Distribution
from .statistics import Histogram, SummaryStatistics

ResultT = TypeVar("ResultT")


class MonteCarloError(ValueError):
    """Raised for invalid Monte-Carlo configurations."""


@dataclass(frozen=True)
class MonteCarloSample(Generic[ResultT]):
    """One Monte-Carlo record: the drawn parameters and the evaluated result."""

    index: int
    parameters: Dict[str, float]
    result: ResultT


@dataclass
class MonteCarloRun(Generic[ResultT]):
    """All records of a Monte-Carlo run plus convenience statistics."""

    samples: List[MonteCarloSample[ResultT]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def results(self) -> List[ResultT]:
        return [sample.result for sample in self.samples]

    def values(self, extractor: Callable[[ResultT], float]) -> List[float]:
        return [extractor(sample.result) for sample in self.samples]

    def parameter_values(self, name: str) -> List[float]:
        return [sample.parameters[name] for sample in self.samples]

    def summary(self, extractor: Callable[[ResultT], float]) -> SummaryStatistics:
        return SummaryStatistics.from_samples(self.values(extractor))

    def histogram(
        self, extractor: Callable[[ResultT], float], bins: int = 30
    ) -> Histogram:
        return Histogram.from_samples(self.values(extractor), bins=bins)


class MonteCarloEngine:
    """Samples named parameters from distributions and evaluates a model.

    Parameters
    ----------
    parameter_distributions:
        Mapping parameter name → :class:`~repro.variability.distributions.Distribution`.
    model:
        Callable evaluated per sample with the drawn parameter dictionary.
    seed:
        Seed of the numpy random generator (fixed seeds make studies
        reproducible; the benches always pass one).
    """

    def __init__(
        self,
        parameter_distributions: Dict[str, Distribution],
        model: Callable[[Dict[str, float]], ResultT],
        seed: Optional[int] = None,
    ) -> None:
        if not parameter_distributions:
            raise MonteCarloError("at least one parameter distribution is required")
        self.parameter_distributions = dict(parameter_distributions)
        self.model = model
        self._rng = np.random.default_rng(seed)

    def draw_parameters(self) -> Dict[str, float]:
        return {
            name: float(distribution.sample(self._rng))
            for name, distribution in sorted(self.parameter_distributions.items())
        }

    def run(self, n_samples: int) -> MonteCarloRun[ResultT]:
        """Evaluate the model on ``n_samples`` independent draws."""
        if n_samples < 1:
            raise MonteCarloError("the sample count must be positive")
        run: MonteCarloRun[ResultT] = MonteCarloRun()
        for index in range(n_samples):
            parameters = self.draw_parameters()
            result = self.model(parameters)
            run.samples.append(
                MonteCarloSample(index=index, parameters=parameters, result=result)
            )
        return run

    def run_until(
        self,
        extractor: Callable[[ResultT], float],
        relative_std_error: float = 0.02,
        min_samples: int = 100,
        max_samples: int = 20_000,
        batch: int = 100,
    ) -> MonteCarloRun[ResultT]:
        """Run until the standard error of the mean is small enough.

        A convergence-controlled alternative to a fixed sample count; the
        relative standard error is measured against the sample standard
        deviation (not the mean) so zero-centred quantities behave.
        """
        if not 0.0 < relative_std_error < 1.0:
            raise MonteCarloError("relative_std_error must be in (0, 1)")
        if min_samples < 2 or max_samples < min_samples:
            raise MonteCarloError("need max_samples >= min_samples >= 2")
        run: MonteCarloRun[ResultT] = MonteCarloRun()
        while len(run) < max_samples:
            target = min(batch, max_samples - len(run))
            for _ in range(target):
                parameters = self.draw_parameters()
                run.samples.append(
                    MonteCarloSample(
                        index=len(run), parameters=parameters, result=self.model(parameters)
                    )
                )
            if len(run) >= min_samples:
                summary = run.summary(extractor)
                if summary.std == 0.0:
                    break
                standard_error = summary.std / (len(run) ** 0.5)
                if standard_error <= relative_std_error * summary.std:
                    break
        return run
