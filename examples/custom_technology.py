"""Evaluating a custom technology: tighter pitch, air-gap dielectric, tuned cell.

The study is not hard-wired to the N10 defaults: every input — metal
stack, materials, devices, operating point, variation budgets, cell
template — is an object the user can replace.  This example builds a
hypothetical "N7-like" variant (42 nm metal1 pitch, taller lines, air-gap
intra-layer dielectric, a faster 1-1-2 cell) and asks the same question
the paper asks of N10: how much read-time variability does each patterning
option cost, and does the LE3-versus-SADP conclusion survive the node
change?

Run with::

    python examples/custom_technology.py
"""

from __future__ import annotations

import dataclasses

from repro.core import OptionComparison, WorstCaseStudy, model_from_technology
from repro.core.montecarlo import MonteCarloTdpStudy
from repro.reporting import format_figure4, format_table1, format_table4
from repro.sram import ReadPathSimulator
from repro.technology import (
    AIR_GAP,
    LOW_K,
    BarrierLiner,
    MaterialSystem,
    MetalLayer,
    MetalStack,
    OperatingConditions,
    Orientation,
    TechnologyNode,
    default_n10_metal_stack,
    default_sram_transistors,
    paper_assumptions,
)
from repro.variability.doe import StudyDOE


def build_custom_node() -> TechnologyNode:
    """A hypothetical N7-like node with air-gap metal1."""
    airgap_materials = MaterialSystem(
        barrier=BarrierLiner(thickness_nm=1.2),
        intra_layer_dielectric=AIR_GAP,     # air gap between minimum-pitch lines
        inter_layer_dielectric=LOW_K,
    )
    metal1 = MetalLayer(
        name="metal1",
        pitch_nm=42.0,
        min_width_nm=21.0,
        min_space_nm=21.0,
        thickness_nm=44.0,
        tapering_angle_deg=3.0,
        ild_below_nm=34.0,
        ild_above_nm=38.0,
        orientation=Orientation.HORIZONTAL,
        materials=airgap_materials,
        cmp_dishing_nm=0.4,
    )
    # Keep metal2/metal3 from the N10 stack (word lines are not the study's focus).
    base_stack = default_n10_metal_stack()
    stack = MetalStack.from_layers([metal1, base_stack.layer("metal2"), base_stack.layer("metal3")])

    # A performance-oriented cell: two fins on the pull-down.
    devices = dataclasses.replace(default_sram_transistors(), pull_down_fins=2)

    # Lower supply, same 70 mV sense amplifier.
    conditions = OperatingConditions(vdd_v=0.65, sense_amp_sensitivity_v=0.07)

    # The same patterning budgets as the paper, but start from a 5 nm overlay.
    variations = paper_assumptions().for_overlay(5.0)

    return TechnologyNode(
        name="custom-N7-airgap",
        metal_stack=stack,
        sram_devices=devices,
        operating_conditions=conditions,
        variations=variations,
        sram_cell_width_nm=210.0,
        sram_cell_height_nm=180.0,
    )


def main() -> None:
    node = build_custom_node()
    doe = StudyDOE(array_sizes=(64, 256), overlay_budgets_nm=(3.0, 5.0))

    print(f"Technology under study: {node.name}")
    metal1 = node.bitline_metal
    print(f"  metal1: {metal1.pitch_nm:.0f} nm pitch, {metal1.thickness_nm:.0f} nm thick, "
          f"intra-layer k = {metal1.materials.intra_layer_dielectric.relative_permittivity}")
    print(f"  Vdd = {node.operating_conditions.vdd_v} V, "
          f"pull-down fins = {node.sram_devices.pull_down_fins}")
    print()

    print("=== Worst-case RC impact (Table I equivalent) ===")
    worst_case = WorstCaseStudy(node, doe=doe)
    print(format_table1(worst_case.table1()))
    print()

    print("=== Worst-case read-time penalty (Fig. 4 equivalent) ===")
    simulator = ReadPathSimulator(node)
    figure4 = worst_case.figure4(simulator=simulator)
    print(format_figure4(figure4))
    print()

    print("=== Monte-Carlo tdp sigma (Table IV equivalent, n = 64) ===")
    model = model_from_technology(node)
    monte_carlo = MonteCarloTdpStudy(node, doe=doe, model=model, n_samples=400, seed=7)
    table4 = monte_carlo.table4()
    print(format_table4(table4))
    print()

    verdict = OptionComparison(figure4, table4).verdict()
    print("Recommendation for this node:", verdict.recommended_option)
    for note in verdict.notes:
        print("  -", note)


if __name__ == "__main__":
    main()
