"""Exploring the analytical read-time model (eqs. 2-5) interactively.

The analytical formula is the piece of the paper a designer would actually
reuse: given the per-cell bit-line parasitics, the cell's front-end R/C and
the precharge scaling law, it predicts the read time and — more robustly —
the read-time *penalty* of any RC variation, in microseconds of compute.
This example shows the formula's anatomy:

* the discharge constant for different sense thresholds;
* the polynomial-in-n structure (eq. 5) and where the quadratic wire term
  overtakes the front-end term;
* the tdp sensitivity to Rvar versus Cvar as a function of array size,
  which explains why the penalty of a "wider-lines" corner (Cvar up, Rvar
  down) is non-monotonic in n;
* a what-if: how much larger the array can get before a fixed patterning
  corner exceeds a 10 % read-time budget.

Run with::

    python examples/analytical_model_exploration.py
"""

from __future__ import annotations

from repro import n10
from repro.core import discharge_constant, model_from_technology
from repro.core.worst_case import WorstCaseStudy
from repro.reporting import format_csv
from repro.variability.doe import StudyDOE


def main() -> None:
    node = n10()
    model = model_from_technology(node)

    print("=== Discharge constant a = -ln(1 - f) (eq. 3) ===")
    rows = []
    for sense_mv in (50.0, 70.0, 100.0, 140.0):
        fraction = sense_mv / 700.0
        rows.append([f"{sense_mv:.0f} mV", f"{fraction:.3f}", f"{discharge_constant(fraction):.4f}"])
    print(format_csv(["sense threshold", "discharge fraction", "a"], rows))
    print()

    print("=== Polynomial structure of td (eq. 5) ===")
    rows = []
    for n in (16, 64, 256, 1024):
        coefficients = model.polynomial_coefficients(n)
        quadratic = coefficients.c2 * n * n
        linear = coefficients.c1 * n
        constant = coefficients.c0
        total = quadratic + linear + constant
        rows.append(
            [
                n,
                f"{total * 1e12:.2f}",
                f"{100.0 * quadratic / total:.1f}%",
                f"{100.0 * linear / total:.1f}%",
                f"{100.0 * constant / total:.1f}%",
            ]
        )
    print(format_csv(["n", "td (ps)", "n^2 (wire RC)", "n (mixed)", "const (FE x pre)"], rows))
    print()

    print("=== tdp sensitivity to Rvar / Cvar versus array size ===")
    rows = []
    for n in (16, 64, 256, 1024):
        d_r, d_c = model.tdp_sensitivity(n)
        rows.append([n, f"{d_r:.3f}", f"{d_c:.3f}", f"{d_c / d_r:.2f}"])
    print(format_csv(["n", "d(tdp)/d(Rvar)", "d(tdp)/d(Cvar)", "C/R sensitivity ratio"], rows))
    print()

    print("=== What-if: when does the LE3 worst corner exceed a 10% budget? ===")
    worst_case = WorstCaseStudy(node, doe=StudyDOE(array_sizes=(64,)))
    corner = worst_case.find_worst_corner("LELELE")
    rvar, cvar = corner.bitline_variation.rvar, corner.bitline_variation.cvar
    rows = []
    for n in (8, 16, 32, 64, 128, 256, 512, 1024, 2048):
        penalty = model.tdp_percent(n, rvar, cvar)
        rows.append([n, f"{penalty:.2f}%", "yes" if penalty > 10.0 else "no"])
    print(format_csv(["n", "LE3 worst-case tdp", "exceeds 10% budget"], rows))


if __name__ == "__main__":
    main()
