"""Quickstart: which patterning option should print my SRAM's metal1?

Runs the core of the DATE 2015 study on the N10-class node in a few
seconds: the worst-case bit-line RC impact of each patterning option
(Table I), the worst-case read-time penalty at one array size, and the
statistical verdict.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import MultiPatterningSRAMStudy, n10
from repro.core import OptionComparison
from repro.reporting import format_figure4, format_table1, format_table4
from repro.variability.doe import StudyDOE


def main() -> None:
    # The technology node bundles the metal stack, the 6T cell devices, the
    # 0.7 V / 70 mV operating point and the paper's variation assumptions
    # (3 nm CD, 1.5 nm spacer, 8 nm LE3 overlay).
    node = n10(overlay_three_sigma_nm=8.0)

    # A reduced grid keeps the quickstart under ~10 seconds: one array size
    # for the simulated penalty, two overlay budgets for the statistics.
    study = MultiPatterningSRAMStudy(
        node,
        doe=StudyDOE(array_sizes=(64,), overlay_budgets_nm=(3.0, 8.0)),
        monte_carlo_samples=300,
        seed=1,
    )

    print("Step 1 - worst-case bit-line RC impact per patterning option")
    table1 = study.run_table1()
    print(format_table1(table1))
    print()

    print("Step 2 - simulated worst-case read-time penalty (10x64 array)")
    figure4 = study.run_figure4()
    print(format_figure4(figure4))
    print()

    print("Step 3 - Monte-Carlo read-time-penalty sigma (Table IV)")
    table4 = study.run_table4()
    print(format_table4(table4))
    print()

    verdict = OptionComparison(figure4, table4).verdict()
    print("Recommendation:", verdict.recommended_option)
    for note in verdict.notes:
        print("  -", note)


if __name__ == "__main__":
    main()
