"""Exporting the study's artefacts for external tools.

The library is self-contained (its own extraction and its own SPICE-level
solver), but every intermediate artefact can be handed to an external flow
for cross-checking:

* the generated SRAM array layout → GDT text (a GDS-like interchange
  format, re-importable with :func:`repro.layout.read_gdt`);
* the printed (patterning-distorted) layout at any corner → GDT text;
* the extracted read-path circuit, with all parasitics and devices → a
  SPICE deck.

Run with::

    python examples/export_for_external_tools.py out/
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import n10
from repro.circuit.spice_io import write_spice
from repro.layout import generate_array_layout, library_from_wires, write_gdt
from repro.patterning import le3
from repro.sram import ReadPathSimulator


def main(output_directory: str = "export-output") -> None:
    output = Path(output_directory)
    output.mkdir(parents=True, exist_ok=True)
    node = n10()

    # 1. Nominal array layout (10 bit-line pairs x 64 word lines) as GDT.
    layout = generate_array_layout(64, node=node)
    nominal_library = library_from_wires("sram_10x64", layout.wires(), layout.layer_map)
    nominal_path = output / "sram_10x64_nominal.gdt"
    write_gdt(nominal_library, nominal_path)
    print(f"wrote {nominal_path} ({len(layout.wires())} shapes)")

    # 2. The same layout printed with LE3 at its worst corner.
    option = le3()
    worst_corner = {"cd:A": 3.0, "cd:B": 3.0, "cd:C": 3.0, "ol:B": -8.0, "ol:C": 8.0}
    printed = option.apply(layout.metal1_pattern, worst_corner)
    printed_wires = printed.printed.as_wires(layer=node.bitline_layer)
    printed_library = library_from_wires("sram_10x64_le3_worst", printed_wires, layout.layer_map)
    printed_path = output / "sram_10x64_le3_worst.gdt"
    write_gdt(printed_library, printed_path)
    print(f"wrote {printed_path} ({len(printed_wires)} shapes)")

    # 3. The extracted read-path circuit as a SPICE deck.
    simulator = ReadPathSimulator(node)
    column = simulator.column_parasitics(64)
    read_circuit = simulator.build_circuit(64, column)
    deck_path = output / "read_path_10x64.sp"
    write_spice(read_circuit.circuit, deck_path)
    print(f"wrote {deck_path} ({len(read_circuit.circuit)} elements, "
          f"{read_circuit.circuit.node_count()} nodes)")

    # 4. A distorted-column deck: the same circuit with the LE3 worst-case
    #    parasitics, for external SPICE cross-checks of the tdp.
    distorted_extraction = simulator.lpe.extract_pattern(printed.printed)
    distorted_column = simulator.column_parasitics(64, distorted_extraction)
    distorted_circuit = simulator.build_circuit(64, distorted_column)
    distorted_path = output / "read_path_10x64_le3_worst.sp"
    write_spice(distorted_circuit.circuit, distorted_path)
    print(f"wrote {distorted_path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "export-output")
