"""Quickstart for the experiment service: start, submit, poll, fetch.

The service layer (:mod:`repro.service`) turns the declarative API into
a long-running HTTP server with a content-addressed result cache: every
experiment is keyed by the SHA-256 fingerprint of its canonical spec
JSON, so identical submissions are computed once and served many times.

This example does the full loop in one process:

1. start an :class:`~repro.service.server.ExperimentServer` on an
   ephemeral port with an on-disk cache;
2. submit ``examples/specs/smoke.json`` through the
   :class:`~repro.service.client.ExperimentClient`;
3. poll the job until it finishes and fetch the result as CSV;
4. submit the same spec again and observe the cache hit (the job is
   born ``done``, no recomputation);
5. read the server's health endpoint (cache and queue statistics).

The same flow works across machines with the CLI::

    repro serve --port 8765 --cache-dir runs/cache --workers 2   # terminal 1
    repro submit examples/specs/smoke.json --wait --format csv   # terminal 2

Run with::

    python examples/service_quickstart.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.service import ExperimentClient, ExperimentServer

SPEC_PATH = Path(__file__).resolve().parent / "specs" / "smoke.json"


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        with ExperimentServer(cache_dir=cache_dir, workers=2) as server:
            client = ExperimentClient(server.url)
            print(f"Step 1 - server listening on {server.url} (cache: {cache_dir})")
            print()

            # Step 2 + 3 — submit the smoke spec, poll, fetch CSV.
            started = time.perf_counter()
            ticket = client.submit(SPEC_PATH)
            print(f"Step 2 - submitted {SPEC_PATH.name}: {ticket['id']} ({ticket['state']})")
            status = client.wait(ticket["id"], timeout_s=300.0)
            cold_s = time.perf_counter() - started
            print(
                f"Step 3 - finished in {cold_s:.2f}s with "
                f"{status['n_records']} records; first CSV lines:"
            )
            csv_text = client.result_text(ticket["id"], fmt="csv")
            for line in csv_text.splitlines()[:3]:
                print(f"  {line[:100]}")
            print()

            # Step 4 — the second identical submission is a cache hit.
            started = time.perf_counter()
            again = client.submit(SPEC_PATH)
            warm_s = time.perf_counter() - started
            assert again["cached"], "second submission must be served from cache"
            print(
                f"Step 4 - resubmitted: {again['id']} is born {again['state']!r} "
                f"(cached={again['cached']}) in {warm_s*1e3:.1f}ms "
                f"- {cold_s / max(warm_s, 1e-9):.0f}x faster than computing"
            )
            print()

            # Step 5 — health: liveness plus cache/queue statistics.
            health = client.health()
            print("Step 5 - /v1/healthz")
            print(f"  cache: {health['cache']}")
            print(f"  queue: {health['queue']}")


if __name__ == "__main__":
    main()
