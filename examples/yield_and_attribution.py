"""Beyond the paper: read-time yield and variance attribution.

The paper's Monte-Carlo machinery (Section III.B) stops at the standard
deviation of the read-time penalty.  This example pushes the same data two
steps further, the way a memory-design team would:

1. **Spec compliance** — with a read-time budget of +10 % over nominal
   (a typical sense-timing margin), what fraction of columns violates the
   budget under each patterning option, what does that mean for array
   yield, and what 3σ overlay budget does LE3 need to reach 100 ppm?
2. **Variance attribution** — which patterning parameter actually drives
   the LE3 spread?  The paper says overlay; the first-order variance
   decomposition of the Monte-Carlo samples puts a number on it, per
   overlay budget.

Run with::

    python examples/yield_and_attribution.py
"""

from __future__ import annotations

from repro import n10
from repro.core import model_from_technology
from repro.core.attribution import VarianceAttribution
from repro.core.montecarlo import MonteCarloTdpStudy
from repro.core.yield_analysis import ReadTimeYieldAnalysis
from repro.reporting import format_csv
from repro.variability.doe import DOEPoint, paper_doe


def main() -> None:
    node = n10()
    doe = paper_doe()
    model = model_from_technology(node)
    study = MonteCarloTdpStudy(node, doe=doe, model=model, n_samples=800, seed=2015)

    print("=== Spec compliance at a +10% read-time budget (10x64 array) ===")
    yield_analysis = ReadTimeYieldAnalysis(study)
    rows = yield_analysis.compliance_table(budget_percent=10.0)
    print(format_csv(
        ["option", "violation_probability", "ppm", "column_yield", "array_yield(10 cols)"],
        [
            [
                row.label,
                f"{row.violation.probability:.3e}",
                f"{row.violation.parts_per_million:.2f}",
                f"{row.column_yield:.6f}",
                f"{row.array_yield:.6f}",
            ]
            for row in rows
        ],
    ))
    print()

    requirement = yield_analysis.required_overlay_for_target(
        budget_percent=10.0, target_ppm=100.0
    )
    if requirement.achievable:
        print(
            f"LE3 meets a 100 ppm violation target (at +10% budget) with a 3-sigma "
            f"overlay budget of {requirement.required_overlay_nm:g} nm or tighter."
        )
    else:
        print("LE3 cannot meet a 100 ppm violation target within the studied overlay budgets.")
    print("Achieved ppm per overlay budget:",
          {f"{k:g}nm": round(v, 2) for k, v in requirement.achieved_ppm_by_overlay.items()})
    print()

    print("=== Budget sweep: violation probability versus read-time margin ===")
    budgets = (2.0, 4.0, 6.0, 8.0, 10.0)
    table = []
    for option_name, overlay in (("LELELE", 8.0), ("LELELE", 3.0), ("SADP", None), ("EUV", None)):
        pairs = yield_analysis.budget_sweep(budgets, option_name, overlay)
        label = option_name if overlay is None else f"{option_name} {overlay:g}nm OL"
        table.append([label] + [f"{probability:.2e}" for _budget, probability in pairs])
    print(format_csv(["option"] + [f"+{budget:g}%" for budget in budgets], table))
    print()

    print("=== Variance attribution of the LE3 tdp spread ===")
    attribution = VarianceAttribution(study)
    result = attribution.attribute(
        DOEPoint(n_wordlines=64, option_name="LELELE", overlay_three_sigma_nm=8.0)
    )
    print(f"total sigma at 8 nm OL: {result.total_sigma_percent:.2f} % points")
    print(format_csv(
        ["parameter", "correlation", "variance share"],
        [
            [c.parameter, f"{c.correlation:+.3f}", f"{c.variance_share_percent:.1f}%"]
            for c in result.contributions
        ],
    ))
    print()

    print("Overlay-versus-CD share across the overlay sweep:")
    split = attribution.overlay_versus_cd()
    print(format_csv(
        ["overlay budget", "overlay share", "CD share"],
        [
            [f"{overlay:g} nm", f"{shares[0] * 100:.1f}%", f"{shares[1] * 100:.1f}%"]
            for overlay, shares in sorted(split.items())
        ],
    ))


if __name__ == "__main__":
    main()
