"""Monte-Carlo read-time-penalty study — the Section III reproduction.

Builds the analytical td/tdp model from the technology node, verifies it
against the transistor-level simulation (Tables II and III), then runs the
Monte-Carlo sampling of the patterning variability through the
parameterized LPE tool to regenerate the tdp distributions (Fig. 5) and
their standard deviations across the overlay sweep (Table IV).

Run with::

    python examples/monte_carlo_study.py
"""

from __future__ import annotations

from repro import n10
from repro.core import FormulaValidation, MonteCarloTdpStudy, model_from_technology
from repro.reporting import (
    figure5_ascii,
    format_table2,
    format_table3,
    format_table4,
    overlay_sweep_csv,
)
from repro.variability.doe import paper_doe


def main() -> None:
    node = n10()
    doe = paper_doe()
    model = model_from_technology(node)

    print("=== Analytical model parameters (eq. 4) ===")
    print(f"  a (10% discharge)      : {model.a:.4f}")
    print(f"  Rbl per cell           : {model.rbl_per_cell_ohm:.2f} ohm")
    print(f"  Cbl per cell           : {model.cbl_per_cell_f * 1e18:.2f} aF")
    print(f"  R_FE (discharge path)  : {model.rfe_ohm / 1e3:.1f} kohm")
    print(f"  C_FE per cell          : {model.cfe_per_cell_f * 1e18:.2f} aF")
    print(f"  Cpre(64) / Cpre(1024)  : {model.cpre_fn(64) * 1e15:.3f} fF / "
          f"{model.cpre_fn(1024) * 1e15:.3f} fF")
    print()

    print("=== Table II: formula versus simulation (nominal td) ===")
    validation = FormulaValidation(node, doe=doe, model=model)
    print(format_table2(validation.table2()))
    print()

    print("=== Table III: formula versus simulation (worst-case tdp) ===")
    print(format_table3(validation.table3()))
    print()
    gaps = validation.tdp_agreement_percent()
    print("Largest |formula - simulation| gap per option (percentage points):")
    for option_name, gap in sorted(gaps.items()):
        print(f"  {option_name:8s} {gap:5.2f}")
    print()

    print("=== Fig. 5 + Table IV: Monte-Carlo tdp distributions (n = 64) ===")
    study = MonteCarloTdpStudy(node, doe=doe, model=model, n_samples=1000, seed=2015)
    for record in study.figure5():
        print(figure5_ascii(record))
        print()
    print(format_table4(study.table4()))
    print()

    print("=== Overlay sensitivity of LE3 (sigma vs OL budget) ===")
    print(overlay_sweep_csv(study.overlay_sensitivity()))


if __name__ == "__main__":
    main()
