"""Worst-case variability study — the full Section II reproduction.

Regenerates Table I (worst-case ΔCbl/ΔRbl), Fig. 2 (printed-versus-drawn
layout distortion) and Fig. 4 (worst-case read-time penalty versus array
size, from transistor-level transient simulation) for the paper's complete
design of experiments: 16 / 64 / 256 / 1024 word lines.

Run with::

    python examples/worst_case_study.py
"""

from __future__ import annotations

from repro import n10
from repro.core import WorstCaseStudy
from repro.reporting import figure2_ascii, figure4_csv, format_figure4, format_table1
from repro.sram import ReadPathSimulator


def main() -> None:
    node = n10(overlay_three_sigma_nm=8.0)
    study = WorstCaseStudy(node)

    print("=== Table I: worst-case variability per patterning option ===")
    rows = study.table1()
    print(format_table1(rows))
    print()
    print("Worst corners found by the exhaustive +/-3-sigma search:")
    for row in rows:
        corner = ", ".join(
            f"{name}={value:+.1f} nm"
            for name, value in sorted(row.corner_parameters.items())
            if value != 0.0
        )
        print(f"  {row.option_name:8s} {corner}")
    print()

    print("=== Fig. 2: worst-case metal1 layout distortion ===")
    for record in study.figure2():
        print(figure2_ascii(record))
        print()

    print("=== Fig. 4: worst-case impact on the read time (full DOE) ===")
    simulator = ReadPathSimulator(node)
    figure4 = study.figure4(simulator=simulator)
    print(format_figure4(figure4))
    print()
    print("CSV series (for external plotting):")
    print(figure4_csv(figure4))


if __name__ == "__main__":
    main()
