"""Quickstart for the performance-introspection layer: profile, report, gate.

The sampling profiler (:mod:`repro.obs.profile`) answers *where the
wall-clock time went* without instrumenting any code: a background
thread samples every thread's Python stack at ~101 Hz and aggregates
folded/collapsed flamegraph stacks, each rooted at the innermost open
span (``phase:solver.transient;...``) so the profile and the span trace
attribute the same time to the same phases.

This example does the full loop in one process:

1. run a small campaign spec through :func:`repro.api.run` with
   profiling enabled (``enable_profiling`` — the CLI equivalent is
   ``repro run spec.json --profile profile.folded``);
2. read the folded stacks back and print the flame summary the
   ``repro report --flame`` verb renders (samples per phase, hottest
   leaf frames, hottest whole stacks);
3. print the solver-convergence series the run left in the metrics
   registry (iterations-to-converge histogram, lane-efficiency
   gauges);
4. record the run's wall time into a benchmark history file and judge
   a pretend "2x slower" follow-up against it — the same noise-aware
   gate ``benchmarks/run_benchmarks.py --record/--check`` applies
   (exit code 4 on regression).

Run with::

    python examples/profile_quickstart.py

The ``profile.folded`` file is standard collapsed-stack format:
``flamegraph.pl profile.folded > flame.svg`` renders it directly, as
do speedscope and inferno.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import api
from repro.core.spec import ArraySpec, ExperimentSpec
from repro.obs import metrics as obs_metrics
from repro.obs.history import (
    append_entry,
    check_metrics,
    format_findings,
    load_entries,
)
from repro.obs.profile import (
    disable_profiling,
    enable_profiling,
    read_folded,
)
from repro.reporting.tables import format_flame_summary

SPEC = ExperimentSpec(kind="campaign", array=ArraySpec(sizes=(16, 64, 256)))


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-profile-quickstart-") as tmp:
        profile_path = Path(tmp) / "profile.folded"

        # 1. Profile a run.  Sampling is fingerprint-neutral: the
        #    records are bit-identical with the profiler on (the obs
        #    bench gates this, plus a 5% overhead ceiling).
        started = time.perf_counter()
        enable_profiling(profile_path)
        try:
            results = api.run(SPEC)
        finally:
            disable_profiling()
        wall_s = time.perf_counter() - started
        print(f"campaign produced {len(results.records)} records "
              f"in {wall_s:.2f}s; profile at {profile_path}\n")

        # 2. Where did the time go?  Same renderer as
        #    ``repro report profile.folded --flame``.
        samples = read_folded(profile_path)
        print(format_flame_summary(samples, top_n=5))

        # 3. What did the solver do?  Convergence telemetry rides the
        #    same registry the server scrapes on GET /v1/metrics.
        print("\nSolver convergence series (excerpt):")
        for line in obs_metrics.registry().to_prometheus().splitlines():
            if line.startswith(("repro_solver_iterations_count",
                                "repro_solver_converged_total",
                                "repro_solver_lane_occupancy")):
                print(f"  {line}")

        # 4. The regression gate: record this run, then judge a
        #    pretend 2x-slower follow-up against the history.
        history_dir = Path(tmp) / "history"
        for _ in range(3):  # a real history accumulates across CI runs
            append_entry(history_dir, "quickstart", {"wall_s": wall_s})
        findings = check_metrics(
            load_entries(history_dir, "quickstart"),
            {"wall_s": 2.0 * wall_s},
            {"wall_s": "lower"},
        )
        print("\nGate verdict on a pretend 2x slowdown "
              "(the bench harness exits 4 on this):")
        print(format_findings(findings))


if __name__ == "__main__":
    main()
