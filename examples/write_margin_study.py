"""Write-path and noise-margin study — the SRAM operation suite.

The paper quantifies how multi-patterning interconnect variability
penalises the *read* time; the same distorted extraction also shifts the
other SRAM figures of merit.  This example drives the operation suite on
top of the shared layout → patterning → extraction → circuit stack:

* worst-case **write delay** impact per patterning option (transient
  simulation, word-line assert → internal q/qb flip);
* the DC **write margin** (bit-line trip voltage from a continuation
  sweep) and how bit-line resistance distortion eats into it;
* **hold and read static noise margins** from DC butterfly curves
  (Seevinck largest-square method) and their degradation as the rail
  distortion grows;
* the **Monte-Carlo sigma** of the write-delay impact through the
  calibrated response surface (the operation suite's analogue of the
  paper's analytical formula).

Run with::

    python examples/write_margin_study.py
"""

from __future__ import annotations

from repro import n10
from repro.core import MonteCarloTdpStudy, OperationSimulators, WorstCaseStudy
from repro.reporting import format_operation_sigma, format_operation_table
from repro.variability.doe import StudyDOE

#: Keep the example quick: two sizes, a few hundred MC samples.
SIZES = (16, 64)


def main() -> None:
    node = n10(overlay_three_sigma_nm=8.0)
    doe = StudyDOE(array_sizes=SIZES)
    worst_case = WorstCaseStudy(node, doe=doe)
    sims = OperationSimulators(node, n_bitline_pairs=doe.n_bitline_pairs)

    print("=== Worst-case write-delay impact per patterning option ===")
    print(format_operation_table(
        worst_case.operation_rows("write", simulators=sims),
        title="Operation suite (write): worst-case write-delay impact",
    ))
    print()

    print("=== DC write margin versus bit-line distortion ===")
    nominal = sims.write.measure_nominal_margin(64)
    print(f"nominal write margin (10x64): {nominal.margin_v * 1e3:.1f} mV "
          f"of bit-line swing slack")
    for rvar in (2.0, 3.0, 5.0):
        column = sims.write.column_parasitics(64)
        from repro.sram import ColumnParasitics

        distorted = ColumnParasitics(
            bitline=column.bitline.scaled(rvar, 1.0),
            bitline_bar=column.bitline_bar.scaled(rvar, 1.0),
            vss_rail_resistance_ohm=column.vss_rail_resistance_ohm,
            vdd_rail_resistance_ohm=column.vdd_rail_resistance_ohm,
        )
        margin = sims.write.measure_margin(64, distorted, label=f"rvar x{rvar:g}")
        status = "" if margin.flipped else "  (write fails!)"
        print(f"  bit-line R x{rvar:g}: {margin.margin_v * 1e3:6.1f} mV{status}")
    print()

    print("=== Hold / read static noise margins (butterfly curves) ===")
    for name, title in (
        ("hold_snm", "Operation suite (hold_snm): worst-case hold-SNM impact"),
        ("read_snm", "Operation suite (read_snm): worst-case read-SNM impact"),
    ):
        print(format_operation_table(
            worst_case.operation_rows(name, simulators=sims), title=title
        ))
        print()

    print("Hold-SNM degradation as the supply-rail distortion grows:")
    for scale in (1.0, 4.0, 8.0, 16.0):
        snm = sims.margins.measure_with_variation(64, vss_rvar=scale, mode="hold")
        print(f"  rail R x{scale:4g}: {snm.snm_mv:6.1f} mV")
    print()

    print("=== Monte-Carlo sigma of the write-delay impact ===")
    mc = MonteCarloTdpStudy(node, doe=doe, n_samples=300)
    rows = mc.operation_sigma_rows("write", n_wordlines=64, simulators=sims)
    print(format_operation_sigma(
        rows, title="Operation suite (write): Monte-Carlo write-delay sigma"
    ))


if __name__ == "__main__":
    main()
