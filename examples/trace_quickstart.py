"""Quickstart for the observability layer: trace, report, export, scrape.

The observability layer (:mod:`repro.obs`) records what a run spent its
time on without changing what it computes: tracing is off by default,
and with tracing on the records stay bit-identical (the obs bench gates
this, along with a 2% overhead ceiling).

This example does the full loop in one process:

1. run a small campaign spec through :func:`repro.api.run` with span
   tracing enabled (``enable_tracing`` — the CLI equivalent is
   ``repro run spec.json --trace trace.jsonl``);
2. read the trace back and print the per-phase wall-time report the
   ``repro report`` verb renders, including the campaign attribution
   (how much of ``campaign.run`` the named phases account for);
3. export the spans as Chrome trace-event JSON — load the file in
   Perfetto or ``chrome://tracing`` to see the timeline;
4. render the process-wide metrics registry as Prometheus text — the
   same payload a live server serves on ``GET /v1/metrics``.

Run with::

    python examples/trace_quickstart.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro import api
from repro.core.spec import ArraySpec, ExperimentSpec
from repro.obs import metrics as obs_metrics
from repro.obs.trace import (
    campaign_attribution,
    disable_tracing,
    enable_tracing,
    read_trace,
    to_chrome_trace,
)
from repro.reporting.tables import format_trace_summary

SPEC = ExperimentSpec(kind="campaign", array=ArraySpec(sizes=(16, 64)))


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-trace-quickstart-") as tmp:
        trace_path = Path(tmp) / "trace.jsonl"

        # 1. Trace a run.  Spans cover api.run -> campaign phases ->
        #    per-item measurements -> DC/transient solves.
        enable_tracing(trace_path)
        try:
            results = api.run(SPEC)
        finally:
            disable_tracing()
        print(f"campaign produced {len(results.records)} records; "
              f"trace at {trace_path}\n")

        # 2. Summarise: what did the wall time go to?
        records = read_trace(trace_path)
        print(format_trace_summary(records, top_n=5))

        attribution = campaign_attribution(records)
        print(f"\nnamed phases cover {attribution['coverage_percent']:.1f}% "
              "of the campaign wall (the obs bench gates this at >=95%)")

        # 3. Export for Perfetto / chrome://tracing.
        chrome_path = Path(tmp) / "chrome-trace.json"
        chrome_path.write_text(json.dumps(to_chrome_trace(records)))
        print(f"chrome trace written to {chrome_path} "
              f"({len(records)} events)")

    # 4. The metrics the run left behind — the exact text a live
    #    server exposes on GET /v1/metrics.
    print("\nPrometheus exposition (excerpt):")
    for line in obs_metrics.registry().to_prometheus().splitlines():
        if line.startswith(("repro_runs_total", "repro_items_total",
                            "repro_solver_factorizations_total")):
            print(f"  {line}")


if __name__ == "__main__":
    main()
