"""Quickstart for the declarative API: one spec, one call, one ResultSet.

Every study in the library is reachable through three lines::

    from repro.api import run
    result = run("examples/specs/smoke.json")
    print(result.to_text())

This example builds the specs in Python instead of loading them, so it
also shows the document structure: a frozen
:class:`~repro.core.spec.ExperimentSpec` composed of technology, array,
scenario, operation and execution sections.  Because a spec is pure
data (``spec.to_json()`` round-trips losslessly), the same description
can be generated, stored, sharded across machines and replayed later.

Run with::

    python examples/api_quickstart.py
"""

from __future__ import annotations

from repro.api import run
from repro.core.spec import (
    ArraySpec,
    ExecutionSpec,
    ExperimentSpec,
    OperationSpec,
)


def main() -> None:
    # Step 1 — the worst-case corner search (Table I), the cheapest kind.
    worst_case = ExperimentSpec(kind="worst_case")
    print("Step 1 - worst-case RC corners from a declarative spec")
    print(run(worst_case).to_text())
    print()

    # Step 2 — a small simulated campaign: one array size, the paper's
    # read scenario.  `backend="auto"` sizes the process pool to the
    # machine; the records are bit-identical to a serial run.
    campaign = ExperimentSpec(
        kind="campaign",
        array=ArraySpec(sizes=(16,)),
        execution=ExecutionSpec(backend="auto"),
    )
    print("Step 2 - the spec document that describes the campaign")
    print(campaign.to_json())
    result = run(campaign)
    print("... and its ResultSet rendered as a table")
    print(result.to_text())
    print()

    # Step 3 — the same ResultSet as data: flat records, JSON, CSV.
    first = result.rows()[0]
    print(f"Step 3 - {len(result)} records; first record keys: {sorted(first)[:6]} ...")
    print(result.to_csv().splitlines()[0])
    print()

    # Step 4 — Monte-Carlo sigma of the read-time penalty (Table IV's
    # twin) from the same spec vocabulary: only `kind` and the operation
    # section change.
    monte_carlo = ExperimentSpec(
        kind="monte_carlo",
        operation=OperationSpec(samples=300),
        execution=ExecutionSpec(seed=1),
    )
    print("Step 4 - Monte-Carlo impact sigma from the same spec vocabulary")
    print(run(monte_carlo).to_text())


if __name__ == "__main__":
    main()
