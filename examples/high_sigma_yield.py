"""Beyond the paper: high-sigma yield via importance sampling.

Brute-force Monte-Carlo cannot see a 6-sigma failure: at a fail
probability of ~1e-9 you would need ~1e10 samples for a single hit.
The high-sigma engine (``repro.highsigma``) gets there with ~1e4
*weighted* samples instead:

1. **Dominant shift** — an HL-RF search on a quadratic surrogate of the
   tdp metric finds the most probable failure point in the whitened
   parameter space (the classic FORM reliability index beta).
2. **Defensive mixture proposal** — samples are drawn half from the
   nominal model and half from a variance-inflated shifted model, so
   the failure region is actually visited while the importance weights
   stay bounded.
3. **Self-normalised estimator** — the exact likelihood ratio reweights
   every draw back to the nominal model, giving the fail probability
   with a delta-method confidence interval and an effective sample
   size (ESS) diagnostic.

At 3 sigma the tail is still cheap to brute-force, so the engine
cross-checks itself against plain Monte-Carlo — the two confidence
intervals must overlap.

Run with::

    python examples/high_sigma_yield.py
"""

from __future__ import annotations

from repro.api import run
from repro.core.spec import ArraySpec, ExperimentSpec, HighSigmaSpec, TechnologySpec


def main() -> None:
    spec = ExperimentSpec(
        kind="yield_hs",
        technology=TechnologySpec(overlay_three_sigma_nm=8.0),
        array=ArraySpec(sizes=(64,), options=("LELELE", "SADP", "EUV")),
        high_sigma=HighSigmaSpec(
            operation="read",
            model="analytical",       # "surface" / "circuit" use real solves
            sigma_levels=(3.0, 6.0),  # 3-sigma has a Monte-Carlo cross-check
            proposals=4000,
            pilot_samples=512,
            mc_samples=20000,
        ),
    )

    result = run(spec)
    print(result.to_text())
    print()

    meta = result.meta["high_sigma"]
    print(
        f"Total real simulator calls: {meta['total_simulator_calls']} "
        f"(of which {meta['total_promoted']} were surrogate promotions) "
        f"for {meta['total_proposals']} weighted proposals."
    )

    for record in result.records:
        if record.get("sigma_level") == 6.0:
            print(
                f"{record['option']} @ {record['overlay_three_sigma_nm']} nm OL: "
                f"P(fail) = {record['fail_probability']:.3e} "
                f"[{record['ci_low']:.2e}, {record['ci_high']:.2e}] "
                f"(sigma-equivalent {record['sigma_equivalent']:.2f}, "
                f"ESS {record['ess']:.0f})"
            )
            break


if __name__ == "__main__":
    main()
