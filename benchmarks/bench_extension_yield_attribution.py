"""Extension — read-time yield and variance attribution.

Two analyses the paper motivates but does not carry out, built on the same
Monte-Carlo machinery:

* **Spec compliance / yield** — given a read-time budget (a 10 % sense
  margin), what fraction of bit lines violates it per option, how does
  that translate into array yield, and what overlay budget does LE3 need
  to hit a 100 ppm target?
* **Variance attribution** — the paper claims "the OL error plays a
  decisive role" for LE3; the first-order variance decomposition of the
  Monte-Carlo samples quantifies it (overlay versus CD share of the tdp
  variance across the overlay sweep).
"""

import pytest

from repro.core.attribution import VarianceAttribution
from repro.core.yield_analysis import ReadTimeYieldAnalysis
from repro.reporting import format_csv
from repro.variability.doe import DOEPoint


def test_extension_yield_and_attribution(benchmark, monte_carlo_study):
    def run():
        yield_analysis = ReadTimeYieldAnalysis(monte_carlo_study)
        compliance = yield_analysis.compliance_table(budget_percent=10.0)
        requirement = yield_analysis.required_overlay_for_target(
            budget_percent=10.0, target_ppm=100.0
        )
        attribution = VarianceAttribution(monte_carlo_study)
        split = attribution.overlay_versus_cd()
        le3_loose = attribution.attribute(
            DOEPoint(n_wordlines=64, option_name="LELELE", overlay_three_sigma_nm=8.0)
        )
        return compliance, requirement, split, le3_loose

    compliance, requirement, split, le3_loose = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nSpec compliance at a +10% read-time budget:")
    print(format_csv(
        ["option", "violation_ppm", "column_yield", "array_yield"],
        [
            [row.label, f"{row.violation.parts_per_million:.2f}",
             f"{row.column_yield:.6f}", f"{row.array_yield:.6f}"]
            for row in compliance
        ],
    ))
    print("\nOverlay vs CD variance share of the LE3 tdp:")
    print(format_csv(
        ["overlay_3sigma_nm", "overlay_share", "cd_share"],
        [[f"{overlay:.0f}", f"{shares[0]:.3f}", f"{shares[1]:.3f}"] for overlay, shares in sorted(split.items())],
    ))

    by_label = {row.label: row for row in compliance}
    # At a 10% budget every option yields well, but LE3 at 8 nm OL is the
    # clear laggard and SADP the clear leader.
    assert by_label["LELELE 8nm OL"].violation.probability >= by_label["SADP"].violation.probability
    assert by_label["SADP"].array_yield >= 0.999
    assert 0.0 <= by_label["LELELE 8nm OL"].array_yield <= 1.0

    # The overlay requirement is achievable within the studied sweep.
    assert requirement.achieved_ppm_by_overlay
    assert set(requirement.achieved_ppm_by_overlay) == {3.0, 5.0, 7.0, 8.0}

    # Attribution: overlay dominates the LE3 variance at the loose budget and
    # its share shrinks when the budget is tightened to 3 nm.
    assert le3_loose.grouped_share("ol:") > le3_loose.grouped_share("cd:")
    assert split[3.0][0] < split[8.0][0]

    benchmark.extra_info["violation_ppm"] = {
        row.label: round(row.violation.parts_per_million, 2) for row in compliance
    }
    benchmark.extra_info["overlay_share_by_budget"] = {
        f"{overlay:g}nm": round(shares[0], 3) for overlay, shares in split.items()
    }
