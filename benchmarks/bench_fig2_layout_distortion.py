"""Fig. 2 — worst-case metal1 layout distortion per patterning option.

The paper's Fig. 2 shows, for each option, how the worst-case CD and
overlay assignment distorts the printed metal1 tracks of the cell.  The
bench regenerates the printed-versus-drawn geometry of the central
column's VSS / BL / VDD / BLB tracks and checks the qualitative picture:

* LE3's worst corner visibly shifts whole masks (several nm of centre
  displacement) and squeezes the gaps around the bit line;
* SADP's self-aligned printing keeps every edge within the small spacer /
  core budgets;
* EUV widens every line identically and never moves a centre line.
"""

import pytest

from repro.reporting import figure2_ascii, figure2_csv


def test_fig2_layout_distortion(benchmark, worst_case_study):
    records = benchmark.pedantic(worst_case_study.figure2, rounds=1, iterations=1)
    for record in records:
        print("\n" + figure2_ascii(record))
    print()
    print(figure2_csv(records))

    by_name = {record.option_name: record for record in records}
    assert set(by_name) == {"LELELE", "SADP", "EUV"}

    le3_shifts = [abs(track.center_shift_nm) for track in by_name["LELELE"].tracks]
    assert max(le3_shifts) > 4.0          # a whole mask moved by the OL error

    sadp_shifts = [abs(track.center_shift_nm) for track in by_name["SADP"].tracks]
    assert max(sadp_shifts) < 4.0         # self-aligned: no mask-to-mask displacement

    euv_record = by_name["EUV"]
    assert all(abs(track.center_shift_nm) < 1e-9 for track in euv_record.tracks)
    width_changes = {round(track.width_change_nm, 6) for track in euv_record.tracks}
    assert len(width_changes) == 1        # single exposure: identical CD change everywhere

    benchmark.extra_info["max_center_shift_nm"] = {
        name: round(max(abs(t.center_shift_nm) for t in record.tracks), 3)
        for name, record in by_name.items()
    }
    benchmark.extra_info["max_width_change_nm"] = {
        name: round(max(abs(t.width_change_nm) for t in record.tracks), 3)
        for name, record in by_name.items()
    }
