"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper at the paper's
full design-of-experiments (array sizes 16/64/256/1024, 10 bit-line pairs,
the 3-8 nm overlay sweep).  The heavyweight objects are session scoped so
the corner search and nominal extractions are paid for once per run.

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to also see the regenerated paper-style tables.
"""

from __future__ import annotations

import pytest

from repro.core.analytical import model_from_technology
from repro.core.montecarlo import MonteCarloTdpStudy
from repro.core.validation import FormulaValidation
from repro.core.worst_case import WorstCaseStudy
from repro.extraction.lpe import ParameterizedLPE
from repro.sram.read_path import ReadPathSimulator
from repro.technology.node import n10
from repro.variability.doe import paper_doe

#: Monte-Carlo samples per study point used by the benches (the paper's
#: distributions are smooth at 1000 samples; 500 keeps the bench snappy
#: while leaving the sigma estimates within a few percent).
BENCH_MC_SAMPLES = 500


@pytest.fixture(scope="session")
def node():
    return n10()


@pytest.fixture(scope="session")
def doe():
    return paper_doe()


@pytest.fixture(scope="session")
def lpe(node):
    return ParameterizedLPE(node)


@pytest.fixture(scope="session")
def simulator(node):
    return ReadPathSimulator(node)


@pytest.fixture(scope="session")
def analytical_model(node):
    return model_from_technology(node)


@pytest.fixture(scope="session")
def worst_case_study(node, doe):
    return WorstCaseStudy(node, doe=doe)


@pytest.fixture(scope="session")
def validation(node, doe, analytical_model, simulator, worst_case_study):
    return FormulaValidation(
        node,
        doe=doe,
        model=analytical_model,
        simulator=simulator,
        worst_case=worst_case_study,
    )


@pytest.fixture(scope="session")
def monte_carlo_study(node, doe, analytical_model):
    return MonteCarloTdpStudy(
        node, doe=doe, model=analytical_model, n_samples=BENCH_MC_SAMPLES, seed=2015
    )
