"""Ablation — lumped formula versus Elmore versus full transient simulation.

Table II shows the lumped-RC formula deviating from the SPICE results; the
paper attributes the gap to the distributed nature of the bit line (better
approximated by an Elmore-style 0.5·R·C term), the lumped treatment of the
front-end resistance, and effects that are simply absent from the formula
(vias, leakage, the VSS return path).  This ablation quantifies the ladder
of models on the nominal read time:

1. lumped formula (eq. 4),
2. lumped formula with the Elmore correction on the wire term,
3. full transistor-level transient simulation,

and checks that the Elmore correction moves the formula *towards* the
simulation for the wire-dominated (large) arrays.
"""

import pytest

from repro.reporting import format_csv


def elmore_corrected_td(model, n):
    """Eq. 4 with the distributed-wire correction: the bit line sees only
    half of its own resistance on average (0.5·Rwire·Cwire)."""
    a = model.a
    r_wire = n * model.rbl_per_cell_ohm
    c_wire = n * model.cbl_per_cell_f
    c_other = n * model.cfe_per_cell_f + model.cpre_fn(n)
    return a * (
        model.rfe_ohm * (c_wire + c_other)
        + 0.5 * r_wire * c_wire
        + r_wire * c_other
    )


def test_ablation_delay_model_hierarchy(benchmark, analytical_model, simulator):
    sizes = (16, 64, 256, 1024)

    def run():
        rows = []
        for n in sizes:
            simulated = simulator.measure_nominal(n).td_s
            lumped = analytical_model.td_nominal_s(n)
            elmore = elmore_corrected_td(analytical_model, n)
            rows.append(
                {
                    "n": n,
                    "simulation_ps": simulated * 1e12,
                    "lumped_formula_ps": lumped * 1e12,
                    "elmore_formula_ps": elmore * 1e12,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_csv(
        list(rows[0].keys()),
        [[f"{value:.3f}" if isinstance(value, float) else value for value in row.values()] for row in rows],
    ))

    for row in rows:
        # All three models live in the same regime and order the sizes identically.
        assert 0.2 < row["simulation_ps"] / row["lumped_formula_ps"] < 5.0
        # Elmore correction never increases the wire term.
        assert row["elmore_formula_ps"] <= row["lumped_formula_ps"] + 1e-9

    # For the largest (wire-dominated) array the Elmore correction moves the
    # formula towards the simulation or past it by less than the lumped gap.
    largest = rows[-1]
    lumped_gap = abs(largest["simulation_ps"] - largest["lumped_formula_ps"])
    elmore_gap = abs(largest["simulation_ps"] - largest["elmore_formula_ps"])
    assert elmore_gap < 2.0 * lumped_gap

    benchmark.extra_info["rows"] = rows
