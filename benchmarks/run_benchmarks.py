#!/usr/bin/env python
"""Perf-regression harness for the paper's two engine benches.

``--suite mc`` times every Monte-Carlo study point of the paper DOE
through both the batched (vectorised) pipeline and the scalar per-sample
oracle, checks that the two agree element-wise, and writes ``BENCH_mc.json``.

``--suite service`` starts the HTTP experiment server on an ephemeral
port and times full submit→poll→fetch round trips of the smoke spec:
cold (computed), warm (served from the content-addressed result cache)
and N concurrent clients hammering the cached entry, writing
``BENCH_service.json`` (warm-cache speedup floor: 10x).

``--suite sim`` times the simulated half (Fig. 4 / Tables II–III): the
sequential per-experiment pipelines (fresh ``WorstCaseStudy`` +
``FormulaValidation`` per table, the pre-campaign CLI behaviour) against
the :class:`SimulationCampaign` engine at one and at ``--sim-workers``
processes, verifies row-level parity, and writes ``BENCH_sim.json``.

``--suite faults`` is the chaos bench: it runs a small campaign under
injected solver faults (``repro.testing.faults``) and measures the cost
of fault tolerance — the retry policy must reproduce the fault-free
records bit-for-bit under transient faults, the skip policy must fail
exactly the items the fault plan predicts, and the durable job journal
must replay at a usable rate — writing ``BENCH_faults.json``.

``--suite obs`` is the observability bench: it interleaves traced and
untraced serial runs of the operation campaign and gates on tracing
being free in every sense that matters — records bit-identical with
tracing on, wall-time overhead within 2%, and the named spans
attributing at least 95% of the campaign wall — writing
``BENCH_obs.json``.

``--suite yield_hs`` is the high-sigma yield bench: it runs the
importance-sampling engine over every patterning corner and gates on
the three properties that make a 6-sigma estimate *defensible* — the
6-sigma confidence intervals are finite and two-sided, the 3-sigma
estimates agree with a brute-force Monte-Carlo cross-check within
combined confidence intervals, the effective sample size stays above
an eighth of the proposal count, and the whole sweep fits in the
simulator-call budget (1e5) — writing ``BENCH_yield.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py              # both suites, full size
    PYTHONPATH=src python benchmarks/run_benchmarks.py --samples 50 --suite mc
    PYTHONPATH=src python benchmarks/run_benchmarks.py --suite sim --sim-sizes 16

The MC JSON schema (see README.md, "performance notes"):

* ``points`` — one entry per study point with ``batch``/``scalar``
  sub-objects (``wall_s``, ``samples_per_s``), the batch/scalar
  ``speedup``, the σ(tdp) of both paths and the max |Δ| between the two
  sample sets (the parity check);
* ``summary`` — total wall time of each path, the geometric-mean and
  minimum per-point speedup, and the samples/sec of the batched path.

The sim JSON carries ``sequential.wall_s``, per-worker-count campaign
walls, the derived speedups and a ``parity.max_rel_diff`` over every
Fig. 4 / Table II / Table III value.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import history as bench_history  # noqa: E402
from repro.core.analytical import model_from_technology  # noqa: E402
from repro.core.campaign import SimulationCampaign, scenario_grid  # noqa: E402
from repro.core.montecarlo import MonteCarloTdpStudy  # noqa: E402
from repro.core.operations import OperationSimulators  # noqa: E402
from repro.core.validation import FormulaValidation  # noqa: E402
from repro.core.worst_case import WorstCaseStudy  # noqa: E402
from repro.sram.read_path import ReadPathSimulator  # noqa: E402
from repro.technology.node import n10  # noqa: E402
from repro.variability.doe import StudyDOE, paper_doe  # noqa: E402


def time_record(study: MonteCarloTdpStudy, point) -> tuple[float, object]:
    start = time.perf_counter()
    record = study.tdp_record(point)
    return time.perf_counter() - start, record


def run_benches(n_samples: int, n_wordlines: int, skip_scalar: bool) -> dict:
    node = n10()
    doe = paper_doe()
    batch_study = MonteCarloTdpStudy(node, doe=doe, n_samples=n_samples, batch=True)
    scalar_study = MonteCarloTdpStudy(
        node, doe=doe, model=batch_study.model, n_samples=n_samples, batch=False
    )
    points = doe.monte_carlo_points(n_wordlines=n_wordlines)

    entries = []
    total_batch = 0.0
    total_scalar = 0.0
    speedups = []
    for point in points:
        # Warm the layout cache so neither path pays generation cost.
        batch_study._layout_for(point.n_wordlines)
        scalar_study._layout_cache = batch_study._layout_cache
        batch_wall, batch_record = time_record(batch_study, point)
        entry = {
            "label": point.label,
            "option": point.option_name,
            "overlay_three_sigma_nm": point.overlay_three_sigma_nm,
            "n_wordlines": point.n_wordlines,
            "n_samples": n_samples,
            "batch": {
                "wall_s": round(batch_wall, 6),
                "samples_per_s": round(n_samples / batch_wall, 1),
            },
            "sigma_percent": round(batch_record.summary.std, 6),
        }
        total_batch += batch_wall
        if not skip_scalar:
            scalar_wall, scalar_record = time_record(scalar_study, point)
            diff = np.max(
                np.abs(
                    np.asarray(batch_record.tdp_percent_samples)
                    - np.asarray(scalar_record.tdp_percent_samples)
                )
            )
            speedup = scalar_wall / batch_wall
            entry["scalar"] = {
                "wall_s": round(scalar_wall, 6),
                "samples_per_s": round(n_samples / scalar_wall, 1),
            }
            entry["speedup"] = round(speedup, 2)
            entry["parity"] = {
                "max_abs_diff_percent": float(diff),
                "sigma_percent_scalar": round(scalar_record.summary.std, 6),
                "histograms_identical": batch_record.histogram.counts
                == scalar_record.histogram.counts,
            }
            total_scalar += scalar_wall
            speedups.append(speedup)
        entries.append(entry)
        line = f"{point.label:28s} batch {batch_wall*1e3:8.2f} ms"
        if not skip_scalar:
            line += f"  scalar {entry['scalar']['wall_s']*1e3:9.2f} ms  {entry['speedup']:7.1f}x"
        print(line)

    summary = {
        "n_points": len(points),
        "n_samples": n_samples,
        "batch_total_wall_s": round(total_batch, 6),
        "batch_samples_per_s": round(len(points) * n_samples / total_batch, 1),
    }
    if speedups:
        summary["scalar_total_wall_s"] = round(total_scalar, 6)
        summary["speedup_geomean"] = round(
            math.exp(sum(math.log(s) for s in speedups) / len(speedups)), 2
        )
        summary["speedup_min"] = round(min(speedups), 2)
    return {"points": entries, "summary": summary}


def _rows_as_values(figure4, table2, table3) -> list:
    """Flatten the three row lists into one comparable value vector."""
    values = []
    for row in figure4:
        values.append(row.nominal_td_ps)
        values.extend(value for _, value in sorted(row.tdp_percent_by_option.items()))
    for row in table2:
        values.extend([row.simulation_td_s, row.formula_td_s])
    for row in table3:
        values.extend(value for _, value in sorted(row.tdp_percent_by_option.items()))
    return values


class UncachedReadPathSimulator(ReadPathSimulator):
    """The pre-campaign cost model: every nominal measurement re-simulates,
    every printed layout re-extracts and every solve rebuilds its Jacobian
    structure (no memoization).  Used only as the bench baseline, so the
    engine's dedup/caching shows up honestly in the speedup instead of
    silently accelerating the baseline too."""

    def measure_nominal(self, n_cells, stored_value=0):
        column = self.column_parasitics(n_cells)
        return self.simulate_column(
            n_cells, column, label="nominal", stored_value=stored_value
        )

    def printed_extraction(self, n_cells, option, parameters):
        layout = self.layout_for(n_cells)
        patterned = option.apply(layout.metal1_pattern, parameters)
        return self._lpe.extract_pattern(patterned.printed)

    def simulate_column(self, *args, **kwargs):
        self._jacobian_template_cache.clear()
        return super().simulate_column(*args, **kwargs)


def _scalar_loop_rows(node, doe, model):
    """Fig. 4 / Tables II–III through the scalar corner loop.

    This is the baseline the campaign replaces: one corner at a time via
    ``penalty_percent`` (which re-simulates the nominal column on every
    call) and per-experiment pipelines that re-search corners and
    re-extract every printed layout.
    """
    from repro.core.results import WorstCaseTdRow
    from repro.core.results import FormulaVsSimulationTdRow, FormulaVsSimulationTdpRow

    label = lambda size: f"{doe.n_bitline_pairs}x{size}"  # noqa: E731

    # Fig. 4: nominal td per size plus penalty_percent per (size, option).
    worst_case = WorstCaseStudy(node, doe=doe)
    simulator = UncachedReadPathSimulator(node, n_bitline_pairs=doe.n_bitline_pairs)
    figure4 = []
    for size in doe.array_sizes:
        nominal = simulator.measure_nominal(size)
        penalties = {
            name: simulator.penalty_percent(
                size, worst_case.option(name), worst_case.find_worst_corner(name).parameters
            )
            for name in doe.option_names
        }
        figure4.append(
            WorstCaseTdRow(
                array_label=label(size),
                n_wordlines=size,
                nominal_td_ps=nominal.td_ps,
                tdp_percent_by_option=penalties,
            )
        )

    # Table II: fresh pipeline, nominal simulations again.
    simulator2 = UncachedReadPathSimulator(node, n_bitline_pairs=doe.n_bitline_pairs)
    table2 = [
        FormulaVsSimulationTdRow(
            array_label=label(size),
            n_wordlines=size,
            simulation_td_s=simulator2.measure_nominal(size).td_s,
            formula_td_s=model.td_nominal_s(size),
        )
        for size in doe.array_sizes
    ]

    # Table III: fresh pipeline (its own corner search), the corner loop again.
    worst_case3 = WorstCaseStudy(node, doe=doe)
    simulator3 = UncachedReadPathSimulator(node, n_bitline_pairs=doe.n_bitline_pairs)
    table3 = []
    for size in doe.array_sizes:
        simulated, formula = {}, {}
        for name in doe.option_names:
            corner = worst_case3.find_worst_corner(name)
            simulated[name] = simulator3.penalty_percent(
                size, worst_case3.option(name), corner.parameters
            )
            formula[name] = model.tdp_percent(
                size, corner.bitline_variation.rvar, corner.bitline_variation.cvar
            )
        table3.append(
            FormulaVsSimulationTdpRow(
                method="simulation", array_label=label(size),
                n_wordlines=size, tdp_percent_by_option=simulated,
            )
        )
        table3.append(
            FormulaVsSimulationTdpRow(
                method="formula", array_label=label(size),
                n_wordlines=size, tdp_percent_by_option=formula,
            )
        )
    return figure4, table2, table3


def _sequential_rows(node, doe, model):
    """Fig. 4 / Table II / Table III through fresh per-experiment pipelines,
    mirroring three independent CLI invocations (with this PR's simulator
    caches active — a tighter baseline than the scalar loop)."""
    figure4 = WorstCaseStudy(node, doe=doe).figure4(
        simulator=ReadPathSimulator(node, n_bitline_pairs=doe.n_bitline_pairs)
    )
    table2 = FormulaValidation(node, doe=doe, model=model).table2()
    table3 = FormulaValidation(node, doe=doe, model=model).table3()
    return figure4, table2, table3


def _campaign_rows(node, doe, model, workers):
    campaign = SimulationCampaign(node, doe=doe)
    results = campaign.run(workers=workers)
    return (
        campaign.figure4_rows(results),
        campaign.table2_rows(results, model),
        campaign.table3_rows(results, model),
    )


def _best_of(repetitions: int, runner):
    """Best-of-N wall clock (fresh state per repetition, min of the walls)."""
    best_wall, rows = None, None
    for _ in range(repetitions):
        start = time.perf_counter()
        rows = runner()
        wall = time.perf_counter() - start
        best_wall = wall if best_wall is None else min(best_wall, wall)
    return best_wall, rows


def run_sim_bench(sizes: tuple, workers: int, repetitions: int = 2) -> dict:
    import os

    node = n10()
    doe = StudyDOE(array_sizes=tuple(sizes))
    model = model_from_technology(node, n_bitline_pairs=doe.n_bitline_pairs)

    scalar_wall, scalar_rows = _best_of(
        repetitions, lambda: _scalar_loop_rows(node, doe, model)
    )
    print(f"scalar corner loop          {scalar_wall*1e3:9.2f} ms")

    sequential_wall, seq_rows = _best_of(
        repetitions, lambda: _sequential_rows(node, doe, model)
    )
    print(f"sequential pipelines        {sequential_wall*1e3:9.2f} ms")

    walls = {}
    campaign_rows = {}
    effective_workers = {}
    for n_workers in sorted({1, workers}):
        walls[n_workers], campaign_rows[n_workers] = _best_of(
            repetitions, lambda: _campaign_rows(node, doe, model, n_workers)
        )
        # The engine clamps to available CPUs; record what actually ran so
        # the artifact is honest about single-core machines.
        effective_workers[n_workers] = min(
            n_workers, SimulationCampaign.available_cpus()
        )
        print(
            f"campaign --workers {n_workers:<2}       {walls[n_workers]*1e3:9.2f} ms"
            f"  (effective workers: {effective_workers[n_workers]})"
        )

    reference = np.asarray(_rows_as_values(*scalar_rows))
    max_rel_diff = 0.0
    for rows in list(campaign_rows.values()) + [seq_rows]:
        values = np.asarray(_rows_as_values(*rows))
        scale = np.maximum(np.abs(reference), 1e-30)
        max_rel_diff = max(
            max_rel_diff, float(np.max(np.abs(values - reference) / scale))
        )

    best_wall = min(walls.values())
    n_items = len(SimulationCampaign(node, doe=doe).work_items())
    return {
        "doe": {
            "array_sizes": list(doe.array_sizes),
            "option_names": list(doe.option_names),
            "n_items": n_items,
        },
        "baselines": {
            "scalar_loop": {
                "wall_s": round(scalar_wall, 6),
                "description": (
                    "pre-campaign corner loop: per-corner penalty_percent "
                    "(nominal re-simulated, printed layout re-extracted per "
                    "call), fresh pipeline and corner search per experiment"
                ),
            },
            "sequential_pipelines": {
                "wall_s": round(sequential_wall, 6),
                "description": (
                    "fig4/table2/table3 as three fresh cached pipelines "
                    "(per-command CLI behaviour with this PR's caches)"
                ),
            },
        },
        "campaign": {
            f"workers_{n}": {
                "wall_s": round(wall, 6),
                "effective_workers": effective_workers[n],
            }
            for n, wall in walls.items()
        },
        "speedup": {
            "vs_scalar_loop": {
                f"workers_{n}": round(scalar_wall / wall, 2)
                for n, wall in walls.items()
            },
            "vs_sequential_pipelines": {
                f"workers_{n}": round(sequential_wall / wall, 2)
                for n, wall in walls.items()
            },
        },
        "parity": {"max_rel_diff": max_rel_diff},
        "summary": {
            "workers": workers,
            "effective_workers": effective_workers[workers],
            "cpu_count": os.cpu_count(),
            "speedup_at_workers": round(scalar_wall / walls[workers], 2),
            "speedup_best": round(scalar_wall / best_wall, 2),
        },
    }


#: Operations of the ops bench (write + both noise margins; read has its
#: own bench in --suite sim).
OPS_BENCH_OPERATIONS = ("write", "hold_snm", "read_snm")


def _operation_rows_as_values(rows_by_operation: dict) -> list:
    """Flatten per-operation row lists into one comparable value vector."""
    values = []
    for name in OPS_BENCH_OPERATIONS:
        for row in rows_by_operation[name]:
            values.append(row.nominal_value)
            values.extend(v for _, v in sorted(row.delta_percent_by_option.items()))
    return values


def _scalar_ops_rows(node, doe):
    """Write + SNM impacts through fresh per-operation pipelines.

    The baseline the operation campaign replaces: one fresh simulator
    bundle and one fresh worst-case study (its own corner search) per
    operation, so nothing is shared between operations.
    """
    rows = {}
    for name in OPS_BENCH_OPERATIONS:
        worst_case = WorstCaseStudy(node, doe=doe)
        sims = OperationSimulators(node, n_bitline_pairs=doe.n_bitline_pairs)
        rows[name] = worst_case.operation_rows(name, simulators=sims)
    return rows


def _campaign_ops_rows(node, doe, workers, solver="batched"):
    campaign = SimulationCampaign(
        node,
        doe=doe,
        scenarios=scenario_grid(operations=OPS_BENCH_OPERATIONS),
        solver=solver,
    )
    results = campaign.run(workers=workers)
    return {
        scenario.operation: campaign.operation_rows(results, scenario)
        for scenario in campaign.scenarios
    }


def run_ops_bench(sizes: tuple, workers: int, repetitions: int = 2) -> dict:
    node = n10()
    doe = StudyDOE(array_sizes=tuple(sizes))

    scalar_wall, scalar_rows = _best_of(
        repetitions, lambda: _scalar_ops_rows(node, doe)
    )
    print(f"scalar operation loop       {scalar_wall*1e3:9.2f} ms")

    # The scalar-solver campaign at one worker: same engine, items run
    # one at a time — the direct baseline of the batched solver tier.
    scalar_solver_wall, scalar_solver_rows = _best_of(
        repetitions, lambda: _campaign_ops_rows(node, doe, 1, solver="scalar")
    )
    print(f"ops campaign scalar tier    {scalar_solver_wall*1e3:9.2f} ms")

    walls = {}
    campaign_rows = {}
    effective_workers = {}
    for n_workers in sorted({1, workers}):
        walls[n_workers], campaign_rows[n_workers] = _best_of(
            repetitions, lambda: _campaign_ops_rows(node, doe, n_workers)
        )
        effective_workers[n_workers] = min(
            n_workers, SimulationCampaign.available_cpus()
        )
        print(
            f"ops campaign --workers {n_workers:<2}   {walls[n_workers]*1e3:9.2f} ms"
            f"  (batched tier, effective workers: {effective_workers[n_workers]})"
        )

    reference = np.asarray(_operation_rows_as_values(scalar_rows))
    max_rel_diff = 0.0
    for rows in list(campaign_rows.values()) + [scalar_solver_rows]:
        values = np.asarray(_operation_rows_as_values(rows))
        scale = np.maximum(np.abs(reference), 1e-30)
        max_rel_diff = max(
            max_rel_diff, float(np.max(np.abs(values - reference) / scale))
        )

    best_wall = min(walls.values())
    return {
        "doe": {
            "array_sizes": list(doe.array_sizes),
            "option_names": list(doe.option_names),
            "operations": list(OPS_BENCH_OPERATIONS),
        },
        "baselines": {
            "scalar_loop": {
                "wall_s": round(scalar_wall, 6),
                "description": (
                    "per-operation pipelines: fresh simulator bundle and "
                    "fresh corner search per operation, nothing shared"
                ),
            },
            "campaign_scalar_solver": {
                "wall_s": round(scalar_solver_wall, 6),
                "description": (
                    "the campaign engine with solver=scalar at one worker: "
                    "shared caches, items solved one at a time"
                ),
            },
        },
        "campaign": {
            f"workers_{n}": {
                "wall_s": round(wall, 6),
                "effective_workers": effective_workers[n],
            }
            for n, wall in walls.items()
        },
        "speedup": {
            "vs_scalar_loop": {
                f"workers_{n}": round(scalar_wall / wall, 2)
                for n, wall in walls.items()
            },
            "batched_vs_scalar_solver": round(scalar_solver_wall / walls[1], 2),
        },
        "parity": {"max_rel_diff": max_rel_diff},
        "summary": {
            "workers": workers,
            "effective_workers": effective_workers[workers],
            "cpu_count": os.cpu_count(),
            "speedup_at_workers": round(scalar_wall / walls[workers], 2),
            "speedup_best": round(scalar_wall / best_wall, 2),
            "solver_speedup": round(scalar_solver_wall / walls[1], 2),
        },
    }


def run_service_bench(
    n_clients: int,
    requests_per_client: int,
    warm_repeats: int = 20,
) -> dict:
    """Cold vs warm-cache latency and concurrent submission throughput.

    Starts a real :class:`~repro.service.server.ExperimentServer` on an
    ephemeral port with a fresh cache, then measures — all through full
    HTTP round trips (submit → poll → fetch JSON result):

    * ``cold``  — the first submission of ``examples/specs/smoke.json``
      (computes the campaign);
    * ``warm``  — ``warm_repeats`` resubmissions of the identical spec
      (served from the content-addressed cache without recomputation);
    * ``throughput`` — ``n_clients`` threads each submitting the cached
      spec ``requests_per_client`` times, as submissions per second.
    """
    import statistics
    import tempfile
    import threading

    from repro.service import ExperimentClient, ExperimentServer

    spec_path = Path(__file__).resolve().parent.parent / "examples" / "specs" / "smoke.json"

    def round_trip(client: ExperimentClient) -> tuple:
        start = time.perf_counter()
        ticket = client.submit(spec_path)
        client.wait(ticket["id"], timeout_s=600.0, poll_s=0.02)
        client.result_text(ticket["id"], fmt="json")
        return time.perf_counter() - start, ticket

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        with ExperimentServer(cache_dir=cache_dir, workers=2) as server:
            client = ExperimentClient(server.url)

            cold_wall, cold_ticket = round_trip(client)
            assert not cold_ticket["cached"], "first submission must compute"
            print(f"service cold submit         {cold_wall*1e3:9.2f} ms")

            warm_walls = []
            for _ in range(warm_repeats):
                wall, ticket = round_trip(client)
                assert ticket["cached"], "resubmission must hit the cache"
                warm_walls.append(wall)
            warm_median = statistics.median(warm_walls)
            print(
                f"service warm submit         {warm_median*1e3:9.2f} ms"
                f"  (median of {warm_repeats}, min {min(warm_walls)*1e3:.2f} ms)"
            )

            errors = []

            def hammer() -> None:
                worker = ExperimentClient(server.url)
                try:
                    for _ in range(requests_per_client):
                        worker.result_text(worker.submit(spec_path)["id"], fmt="json")
                except Exception as exc:  # pragma: no cover - bench diagnostics
                    errors.append(f"{type(exc).__name__}: {exc}")

            threads = [threading.Thread(target=hammer) for _ in range(n_clients)]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            hammer_wall = time.perf_counter() - start
            if errors:
                raise RuntimeError(f"concurrent clients failed: {errors[:3]}")
            n_submissions = n_clients * requests_per_client
            throughput = n_submissions / hammer_wall
            print(
                f"service throughput          {throughput:9.1f} submissions/s"
                f"  ({n_clients} clients x {requests_per_client} requests)"
            )

            health = client.health()

    speedup = cold_wall / warm_median
    return {
        "spec": str(spec_path.relative_to(spec_path.parent.parent.parent)),
        "cold": {"wall_s": round(cold_wall, 6)},
        "warm": {
            "repeats": warm_repeats,
            "median_wall_s": round(warm_median, 6),
            "min_wall_s": round(min(warm_walls), 6),
            "max_wall_s": round(max(warm_walls), 6),
        },
        "speedup_warm_vs_cold": round(speedup, 2),
        "throughput": {
            "clients": n_clients,
            "requests_per_client": requests_per_client,
            "wall_s": round(hammer_wall, 6),
            "submissions_per_s": round(throughput, 1),
        },
        "server": {
            "cache": health["cache"],
            "queue": health["queue"],
        },
    }


def run_faults_bench(journal_entries: int = 500) -> dict:
    """Chaos bench: campaign fault tolerance and journal replay rate.

    Three measurements, each with a hard correctness gate:

    * ``retry`` — a nominal campaign under a 50% transient solver-fault
      rate with ``failure_policy="retry"``; every record must match the
      fault-free run bit-for-bit (``wall_s`` aside), and the reported
      overhead is the wall-time ratio chaos / fault-free;
    * ``skip``  — the same campaign under a persistent fault with
      ``failure_policy="skip"``; the failed set must equal exactly the
      items :meth:`FaultPlan.hits_solver` predicts;
    * ``journal`` — replay + compaction rate of a WAL holding
      ``journal_entries`` submissions (half of them settled).
    """
    import tempfile
    from dataclasses import replace

    from repro.core.campaign import SimulationCampaign, scenario_grid
    from repro.core.spec import ArraySpec, ExecutionSpec, ExperimentSpec
    from repro.service.journal import JobJournal
    from repro.technology import n10
    from repro.testing import FaultPlan
    from repro.testing.faults import injected
    from repro.variability.doe import StudyDOE

    def campaign(**overrides) -> SimulationCampaign:
        options = dict(
            doe=StudyDOE(array_sizes=(16,)),
            scenarios=scenario_grid(stored_values=(0, 1)),
        )
        options.update(overrides)
        return SimulationCampaign(n10(), **options)

    def keyed(results) -> dict:
        return {r.key: replace(r, wall_s=0.0) for r in results.records}

    start = time.perf_counter()
    baseline = campaign().run(kinds=("nominal",))
    clean_wall = time.perf_counter() - start
    assert not baseline.failures, "fault-free campaign must not fail"
    reference = keyed(baseline)
    print(f"faults fault-free wall      {clean_wall*1e3:9.2f} ms"
          f"  ({len(reference)} items)")

    # Transient faults (each item faults once, then runs clean): retry
    # must recover every item bit-identically.
    transient = FaultPlan(seed=11, solver_fail_rate=0.5, solver_fail_attempts=1)
    retrying = campaign(
        failure_policy="retry", max_retries=3, retry_backoff_s=0.001
    )
    with injected(transient):
        start = time.perf_counter()
        chaos = retrying.run(kinds=("nominal",))
        chaos_wall = time.perf_counter() - start
    retry_mismatches = sum(
        1 for key, record in keyed(chaos).items() if reference.get(key) != record
    )
    retry_ok = not chaos.failures and retry_mismatches == 0
    overhead = chaos_wall / clean_wall if clean_wall > 0 else float("inf")
    print(f"faults retry chaos wall     {chaos_wall*1e3:9.2f} ms"
          f"  (overhead {overhead:.2f}x, mismatches {retry_mismatches})")

    # Persistent faults: skip must fail exactly the predicted set.
    persistent = FaultPlan(seed=11, solver_fail_rate=0.5, solver_fail_attempts=99)
    skipping = campaign(failure_policy="skip")
    predicted = {
        item.key
        for item in skipping.work_items(kinds=("nominal",))
        if persistent.hits_solver(item.key)
    }
    with injected(persistent):
        partial = skipping.run(kinds=("nominal",))
    failed = {failure.key for failure in partial.failures}
    skip_ok = failed == predicted and all(
        reference[r.key] == replace(r, wall_s=0.0) for r in partial.records
    )
    print(f"faults skip policy          {len(failed):9d} failed"
          f"  (predicted {len(predicted)}, survivors intact: {skip_ok})")

    # Journal replay throughput over a WAL with a settled half.
    with tempfile.TemporaryDirectory(prefix="repro-bench-journal-") as tmp:
        journal = JobJournal(Path(tmp) / "journal.jsonl")
        spec = ExperimentSpec(kind="campaign", array=ArraySpec(sizes=(16,)))
        start = time.perf_counter()
        tokens = []
        for i in range(journal_entries):
            variant = replace(spec, execution=ExecutionSpec(seed=i))
            tokens.append(journal.record_submitted(variant.fingerprint(), variant))
        append_wall = time.perf_counter() - start
        for token in tokens[::2]:
            journal.record_terminal(token, "done")
        start = time.perf_counter()
        outstanding = journal.replay()
        replay_wall = time.perf_counter() - start
        compacted = journal.compact()
    journal_ok = len(outstanding) == journal_entries - len(tokens[::2])
    replay_rate = journal_entries / replay_wall if replay_wall > 0 else float("inf")
    print(f"faults journal replay       {replay_rate:9.0f} entries/s"
          f"  ({journal_entries} appended, {len(outstanding)} outstanding, "
          f"{compacted} compacted)")

    return {
        "campaign": {"items": len(reference), "fault_free_wall_s": round(clean_wall, 6)},
        "retry": {
            "fault_rate": transient.solver_fail_rate,
            "wall_s": round(chaos_wall, 6),
            "overhead_x": round(overhead, 2),
            "mismatches": retry_mismatches,
            "failures": len(chaos.failures),
            "bit_identical": retry_ok,
        },
        "skip": {
            "fault_rate": persistent.solver_fail_rate,
            "predicted_failures": sorted(predicted),
            "observed_failures": sorted(failed),
            "isolation_exact": skip_ok,
        },
        "journal": {
            "entries": journal_entries,
            "append_wall_s": round(append_wall, 6),
            "replay_wall_s": round(replay_wall, 6),
            "replay_entries_per_s": round(replay_rate, 1),
            "outstanding": len(outstanding),
            "compacted_lines": compacted,
            "consistent": journal_ok,
        },
    }


def run_obs_bench(
    sizes: tuple,
    repetitions: int = 5,
    trace_path: Path | None = None,
    profile_path: Path | None = None,
) -> dict:
    """Observability bench: traced/profiled vs untraced operation campaign.

    Interleaves ``repetitions`` untraced, traced and sampling-profiled
    serial runs of the operation-suite campaign (best-of-N wall of each,
    taken from the same interleaved sequence so OS noise hits all paths
    alike) and reports four gated properties:

    * ``parity.bit_identical`` — the traced and profiled runs must
      reproduce the untraced records bit-for-bit (``wall_s`` aside);
    * ``overhead_percent`` — the traced best wall relative to the
      untraced best (acceptance ceiling: 2% at the full paper DOE);
    * ``profiler_overhead_percent`` — the profiled best wall relative
      to the untraced best (ceiling: 5% at the full paper DOE);
    * ``attribution`` — the named campaign phases must account for at
      least 95% of the campaign wall in the final repetition's trace.
    """
    import tempfile
    from dataclasses import replace

    from repro.obs.profile import (
        disable_profiling,
        enable_profiling,
        phase_totals,
        read_folded,
        top_frames,
    )
    from repro.obs.trace import (
        campaign_attribution,
        disable_tracing,
        enable_tracing,
        read_trace,
    )

    node = n10()
    doe = StudyDOE(array_sizes=tuple(sizes))

    def run_campaign():
        campaign = SimulationCampaign(
            node, doe=doe, scenarios=scenario_grid(operations=OPS_BENCH_OPERATIONS)
        )
        return campaign.run(workers=1)

    def keyed(results) -> dict:
        return {r.key: replace(r, wall_s=0.0) for r in results.records}

    # A scratch dir always exists; explicit --obs-trace/--obs-profile paths
    # simply redirect the corresponding artifact outside it.
    tmp_dir = tempfile.TemporaryDirectory(prefix="repro-bench-obs-")
    trace_file = (
        Path(trace_path) if trace_path is not None
        else Path(tmp_dir.name) / "trace.jsonl"
    )
    profile_file = (
        Path(profile_path) if profile_path is not None
        else Path(tmp_dir.name) / "profile.folded"
    )

    try:
        untraced_walls: list = []
        traced_walls: list = []
        profiled_walls: list = []
        untraced_results = traced_results = profiled_results = None
        for _ in range(repetitions):
            start = time.perf_counter()
            untraced_results = run_campaign()
            untraced_walls.append(time.perf_counter() - start)

            # enable_tracing truncates the file, so the trace left behind
            # (and the attribution below) belongs to the last repetition.
            enable_tracing(trace_file)
            try:
                start = time.perf_counter()
                traced_results = run_campaign()
                traced_walls.append(time.perf_counter() - start)
            finally:
                disable_tracing()

            # Same truncation semantics: the folded file belongs to the
            # last repetition's profiled run.
            enable_profiling(profile_file)
            try:
                start = time.perf_counter()
                profiled_results = run_campaign()
                profiled_walls.append(time.perf_counter() - start)
            finally:
                disable_profiling()

        records = read_trace(trace_file)
        folded = read_folded(profile_file)
    finally:
        tmp_dir.cleanup()

    reference = keyed(untraced_results)
    mismatches = sum(
        1
        for results in (traced_results, profiled_results)
        for key, record in keyed(results).items()
        if reference.get(key) != record
    )
    bit_identical = (
        not untraced_results.failures
        and not traced_results.failures
        and not profiled_results.failures
        and len(reference) == len(traced_results.records)
        and len(reference) == len(profiled_results.records)
        and mismatches == 0
    )

    untraced_best = min(untraced_walls)
    traced_best = min(traced_walls)
    profiled_best = min(profiled_walls)
    overhead_percent = 100.0 * (traced_best / untraced_best - 1.0)
    profiler_overhead_percent = 100.0 * (profiled_best / untraced_best - 1.0)
    attribution = campaign_attribution(records)
    n_profile_samples = sum(folded.values())

    print(f"obs untraced campaign       {untraced_best*1e3:9.2f} ms"
          f"  (best of {repetitions}, {len(reference)} items)")
    print(f"obs traced campaign         {traced_best*1e3:9.2f} ms"
          f"  (overhead {overhead_percent:+.2f}%, {len(records)} spans)")
    print(f"obs profiled campaign       {profiled_best*1e3:9.2f} ms"
          f"  (overhead {profiler_overhead_percent:+.2f}%, "
          f"{n_profile_samples} samples)")
    print(f"obs phase attribution       {attribution['coverage_percent']:9.1f} %"
          f"  (mismatched records: {mismatches})")

    return {
        "doe": {
            "array_sizes": list(doe.array_sizes),
            "option_names": list(doe.option_names),
            "operations": list(OPS_BENCH_OPERATIONS),
            "items": len(reference),
        },
        "untraced": {
            "best_wall_s": round(untraced_best, 6),
            "walls_s": [round(wall, 6) for wall in untraced_walls],
        },
        "traced": {
            "best_wall_s": round(traced_best, 6),
            "walls_s": [round(wall, 6) for wall in traced_walls],
            "spans": len(records),
            "span_names": sorted({r.get("name", "?") for r in records}),
            "trace_path": None if trace_path is None else str(trace_file),
        },
        "profiled": {
            "best_wall_s": round(profiled_best, 6),
            "walls_s": [round(wall, 6) for wall in profiled_walls],
            "samples": n_profile_samples,
            "hot_frames": [[frame, count] for frame, count in top_frames(folded, 5)],
            "phase_samples": phase_totals(folded),
            "profile_path": None if profile_path is None else str(profile_file),
        },
        "overhead_percent": round(overhead_percent, 3),
        "profiler_overhead_percent": round(profiler_overhead_percent, 3),
        "parity": {
            "bit_identical": bit_identical,
            "mismatches": mismatches,
            "records": len(reference),
            "failures": len(untraced_results.failures)
            + len(traced_results.failures)
            + len(profiled_results.failures),
        },
        "attribution": {
            "campaign_runs": attribution["campaign_runs"],
            "campaign_wall_s": round(attribution["campaign_wall_s"], 6),
            "attributed_wall_s": round(attribution["attributed_wall_s"], 6),
            "coverage_percent": round(attribution["coverage_percent"], 2),
        },
    }


def run_yield_hs_bench(
    proposals: int = 4000,
    pilot_samples: int = 512,
    mc_samples: int = 20000,
    max_calls: int = 100_000,
    sizes: tuple = (64,),
) -> dict:
    """High-sigma yield bench: IS tail estimates with their quality gates.

    Runs the ``yield_hs`` experiment over the full patterning corner set
    and reports, per corner and sigma level, the fail probability with
    its confidence interval, ESS, the FORM beta and the Monte-Carlo
    cross-check.  The quality gates are in ``checks``:

    * every 6-sigma estimate has a finite two-sided CI (the whole point
      of importance sampling — brute force cannot produce one);
    * every 3-sigma estimate agrees with brute-force MC within combined
      confidence intervals (the parity oracle);
    * the ESS never collapses below 1/8 of the proposal count (the
      defensive mixture is doing its job);
    * the full sweep stays within the real-simulator-call budget.
    """
    from repro.api import run
    from repro.core.spec import (
        ArraySpec,
        ExperimentSpec,
        HighSigmaSpec,
        TechnologySpec,
    )

    spec = ExperimentSpec(
        kind="yield_hs",
        technology=TechnologySpec(overlay_three_sigma_nm=8.0),
        array=ArraySpec(sizes=sizes),
        high_sigma=HighSigmaSpec(
            operation="read",
            model="analytical",
            sigma_levels=(3.0, 6.0),
            proposals=proposals,
            pilot_samples=pilot_samples,
            mc_samples=mc_samples,
            max_calls=max_calls,
        ),
    )
    started = time.time()
    result = run(spec)
    wall = time.time() - started

    rows = [r for r in result.records if r.get("record") == "high_sigma"]
    meta = result.meta["high_sigma"]
    six_sigma = [r for r in rows if r["sigma_level"] == 6.0]
    three_sigma = [r for r in rows if r["sigma_level"] == 3.0]
    checked = [r for r in three_sigma if r["mc_agrees"] is not None]

    ess_floor = proposals / 8.0
    checks = {
        "six_sigma_rows": len(six_sigma),
        "six_sigma_finite_ci": bool(six_sigma)
        and all(
            0.0 < r["ci_low"] <= r["fail_probability"] <= r["ci_high"] < 1.0
            for r in six_sigma
        ),
        "mc_cross_checks": len(checked),
        "mc_agreement": bool(checked) and all(r["mc_agrees"] for r in checked),
        "ess_floor": ess_floor,
        "ess_min": min(r["ess"] for r in rows) if rows else 0.0,
        "ess_above_floor": bool(rows)
        and all(r["ess"] >= ess_floor for r in rows),
        "call_budget": max_calls,
        "within_call_budget": meta["total_simulator_calls"] <= max_calls,
    }
    return {
        "spec": {
            "operation": meta["operation"],
            "model": meta["model"],
            "sigma_levels": meta["sigma_levels"],
            "proposals": proposals,
            "pilot_samples": pilot_samples,
            "mc_samples": mc_samples,
        },
        "wall_s": round(wall, 3),
        "corners": len(rows) // 2 if rows else 0,
        "total_simulator_calls": meta["total_simulator_calls"],
        "total_promoted": meta["total_promoted"],
        "total_proposals": meta["total_proposals"],
        "rows": [
            {
                "option": r["option"],
                "overlay_three_sigma_nm": r["overlay_three_sigma_nm"],
                "sigma_level": r["sigma_level"],
                "threshold_percent": round(r["threshold"], 4),
                "fail_probability": r["fail_probability"],
                "ci_low": r["ci_low"],
                "ci_high": r["ci_high"],
                "sigma_equivalent": round(r["sigma_equivalent"], 3),
                "ess": round(r["ess"], 1),
                "beta": round(r["beta"], 3),
                "mc_probability": r["mc_probability"],
                "mc_agrees": r["mc_agrees"],
            }
            for r in rows
        ],
        "checks": checks,
    }


def bench_environment(workers: int | None = None) -> dict:
    """Reproducibility block of every bench report.

    ``cpu_count`` is the machine's CPU count; ``cpus_available`` is what
    the process may actually use (cgroup/affinity-clamped), which is the
    number worker requests are clamped to — recording both makes a
    regression on a differently-clamped CI runner explainable from the
    JSON alone.  Suites that take a ``--*-workers`` knob pass it in so
    the requested and the clamped effective count land next to the
    timings they shaped.
    """
    env = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "cpus_available": SimulationCampaign.available_cpus(),
    }
    if workers is not None:
        env["workers_requested"] = workers
        env["workers_effective"] = min(
            workers, SimulationCampaign.available_cpus()
        )
    return env


#: Per-suite gated metrics for the history regression gate: metric name
#: (as extracted by :func:`_suite_metrics`) → direction.  "higher" =
#: throughput/speedup (regression when it drops), "lower" = wall/latency
#: (regression when it grows).
GATED_METRICS: dict = {
    "mc": {"batch_samples_per_s": "higher", "speedup_geomean": "higher"},
    "sim": {"speedup_at_workers": "higher"},
    "ops": {"solver_speedup": "higher", "speedup_at_workers": "higher"},
    "service": {
        "speedup_warm_vs_cold": "higher",
        "submissions_per_s": "higher",
    },
    "faults": {"replay_entries_per_s": "higher"},
    "obs": {
        "untraced_best_wall_s": "lower",
        "traced_best_wall_s": "lower",
        "profiled_best_wall_s": "lower",
    },
    "yield_hs": {"wall_s": "lower", "total_simulator_calls": "lower"},
}


def _suite_metrics(suite: str, report: dict) -> dict:
    """Pull the gate-relevant scalars out of one suite's report."""
    if suite == "mc":
        metrics = {"batch_samples_per_s": report["summary"]["batch_samples_per_s"]}
        if "speedup_geomean" in report["summary"]:
            metrics["speedup_geomean"] = report["summary"]["speedup_geomean"]
        return metrics
    if suite == "sim":
        return {"speedup_at_workers": report["summary"]["speedup_at_workers"]}
    if suite == "ops":
        return {
            "solver_speedup": report["summary"]["solver_speedup"],
            "speedup_at_workers": report["summary"]["speedup_at_workers"],
        }
    if suite == "service":
        return {
            "speedup_warm_vs_cold": report["speedup_warm_vs_cold"],
            "submissions_per_s": report["throughput"]["submissions_per_s"],
        }
    if suite == "faults":
        return {
            "replay_entries_per_s": report["journal"]["replay_entries_per_s"],
        }
    if suite == "obs":
        return {
            "untraced_best_wall_s": report["untraced"]["best_wall_s"],
            "traced_best_wall_s": report["traced"]["best_wall_s"],
            "profiled_best_wall_s": report["profiled"]["best_wall_s"],
        }
    if suite == "yield_hs":
        return {
            "wall_s": report["wall_s"],
            "total_simulator_calls": report["total_simulator_calls"],
        }
    raise ValueError(f"unknown suite {suite!r}")


def _suite_config(suite: str, args) -> dict:
    """The knobs that shape a suite's timings — history entries only
    compare against entries recorded under an identical config, so a
    smoke run is never judged against full-DOE baselines."""
    if suite == "mc":
        return {
            "samples": args.samples,
            "wordlines": args.wordlines,
            "skip_scalar": bool(args.skip_scalar),
        }
    if suite == "sim":
        return {"sizes": list(args.sim_sizes), "workers": args.sim_workers}
    if suite == "ops":
        return {"sizes": list(args.ops_sizes), "workers": args.ops_workers}
    if suite == "service":
        return {
            "clients": args.service_clients,
            "requests": args.service_requests,
        }
    if suite == "faults":
        return {"journal_entries": args.journal_entries}
    if suite == "obs":
        return {"sizes": list(args.obs_sizes), "reps": args.obs_reps}
    if suite == "yield_hs":
        return {
            "proposals": args.yield_proposals,
            "mc_samples": args.yield_mc_samples,
        }
    raise ValueError(f"unknown suite {suite!r}")


def _report_header(bench: str, description: str, started: float,
                   workers: int | None = None) -> dict:
    """The provenance block every BENCH_*.json starts with."""
    return {
        "bench": bench,
        "description": description,
        "bench_schema_version": bench_history.BENCH_SCHEMA_VERSION,
        "timestamp_unix": int(started),
        "timestamp_utc": bench_history.utc_timestamp(started),
        "environment": bench_environment(workers),
    }


def _history_step(args, suite: str, report: dict) -> bool:
    """``--check``/``--record`` handling for one finished suite.

    Checks against the existing history *before* recording, so a fresh
    measurement never contributes to its own baseline.  Returns True
    when the regression gate fired.
    """
    if not (args.record or args.check):
        return False
    metrics = _suite_metrics(suite, report)
    config = _suite_config(suite, args)
    regressed = False
    if args.check:
        problems = bench_history.validate_report(report)
        if problems:
            print(f"history[{suite}]: report provenance invalid: {problems}")
            regressed = True
        findings = bench_history.check_metrics(
            bench_history.load_entries(args.history_dir, suite),
            metrics,
            GATED_METRICS[suite],
            config=config,
        )
        print(f"history[{suite}] gate:")
        print(bench_history.format_findings(findings))
        if bench_history.has_regressions(findings):
            regressed = True
    if args.record:
        entry = bench_history.append_entry(
            args.history_dir,
            suite,
            metrics,
            environment=report.get("environment"),
            config=config,
            unix=report.get("timestamp_unix"),
        )
        print(
            f"history[{suite}]: recorded {sorted(entry['metrics'])} "
            f"to {bench_history.history_path(args.history_dir, suite)}"
        )
    return regressed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite",
                        choices=("mc", "sim", "ops", "service", "faults", "obs",
                                 "yield_hs", "all"),
                        default="all",
                        help="which bench suite(s) to run (default: all)")
    parser.add_argument("--samples", type=int, default=1000,
                        help="Monte-Carlo samples per study point (default 1000)")
    parser.add_argument("--wordlines", type=int, default=64,
                        help="array size of the MC study (default 64, as in the paper)")
    parser.add_argument("--skip-scalar", action="store_true",
                        help="time only the batched path (quick trend check)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_mc.json",
                        help="where to write the MC JSON report")
    parser.add_argument("--sim-sizes", type=int, nargs="+", default=[16, 64, 256, 1024],
                        help="array sizes of the campaign bench (default: the paper DOE)")
    parser.add_argument("--sim-workers", type=int, default=4,
                        help="worker processes for the campaign bench (default 4)")
    parser.add_argument("--sim-output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_sim.json",
                        help="where to write the sim JSON report")
    parser.add_argument("--ops-sizes", type=int, nargs="+", default=[16, 64, 256, 1024],
                        help="array sizes of the operation-suite bench (default: the paper DOE)")
    parser.add_argument("--ops-workers", type=int, default=4,
                        help="worker processes for the operation-suite bench (default 4)")
    parser.add_argument("--ops-output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_ops.json",
                        help="where to write the operation-suite JSON report")
    parser.add_argument("--service-clients", type=int, default=4,
                        help="concurrent clients of the service bench (default 4)")
    parser.add_argument("--service-requests", type=int, default=25,
                        help="submissions per client in the service bench (default 25)")
    parser.add_argument("--service-output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_service.json",
                        help="where to write the service JSON report")
    parser.add_argument("--journal-entries", type=int, default=500,
                        help="WAL submissions in the faults journal bench (default 500)")
    parser.add_argument("--faults-output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_faults.json",
                        help="where to write the chaos-bench JSON report")
    parser.add_argument("--obs-sizes", type=int, nargs="+", default=[16, 64, 256, 1024],
                        help="array sizes of the observability bench (default: the paper DOE)")
    parser.add_argument("--obs-reps", type=int, default=5,
                        help="interleaved traced/untraced repetitions (default 5; "
                             "best-of-N needs headroom against scheduler noise)")
    parser.add_argument("--obs-trace", type=Path, default=None,
                        help="keep the traced run's JSONL at this path (default: a temp file)")
    parser.add_argument("--obs-profile", type=Path, default=None,
                        help="keep the profiled run's folded stacks at this path "
                             "(default: a temp file)")
    parser.add_argument("--obs-output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_obs.json",
                        help="where to write the observability JSON report")
    parser.add_argument("--yield-proposals", type=int, default=4000,
                        help="IS proposal draws per corner/level in the "
                             "high-sigma bench (default 4000)")
    parser.add_argument("--yield-mc-samples", type=int, default=20000,
                        help="brute-force cross-check draws in the "
                             "high-sigma bench (default 20000)")
    parser.add_argument("--yield-output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_yield.json",
                        help="where to write the high-sigma yield JSON report")
    parser.add_argument("--record", action="store_true",
                        help="append each suite's gated metrics to the history "
                             "(benchmarks/history/<suite>.jsonl)")
    parser.add_argument("--check", action="store_true",
                        help="gate each suite against its rolling history "
                             f"(exit {bench_history.REGRESSION_EXIT_CODE} on regression)")
    parser.add_argument("--history-dir", type=Path,
                        default=Path(__file__).resolve().parent / "history",
                        help="bench-history directory (default: benchmarks/history)")
    args = parser.parse_args()

    exit_code = 0
    regressed = False
    if args.suite in ("mc", "all"):
        started = time.time()
        report = _report_header(
            "monte_carlo_tdp",
            "Fig.5/Table IV Monte-Carlo benches: batched vs scalar pipeline",
            started,
        )
        report.update(run_benches(args.samples, args.wordlines, args.skip_scalar))
        report["harness_wall_s"] = round(time.time() - started, 3)

        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.output}")
        summary = report["summary"]
        print(f"batched throughput: {summary['batch_samples_per_s']:.0f} samples/s")
        if "speedup_geomean" in summary:
            print(
                f"speedup vs scalar: geomean {summary['speedup_geomean']}x, "
                f"min {summary['speedup_min']}x"
            )
            if summary["speedup_min"] < 10.0 and args.samples >= 1000:
                print("WARNING: batched path is below the 10x acceptance floor")
                exit_code = 1
        regressed |= _history_step(args, "mc", report)

    if args.suite in ("sim", "all"):
        started = time.time()
        report = _report_header(
            "simulation_campaign",
            "Fig.4/Tables II-III benches: sequential pipelines vs the "
            "SimulationCampaign engine",
            started,
            args.sim_workers,
        )
        report.update(run_sim_bench(tuple(args.sim_sizes), args.sim_workers))
        report["harness_wall_s"] = round(time.time() - started, 3)

        args.sim_output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.sim_output}")
        speedup = report["summary"]["speedup_at_workers"]
        print(
            f"campaign speedup at {args.sim_workers} workers: {speedup}x "
            f"(parity max rel diff {report['parity']['max_rel_diff']:.2e})"
        )
        if report["parity"]["max_rel_diff"] > 1e-12:
            print("WARNING: campaign rows diverge from the sequential pipelines")
            exit_code = 1
        full_doe = tuple(args.sim_sizes) == (16, 64, 256, 1024)
        if full_doe and args.sim_workers >= 4 and speedup < 3.0:
            print("WARNING: campaign is below the 3x acceptance floor")
            exit_code = 1
        regressed |= _history_step(args, "sim", report)

    if args.suite in ("ops", "all"):
        started = time.time()
        report = _report_header(
            "operation_suite",
            "Operation-suite benches: write + hold/read SNM campaign "
            "vs per-operation scalar pipelines",
            started,
            args.ops_workers,
        )
        report.update(run_ops_bench(tuple(args.ops_sizes), args.ops_workers))
        report["harness_wall_s"] = round(time.time() - started, 3)

        args.ops_output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.ops_output}")
        speedup = report["summary"]["speedup_at_workers"]
        solver_speedup = report["summary"]["solver_speedup"]
        print(
            f"ops campaign speedup at {args.ops_workers} workers: {speedup}x "
            f"(batched solver tier {solver_speedup}x vs scalar tier, "
            f"parity max rel diff {report['parity']['max_rel_diff']:.2e})"
        )
        if report["parity"]["max_rel_diff"] > 1e-12:
            print("WARNING: operation campaign rows diverge from the scalar pipelines")
            exit_code = 1
        if solver_speedup < 5.0:
            print("WARNING: batched solver tier is below the 5x acceptance floor")
            exit_code = 1
        regressed |= _history_step(args, "ops", report)

    if args.suite in ("service", "all"):
        started = time.time()
        report = _report_header(
            "experiment_service",
            "HTTP experiment server benches: cold vs warm-cache "
            "submission latency and concurrent-client throughput",
            started,
            args.service_clients,
        )
        report.update(
            run_service_bench(args.service_clients, args.service_requests)
        )
        report["harness_wall_s"] = round(time.time() - started, 3)

        args.service_output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.service_output}")
        speedup = report["speedup_warm_vs_cold"]
        print(
            f"warm-cache speedup: {speedup}x, throughput "
            f"{report['throughput']['submissions_per_s']} submissions/s"
        )
        if speedup < 10.0:
            print("WARNING: warm-cache path is below the 10x acceptance floor")
            exit_code = 1
        regressed |= _history_step(args, "service", report)

    if args.suite in ("faults", "all"):
        started = time.time()
        report = _report_header(
            "fault_tolerance",
            "Chaos benches: campaign failure policies under injected "
            "solver faults and durable-journal replay throughput",
            started,
        )
        report.update(run_faults_bench(args.journal_entries))
        report["harness_wall_s"] = round(time.time() - started, 3)

        args.faults_output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.faults_output}")
        print(
            f"retry overhead: {report['retry']['overhead_x']}x, journal replay "
            f"{report['journal']['replay_entries_per_s']} entries/s"
        )
        if not report["retry"]["bit_identical"]:
            print("WARNING: retry policy did not reproduce fault-free records")
            exit_code = 1
        if not report["skip"]["isolation_exact"]:
            print("WARNING: skip policy failed a different set than the fault plan predicts")
            exit_code = 1
        if not report["journal"]["consistent"]:
            print("WARNING: journal replay returned an inconsistent outstanding set")
            exit_code = 1
        regressed |= _history_step(args, "faults", report)

    if args.suite in ("obs", "all"):
        started = time.time()
        report = _report_header(
            "observability_overhead",
            "Observability benches: traced/profiled vs untraced operation "
            "campaign — record parity, tracing and profiler overhead, span "
            "attribution",
            started,
        )
        report.update(
            run_obs_bench(
                tuple(args.obs_sizes), args.obs_reps, args.obs_trace,
                args.obs_profile,
            )
        )
        report["harness_wall_s"] = round(time.time() - started, 3)

        args.obs_output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.obs_output}")
        print(
            f"tracing overhead: {report['overhead_percent']:+.2f}% "
            f"(bit identical: {report['parity']['bit_identical']}, "
            f"attribution {report['attribution']['coverage_percent']}%)"
        )
        if not report["parity"]["bit_identical"]:
            print("WARNING: traced records diverge from the untraced run")
            exit_code = 1
        if report["attribution"]["coverage_percent"] < 95.0:
            print("WARNING: named spans attribute less than 95% of the campaign wall")
            exit_code = 1
        full_doe = tuple(args.obs_sizes) == (16, 64, 256, 1024)
        if full_doe and report["overhead_percent"] > 2.0:
            # Gated at the full DOE only: on a tiny smoke DOE the wall is
            # milliseconds and scheduler noise alone can exceed 2%.
            print("WARNING: tracing overhead is above the 2% acceptance ceiling")
            exit_code = 1
        if full_doe and report["profiler_overhead_percent"] > 5.0:
            print("WARNING: sampling-profiler overhead is above the 5% ceiling")
            exit_code = 1
        regressed |= _history_step(args, "obs", report)

    if args.suite in ("yield_hs", "all"):
        started = time.time()
        report = _report_header(
            "high_sigma_yield",
            "High-sigma yield benches: importance-sampling tail "
            "estimates vs brute-force Monte-Carlo at the checkable "
            "levels, with ESS and call-budget gates",
            started,
        )
        report.update(
            run_yield_hs_bench(
                proposals=args.yield_proposals,
                mc_samples=args.yield_mc_samples,
            )
        )
        report["harness_wall_s"] = round(time.time() - started, 3)

        args.yield_output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.yield_output}")
        checks = report["checks"]
        print(
            f"high-sigma sweep: {report['corners']} corners, "
            f"{report['total_simulator_calls']} simulator calls, "
            f"min ESS {checks['ess_min']:.0f} "
            f"({checks['mc_cross_checks']} MC cross-checks)"
        )
        if not checks["six_sigma_finite_ci"]:
            print("WARNING: a 6-sigma estimate lacks a finite two-sided CI")
            exit_code = 1
        if not checks["mc_agreement"]:
            print("WARNING: a 3-sigma IS estimate disagrees with brute-force MC")
            exit_code = 1
        if not checks["ess_above_floor"]:
            print("WARNING: effective sample size collapsed below the floor")
            exit_code = 1
        if not checks["within_call_budget"]:
            print("WARNING: the sweep exceeded the simulator-call budget")
            exit_code = 1
        regressed |= _history_step(args, "yield_hs", report)

    if regressed:
        print(
            "PERF REGRESSION: at least one gated metric fell outside its "
            "history tolerance band"
        )
        return bench_history.REGRESSION_EXIT_CODE
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
