#!/usr/bin/env python
"""Perf-regression harness for the Monte-Carlo tdp benches (Fig. 5 / Table IV).

Times every Monte-Carlo study point of the paper DOE through both the
batched (vectorised) pipeline and the scalar per-sample oracle, checks
that the two agree element-wise, and writes the numbers to
``BENCH_mc.json`` so future PRs have a trajectory to compare against.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py              # full run (1000 samples)
    PYTHONPATH=src python benchmarks/run_benchmarks.py --samples 50 # CI smoke bench

The JSON schema (see README.md, "performance notes"):

* ``points`` — one entry per study point with ``batch``/``scalar``
  sub-objects (``wall_s``, ``samples_per_s``), the batch/scalar
  ``speedup``, the σ(tdp) of both paths and the max |Δ| between the two
  sample sets (the parity check);
* ``summary`` — total wall time of each path, the geometric-mean and
  minimum per-point speedup, and the samples/sec of the batched path.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.montecarlo import MonteCarloTdpStudy  # noqa: E402
from repro.technology.node import n10  # noqa: E402
from repro.variability.doe import paper_doe  # noqa: E402


def time_record(study: MonteCarloTdpStudy, point) -> tuple[float, object]:
    start = time.perf_counter()
    record = study.tdp_record(point)
    return time.perf_counter() - start, record


def run_benches(n_samples: int, n_wordlines: int, skip_scalar: bool) -> dict:
    node = n10()
    doe = paper_doe()
    batch_study = MonteCarloTdpStudy(node, doe=doe, n_samples=n_samples, batch=True)
    scalar_study = MonteCarloTdpStudy(
        node, doe=doe, model=batch_study.model, n_samples=n_samples, batch=False
    )
    points = doe.monte_carlo_points(n_wordlines=n_wordlines)

    entries = []
    total_batch = 0.0
    total_scalar = 0.0
    speedups = []
    for point in points:
        # Warm the layout cache so neither path pays generation cost.
        batch_study._layout_for(point.n_wordlines)
        scalar_study._layout_cache = batch_study._layout_cache
        batch_wall, batch_record = time_record(batch_study, point)
        entry = {
            "label": point.label,
            "option": point.option_name,
            "overlay_three_sigma_nm": point.overlay_three_sigma_nm,
            "n_wordlines": point.n_wordlines,
            "n_samples": n_samples,
            "batch": {
                "wall_s": round(batch_wall, 6),
                "samples_per_s": round(n_samples / batch_wall, 1),
            },
            "sigma_percent": round(batch_record.summary.std, 6),
        }
        total_batch += batch_wall
        if not skip_scalar:
            scalar_wall, scalar_record = time_record(scalar_study, point)
            diff = np.max(
                np.abs(
                    np.asarray(batch_record.tdp_percent_samples)
                    - np.asarray(scalar_record.tdp_percent_samples)
                )
            )
            speedup = scalar_wall / batch_wall
            entry["scalar"] = {
                "wall_s": round(scalar_wall, 6),
                "samples_per_s": round(n_samples / scalar_wall, 1),
            }
            entry["speedup"] = round(speedup, 2)
            entry["parity"] = {
                "max_abs_diff_percent": float(diff),
                "sigma_percent_scalar": round(scalar_record.summary.std, 6),
                "histograms_identical": batch_record.histogram.counts
                == scalar_record.histogram.counts,
            }
            total_scalar += scalar_wall
            speedups.append(speedup)
        entries.append(entry)
        line = f"{point.label:28s} batch {batch_wall*1e3:8.2f} ms"
        if not skip_scalar:
            line += f"  scalar {entry['scalar']['wall_s']*1e3:9.2f} ms  {entry['speedup']:7.1f}x"
        print(line)

    summary = {
        "n_points": len(points),
        "n_samples": n_samples,
        "batch_total_wall_s": round(total_batch, 6),
        "batch_samples_per_s": round(len(points) * n_samples / total_batch, 1),
    }
    if speedups:
        summary["scalar_total_wall_s"] = round(total_scalar, 6)
        summary["speedup_geomean"] = round(
            math.exp(sum(math.log(s) for s in speedups) / len(speedups)), 2
        )
        summary["speedup_min"] = round(min(speedups), 2)
    return {"points": entries, "summary": summary}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--samples", type=int, default=1000,
                        help="Monte-Carlo samples per study point (default 1000)")
    parser.add_argument("--wordlines", type=int, default=64,
                        help="array size of the MC study (default 64, as in the paper)")
    parser.add_argument("--skip-scalar", action="store_true",
                        help="time only the batched path (quick trend check)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_mc.json",
                        help="where to write the JSON report")
    args = parser.parse_args()

    started = time.time()
    report = {
        "bench": "monte_carlo_tdp",
        "description": "Fig.5/Table IV Monte-Carlo benches: batched vs scalar pipeline",
        "timestamp_unix": int(started),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    report.update(run_benches(args.samples, args.wordlines, args.skip_scalar))
    report["harness_wall_s"] = round(time.time() - started, 3)

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    summary = report["summary"]
    print(f"batched throughput: {summary['batch_samples_per_s']:.0f} samples/s")
    if "speedup_geomean" in summary:
        print(
            f"speedup vs scalar: geomean {summary['speedup_geomean']}x, "
            f"min {summary['speedup_min']}x"
        )
        if summary["speedup_min"] < 10.0 and args.samples >= 1000:
            print("WARNING: batched path is below the 10x acceptance floor")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
