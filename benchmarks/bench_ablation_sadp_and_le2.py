"""Ablation — SADP line assignment and the LELE (double litho-etch) option.

Two design choices the paper fixes without exploring:

* **Spacer-defined versus mandrel-defined bit lines.**  The paper's layout
  draws the bit lines as the spacer-defined (non-mandrel) lines.  Swapping
  the assignment makes the bit-line *width* track the mandrel CD directly
  and decouples it from the spacer, changing which parasitic (R or C)
  absorbs the variability.
* **LELE instead of LELELE.**  At the study's metal1 pitch a double
  litho-etch decomposition is geometrically possible (alternating masks);
  it keeps one fewer overlay budget in play, so its worst case sits between
  EUV and LE3.

The bench quantifies both.
"""

import pytest

from repro.patterning import le2, le3, sadp
from repro.patterning.sampler import enumerate_worst_case_corners
from repro.reporting import format_csv


def worst_delta_c(lpe, pattern, option, assumptions, net):
    corners = enumerate_worst_case_corners(option, assumptions)
    best = None
    for corner in corners:
        variation = lpe.rc_variation(pattern, option, corner.as_dict(), net)
        if best is None or variation.cvar > best.cvar:
            best = variation
    return best


def test_ablation_sadp_line_assignment_and_lele(benchmark, node, lpe, worst_case_study):
    layout = worst_case_study.reference_layout
    pattern = layout.metal1_pattern
    bl_net, _ = layout.central_pair_nets()

    def run():
        spacer_defined = worst_delta_c(lpe, pattern, sadp(True), node.variations, bl_net)
        mandrel_defined = worst_delta_c(lpe, pattern, sadp(False), node.variations, bl_net)
        lele = worst_delta_c(lpe, pattern, le2(), node.variations, bl_net)
        lelele = worst_delta_c(lpe, pattern, le3(), node.variations, bl_net)
        return {
            "sadp_spacer_defined_dC_percent": spacer_defined.delta_c_percent,
            "sadp_spacer_defined_dR_percent": spacer_defined.delta_r_percent,
            "sadp_mandrel_defined_dC_percent": mandrel_defined.delta_c_percent,
            "sadp_mandrel_defined_dR_percent": mandrel_defined.delta_r_percent,
            "lele_dC_percent": lele.delta_c_percent,
            "lelele_dC_percent": lelele.delta_c_percent,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_csv(list(result.keys()), [[f"{v:.3f}" for v in result.values()]]))

    # Mandrel-defined bit lines shrink the resistance swing (the width now
    # tracks a single CD budget instead of core + two spacers).
    assert abs(result["sadp_mandrel_defined_dR_percent"]) < abs(
        result["sadp_spacer_defined_dR_percent"]
    )
    # Either flavour of SADP stays far below LE3 on the capacitance blow-up.
    assert result["sadp_spacer_defined_dC_percent"] < 0.4 * result["lelele_dC_percent"]
    assert result["sadp_mandrel_defined_dC_percent"] < 0.4 * result["lelele_dC_percent"]

    # LELE sits between EUV-like behaviour and LELELE: only one overlay
    # budget hits the victim, so its worst case is clearly milder than LE3's.
    assert result["lele_dC_percent"] < result["lelele_dC_percent"]
    assert result["lele_dC_percent"] > 5.0

    benchmark.extra_info.update({k: round(v, 3) for k, v in result.items()})
