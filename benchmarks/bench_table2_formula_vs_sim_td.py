"""Table II — analytical formula versus simulation: nominal read time.

Paper values (seconds):

=========== ============ ============
Array size  Simulation   Formula
=========== ============ ============
10x16       5.59e-12     2.09e-12
10x64       30.07e-12    7.56e-12
10x256      134.62e-12   30.87e-12
10x1024     344.85e-12   144.02e-12
=========== ============ ============

The paper's observation — reproduced here — is that the lumped-RC formula
*underestimates or deviates from* the simulated td (distributed bit line,
vias, VSS return path and leakage are not in the formula) while preserving
the ordering and the overall growth with array size; it is the penalty
ratio, not the absolute delay, that the formula is meant to predict.
"""

import pytest

from repro.reporting import format_table2

PAPER_SIMULATION_S = {16: 5.59e-12, 64: 30.07e-12, 256: 134.62e-12, 1024: 344.85e-12}
PAPER_FORMULA_S = {16: 2.09e-12, 64: 7.56e-12, 256: 30.87e-12, 1024: 144.02e-12}


def test_table2_formula_vs_simulation_td(benchmark, validation):
    rows = benchmark.pedantic(validation.table2, rounds=1, iterations=1)
    print("\n" + format_table2(rows))

    assert [row.n_wordlines for row in rows] == [16, 64, 256, 1024]

    for row in rows:
        # Same order of magnitude (the paper's gap is up to ~4x).
        assert 0.2 < row.ratio < 5.0
        # Single-digit ps for the smallest array, sub-ns for the largest —
        # the same absolute regime as the paper.
        if row.n_wordlines == 16:
            assert 1e-12 < row.simulation_td_s < 2e-11
        if row.n_wordlines == 1024:
            assert 1e-10 < row.simulation_td_s < 2e-9

    # Both methods order the array sizes identically and grow super-linearly.
    simulated = [row.simulation_td_s for row in rows]
    formula = [row.formula_td_s for row in rows]
    assert all(later > earlier for earlier, later in zip(simulated, simulated[1:]))
    assert all(later > earlier for earlier, later in zip(formula, formula[1:]))
    assert simulated[-1] / simulated[0] > 20.0
    assert formula[-1] / formula[0] > 20.0

    benchmark.extra_info["reproduced"] = {
        row.array_label: {
            "simulation_s": float(f"{row.simulation_td_s:.3e}"),
            "formula_s": float(f"{row.formula_td_s:.3e}"),
        }
        for row in rows
    }
    benchmark.extra_info["paper"] = {
        f"10x{size}": {"simulation_s": PAPER_SIMULATION_S[size], "formula_s": PAPER_FORMULA_S[size]}
        for size in (16, 64, 256, 1024)
    }
