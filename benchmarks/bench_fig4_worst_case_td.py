"""Fig. 4 — worst-case wire-variability impact on the read time.

Paper values (simulation, 8 nm 3σ OL): the LE3 worst case costs ~17-21 %
read time across the array sizes, SADP and EUV stay below ~3 %, and the
EUV penalty even turns slightly negative at 1024 word lines (the lower
wire resistance of the wider printed lines outweighs the capacitance
increase on long bit lines).

The bench runs the full transistor-level read simulation at every array
size of the DOE, for the nominal layout and for each option's worst
corner, and checks that shape.
"""

import pytest

from repro.reporting import figure4_csv, format_figure4


def test_fig4_worst_case_td(benchmark, worst_case_study, simulator):
    rows = benchmark.pedantic(
        worst_case_study.figure4, kwargs={"simulator": simulator}, rounds=1, iterations=1
    )
    print("\n" + format_figure4(rows))
    print("\n" + figure4_csv(rows))

    assert [row.n_wordlines for row in rows] == [16, 64, 256, 1024]

    # Nominal read time grows monotonically (and super-linearly) with size.
    nominal = [row.nominal_td_ps for row in rows]
    assert all(later > earlier for earlier, later in zip(nominal, nominal[1:]))
    assert nominal[-1] > 20.0 * nominal[0]

    for row in rows:
        # LE3 worst case ~ 20%: dominant and an order of magnitude above the others.
        assert 10.0 < row.tdp_percent("LELELE") < 40.0
        assert row.tdp_percent("LELELE") > 2.0 * abs(row.tdp_percent("SADP"))
        assert row.tdp_percent("LELELE") > 2.0 * abs(row.tdp_percent("EUV"))
        # SADP / EUV stay small at every size.
        assert abs(row.tdp_percent("SADP")) < 12.0
        assert abs(row.tdp_percent("EUV")) < 12.0

    # The non-monotonic trends the paper highlights: the LE3 penalty stops
    # growing for the longest array, and the EUV penalty decreases with
    # array size (negative at 1024 in the paper).
    le3 = [row.tdp_percent("LELELE") for row in rows]
    euv = [row.tdp_percent("EUV") for row in rows]
    assert le3[-1] < max(le3)
    assert euv[-1] < euv[0]

    benchmark.extra_info["nominal_td_ps"] = {row.array_label: round(row.nominal_td_ps, 2) for row in rows}
    benchmark.extra_info["tdp_percent"] = {
        row.array_label: {name: round(value, 2) for name, value in row.tdp_percent_by_option.items()}
        for row in rows
    }
    benchmark.extra_info["paper_tdp_percent"] = {
        "10x16": {"LELELE": 17.33, "SADP": 2.07, "EUV": 2.58},
        "10x64": {"LELELE": 20.01, "SADP": 1.49, "EUV": 2.42},
        "10x256": {"LELELE": 20.60, "SADP": 1.65, "EUV": 1.42},
        "10x1024": {"LELELE": 18.29, "SADP": 2.27, "EUV": -1.02},
    }
