"""Ablation — the precharge scaling law (the Cpre(n) term of eq. 4).

The paper scales the precharge driving strength with the array size
(Section II.C) and carries the resulting junction load as ``Cpre(n)`` in
the analytical formula.  This ablation sweeps the scaling law (cells per
precharge fin) and reports its effect on the nominal read time and on the
worst-case LE3 penalty: a heavier precharge adds a variation-independent
capacitance, so it *dilutes* the relative penalty while slowing the
absolute read down.
"""

import pytest

from repro.core.analytical import AnalyticalDelayModel
from repro.reporting import format_csv
from repro.sram.precharge import precharge_capacitance_f


def test_ablation_precharge_scaling(benchmark, analytical_model, node, worst_case_study):
    corner = worst_case_study.find_worst_corner("LELELE")
    rvar = corner.bitline_variation.rvar
    cvar = corner.bitline_variation.cvar
    n = 256
    scalings = (4, 8, 16, 64)

    def run():
        rows = []
        for cells_per_fin in scalings:
            model = analytical_model.with_parameters(
                cpre_fn=lambda size, cpf=cells_per_fin: precharge_capacitance_f(
                    size, device=node.sram_devices.pull_up, cells_per_fin=cpf
                )
            )
            rows.append(
                {
                    "cells_per_precharge_fin": cells_per_fin,
                    "cpre_fF": model.cpre_fn(n) * 1e15,
                    "nominal_td_ps": model.td_nominal_s(n) * 1e12,
                    "le3_worst_tdp_percent": model.tdp_percent(n, rvar, cvar),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_csv(
        list(rows[0].keys()),
        [[f"{value:.4f}" if isinstance(value, float) else value for value in row.values()] for row in rows],
    ))

    # Fewer cells per fin = bigger precharge = more Cpre = slower reads.
    cpre_values = [row["cpre_fF"] for row in rows]
    td_values = [row["nominal_td_ps"] for row in rows]
    assert all(earlier >= later for earlier, later in zip(cpre_values, cpre_values[1:]))
    assert all(earlier >= later for earlier, later in zip(td_values, td_values[1:]))

    # ...but the *relative* penalty moves the other way: the heavy precharge
    # dilutes the wire-capacitance variation.
    penalties = [row["le3_worst_tdp_percent"] for row in rows]
    assert all(earlier <= later for earlier, later in zip(penalties, penalties[1:]))
    assert penalties[0] < penalties[-1]
    # The effect is second order: the penalty stays in the LE3 ~20% regime.
    assert all(10.0 < value < 40.0 for value in penalties)

    benchmark.extra_info["rows"] = rows
