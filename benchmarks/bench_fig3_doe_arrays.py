"""Fig. 3 — the design-of-experiments SRAM arrays.

Fig. 3 is the schematic overview of the simulated arrays: 16, 64, 256 and
1024 word lines at a fixed word length of 10 bit-line pairs, with the
bit-line length proportional to the word-line count.  The bench
regenerates all four array layouts, exports their summary data and checks
the structural invariants the rest of the study relies on (track counts,
bit-line length scaling, edge-effect-free central pair).
"""

import pytest

from repro.layout.array import PAPER_ARRAY_SIZES, PAPER_BITLINE_PAIRS, paper_doe_layouts
from repro.reporting import figure3_csv


def test_fig3_doe_arrays(benchmark, node):
    layouts = benchmark.pedantic(
        paper_doe_layouts, kwargs={"node": node}, rounds=1, iterations=1
    )
    summaries = [layouts[f"{PAPER_BITLINE_PAIRS}x{size}"].summary() for size in PAPER_ARRAY_SIZES]
    print("\n" + figure3_csv(summaries))

    assert set(layouts) == {f"10x{size}" for size in PAPER_ARRAY_SIZES}
    base = layouts["10x16"]
    for size in PAPER_ARRAY_SIZES:
        layout = layouts[f"10x{size}"]
        # The bit-line length is proportional to the number of word lines.
        assert layout.bitline_length_nm == pytest.approx(
            base.bitline_length_nm * size / 16.0
        )
        # 4 metal1 tracks per bit-line pair, 10 pairs.
        assert len(layout.metal1_pattern) == 4 * PAPER_BITLINE_PAIRS
        # The central pair is surrounded by at least one full pair on each
        # side, so extraction sees no array-edge effects.
        bl_net, blb_net = layout.central_pair_nets()
        bl_index = layout.metal1_pattern.index_of(bl_net)
        assert 4 <= bl_index <= len(layout.metal1_pattern) - 5
        assert blb_net in layout.metal1_pattern.nets

    benchmark.extra_info["bitline_length_um"] = {
        label: round(layout.bitline_length_nm / 1000.0, 2) for label, layout in layouts.items()
    }
