"""Ablation — sensitivity of the EUV result to its CD budget.

The paper applies the same 3 nm 3σ CD budget to EUV as to the litho-etch
masks while noting this "may be pessimistic for EUV".  This ablation sweeps
the EUV CD budget from 1 nm to 4 nm and reports the worst-case ΔCbl and
the Monte-Carlo tdp σ, confirming the paper's caveat: with a realistic
(tighter) EUV budget, single-patterning EUV beats SADP on variability as
well, whereas at 3 nm the two are comparable.
"""

import dataclasses

import pytest

from repro.core.montecarlo import MonteCarloTdpStudy
from repro.core.worst_case import WorstCaseStudy
from repro.reporting import format_csv
from repro.technology.corners import EUVAssumptions, GaussianSpec
from repro.variability.doe import DOEPoint, StudyDOE


def node_with_euv_budget(node, budget_nm):
    variations = dataclasses.replace(
        node.variations, euv=EUVAssumptions(cd=GaussianSpec(budget_nm))
    )
    return node.with_variations(variations)


def test_ablation_euv_cd_budget(benchmark, node, analytical_model):
    budgets = (1.0, 2.0, 3.0, 4.0)
    doe = StudyDOE(array_sizes=(64,))

    def run():
        rows = []
        for budget in budgets:
            scoped_node = node_with_euv_budget(node, budget)
            worst = WorstCaseStudy(scoped_node, doe=doe).find_worst_corner("EUV")
            mc = MonteCarloTdpStudy(
                scoped_node, doe=doe, model=analytical_model, n_samples=300, seed=31
            )
            record = mc.tdp_record(DOEPoint(n_wordlines=64, option_name="EUV"))
            rows.append(
                {
                    "euv_cd_3sigma_nm": budget,
                    "worst_delta_cbl_percent": worst.delta_cbl_percent,
                    "tdp_sigma_percent": record.sigma_percent,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_csv(
        list(rows[0].keys()),
        [[f"{value:.3f}" for value in row.values()] for row in rows],
    ))

    # Both the worst case and the statistical spread grow monotonically with
    # the CD budget, and roughly linearly (a 4x budget gives ~4x the sigma).
    worst_values = [row["worst_delta_cbl_percent"] for row in rows]
    sigma_values = [row["tdp_sigma_percent"] for row in rows]
    assert all(later > earlier for earlier, later in zip(worst_values, worst_values[1:]))
    assert all(later > earlier for earlier, later in zip(sigma_values, sigma_values[1:]))
    assert sigma_values[-1] > 2.5 * sigma_values[0]

    benchmark.extra_info["rows"] = rows
