"""Ablation — where does the LE3 capacitance blow-up come from?

DESIGN.md calls out the coupling-versus-ground decomposition as the design
choice that makes or breaks the study: the worst-case LE3 corner squeezes
the spaces around the bit line, so the damage should be carried almost
entirely by the *lateral coupling* term, while the ground (area + fringe)
term only grows with the modest CD increase.  If that split were wrong —
for example if fringe-to-ground dominated — the whole patterning
comparison would collapse, because overlay errors do not change the
wire-to-plane distances at all.

The bench extracts the nominal and worst-case LE3/SADP/EUV patterns and
reports the per-component capacitance changes.
"""

import pytest

from repro.patterning import create_option
from repro.reporting import format_csv


def component_changes(lpe, pattern, option_name, parameters, net):
    option = create_option(option_name)
    extraction = lpe.extract_with_patterning(pattern, option, parameters)
    nominal = extraction.nominal_extraction[net].capacitance_per_nm
    printed = extraction.printed_extraction[net].capacitance_per_nm
    return {
        "option": option_name,
        "coupling_change_percent": 100.0 * (printed.coupling_total - nominal.coupling_total) / nominal.total,
        "ground_change_percent": 100.0 * (printed.ground_total - nominal.ground_total) / nominal.total,
        "total_change_percent": 100.0 * (printed.total - nominal.total) / nominal.total,
        "nominal_coupling_fraction": nominal.coupling_fraction(),
    }


def test_ablation_coupling_versus_ground_decomposition(benchmark, lpe, worst_case_study, node):
    layout = worst_case_study.reference_layout
    bl_net, _ = layout.central_pair_nets()

    def run():
        rows = []
        for option_name in ("LELELE", "SADP", "EUV"):
            corner = worst_case_study.find_worst_corner(option_name)
            rows.append(
                component_changes(
                    lpe, layout.metal1_pattern, option_name, corner.parameters, bl_net
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_csv(
        list(rows[0].keys()),
        [[f"{value:.3f}" if isinstance(value, float) else value for value in row.values()] for row in rows],
    ))

    by_name = {row["option"]: row for row in rows}

    # The LE3 worst case is a coupling story: the lateral term contributes
    # the overwhelming majority of the total capacitance increase.
    le3 = by_name["LELELE"]
    assert le3["coupling_change_percent"] > 4.0 * le3["ground_change_percent"]
    assert le3["coupling_change_percent"] > 0.8 * le3["total_change_percent"]

    # EUV (uniform CD) splits the damage between ground and coupling, and
    # the coupling part alone is far below LE3's.
    euv = by_name["EUV"]
    assert euv["coupling_change_percent"] < 0.3 * le3["coupling_change_percent"]

    # SADP's ground term grows (wider spacer-defined line) while its
    # coupling term barely moves (self-aligned gaps).
    sadp = by_name["SADP"]
    assert abs(sadp["coupling_change_percent"]) < 0.2 * le3["coupling_change_percent"]

    # Sanity: the nominal coupling fraction is substantial but not total.
    assert 0.3 < le3["nominal_coupling_fraction"] < 0.8

    benchmark.extra_info["rows"] = rows
