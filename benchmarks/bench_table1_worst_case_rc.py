"""Table I — worst-case bit-line RC variability per patterning option.

Paper values (imec N10, 8 nm 3σ OL):

======== ============ ============
Option   ΔCbl          ΔRbl
======== ============ ============
LELELE   +61.56 %     −10.36 %
SADP      +4.01 %     −18.19 %
EUV       +6.65 %     −10.36 %
======== ============ ============

The bench regenerates the table by exhaustively searching every ±3σ corner
of each option and reports the reproduced numbers.  The asserted *shape*:
LE3's capacitance blow-up dwarfs the other options, SADP stays below EUV
on ΔCbl but shows the largest resistance swing, and every worst corner
lowers the bit-line resistance (wider printed lines).
"""

import pytest

from repro.reporting import format_table1

PAPER_DELTA_CBL = {"LELELE": 61.56, "SADP": 4.01, "EUV": 6.65}
PAPER_DELTA_RBL = {"LELELE": -10.36, "SADP": -18.19, "EUV": -10.36}


def test_table1_worst_case_rc(benchmark, worst_case_study):
    rows = benchmark.pedantic(worst_case_study.table1, rounds=1, iterations=1)
    print("\n" + format_table1(rows))

    by_name = {row.option_name: row for row in rows}
    assert set(by_name) == {"LELELE", "SADP", "EUV"}

    # Shape checks against the paper.
    assert by_name["LELELE"].delta_cbl_percent > 30.0
    assert by_name["LELELE"].delta_cbl_percent > 3.0 * by_name["EUV"].delta_cbl_percent
    assert by_name["LELELE"].delta_cbl_percent > 3.0 * by_name["SADP"].delta_cbl_percent
    assert by_name["SADP"].delta_cbl_percent < by_name["EUV"].delta_cbl_percent
    for row in rows:
        assert row.delta_rbl_percent < 0.0
    assert by_name["SADP"].delta_rbl_percent < by_name["LELELE"].delta_rbl_percent

    # SADP's anti-correlated VSS-rail resistance (the Section III.A caveat).
    assert by_name["SADP"].delta_rvss_percent > 0.0

    benchmark.extra_info["reproduced_delta_cbl_percent"] = {
        name: round(row.delta_cbl_percent, 2) for name, row in by_name.items()
    }
    benchmark.extra_info["reproduced_delta_rbl_percent"] = {
        name: round(row.delta_rbl_percent, 2) for name, row in by_name.items()
    }
    benchmark.extra_info["paper_delta_cbl_percent"] = PAPER_DELTA_CBL
    benchmark.extra_info["paper_delta_rbl_percent"] = PAPER_DELTA_RBL
