"""Ablation — LE3 mask-alignment strategy (B,C aligned to A versus chained).

The paper assumes masks B and C are both aligned to mask A, making their
overlay errors independent.  The alternative scheme — chaining the
alignment (B to A, C to B) — accumulates both overlay draws on the last
mask, so individual tracks can be displaced further; but it also
*correlates* the displacements of the two masks, and for a victim line
whose neighbours sit on B and C a common-mode displacement partially
cancels (one gap closes while the other opens).

The ablation quantifies both effects on the central bit line: the chained
scheme makes the worst ±3σ corner dramatically worse (the last mask can be
displaced by the *sum* of the two overlay budgets, collapsing one gap
almost completely), while the Monte-Carlo spread of ΔCbl stays in the same
regime (the common-mode component partially cancels on average).  The
paper's aligned-to-A assumption is therefore the conservative-but-sane
choice: it bounds the tail without changing the statistical story.
"""

import numpy as np
import pytest

from repro.patterning import le3
from repro.patterning.sampler import ParameterSampler
from repro.reporting import format_csv


def test_ablation_le3_alignment_strategy(benchmark, node, lpe, worst_case_study):
    layout = worst_case_study.reference_layout
    pattern = layout.metal1_pattern
    bl_net, _ = layout.central_pair_nets()
    option = le3()
    nominal_c = lpe.extract_pattern(pattern)[bl_net].capacitance_total_f

    def delta_c_percent(parameters, aligned):
        printed = option.apply(pattern, parameters, aligned_to_first=aligned)
        printed_c = lpe.extract_pattern(printed.printed)[bl_net].capacitance_total_f
        return 100.0 * (printed_c - nominal_c) / nominal_c

    def worst_corner_percent(aligned):
        from repro.patterning.sampler import enumerate_worst_case_corners

        best = None
        for corner in enumerate_worst_case_corners(option, node.variations):
            value = delta_c_percent(corner.as_dict(), aligned)
            best = value if best is None else max(best, value)
        return best

    def run():
        sampler = ParameterSampler(option, node.variations, seed=77)
        samples = sampler.draw_many(150)
        aligned_samples = [delta_c_percent(sample.values, True) for sample in samples]
        chained_samples = [delta_c_percent(sample.values, False) for sample in samples]
        return {
            "worst_corner_aligned_percent": worst_corner_percent(True),
            "worst_corner_chained_percent": worst_corner_percent(False),
            "mc_sigma_aligned_percent": float(np.std(aligned_samples, ddof=1)),
            "mc_sigma_chained_percent": float(np.std(chained_samples, ddof=1)),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_csv(list(result.keys()), [[f"{v:.3f}" for v in result.values()]]))

    # Both schemes have a catastrophic ±3σ corner, but chaining the
    # alignment makes the tail far worse: the last mask can accumulate both
    # overlay budgets and nearly close one gap.
    assert result["worst_corner_aligned_percent"] > 30.0
    assert result["worst_corner_chained_percent"] > 1.5 * result["worst_corner_aligned_percent"]

    # Statistically the two schemes stay within the same regime (the
    # correlation introduced by chaining shifts sigma by tens of percent,
    # not by an order of magnitude) — overlay budget, not alignment
    # bookkeeping, is the decisive knob.
    ratio = result["mc_sigma_chained_percent"] / result["mc_sigma_aligned_percent"]
    assert 0.5 < ratio < 2.0

    benchmark.extra_info.update({k: round(v, 3) for k, v in result.items()})
