"""Ablation — numerical settings of the read-path simulation.

Two knobs of the simulated td that are modelling choices rather than
physics, and therefore need to be shown not to drive the conclusions:

* **Integration method** — backward Euler (default, numerically damped)
  versus trapezoidal (second order).  The measured td must agree to within
  a few percent, otherwise the "simulation" column of Tables II/III would
  be an artefact of the integrator.
* **Bit-line ladder resolution** — 16 versus 64 versus 256 RC sections for
  the 256-cell column.  The distributed line must be converged at the
  default resolution.
* **VSS strap interval** — the return-path modelling choice that carries
  the SADP/EUV long-array trends; the *nominal* td must be only weakly
  sensitive to it (the trends come from the patterning-induced resistance
  change, not from the strap choice itself).
"""

import pytest

from repro.circuit.transient import TransientOptions
from repro.reporting import format_csv
from repro.sram.read_path import ReadPathSimulator


def test_ablation_simulator_settings(benchmark, node):
    n = 256

    def run():
        baseline = ReadPathSimulator(node)
        trapezoidal = ReadPathSimulator(
            node, transient_options=TransientOptions(method="trapezoidal")
        )
        coarse = ReadPathSimulator(node, max_segments=16)
        fine = ReadPathSimulator(node, max_segments=256)
        dense_straps = ReadPathSimulator(node, vss_strap_interval_cells=64)
        sparse_straps = ReadPathSimulator(node, vss_strap_interval_cells=1024)
        return {
            "backward_euler_td_ps": baseline.measure_nominal(n).td_ps,
            "trapezoidal_td_ps": trapezoidal.measure_nominal(n).td_ps,
            "ladder16_td_ps": coarse.measure_nominal(n).td_ps,
            "ladder256_td_ps": fine.measure_nominal(n).td_ps,
            "strap64_td_ps": dense_straps.measure_nominal(n).td_ps,
            "strap1024_td_ps": sparse_straps.measure_nominal(n).td_ps,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_csv(list(result.keys()), [[f"{v:.3f}" for v in result.values()]]))

    base = result["backward_euler_td_ps"]
    # Integration method: < 5% effect.
    assert result["trapezoidal_td_ps"] == pytest.approx(base, rel=0.05)
    # Ladder resolution: the default (64) sits between 16 and 256 and the
    # refinement from 64 to 256 sections moves td by well under 5%.
    assert result["ladder256_td_ps"] == pytest.approx(base, rel=0.05)
    assert result["ladder16_td_ps"] == pytest.approx(base, rel=0.10)
    # Strap interval: bounded influence on the nominal read time.
    assert result["strap64_td_ps"] < base <= result["strap1024_td_ps"] * 1.001
    assert result["strap1024_td_ps"] < 1.5 * result["strap64_td_ps"]

    benchmark.extra_info.update({k: round(v, 3) for k, v in result.items()})
