"""Table III — analytical formula versus simulation: worst-case tdp (%).

Paper values (%):

=========== ======= ====== ======
(simulation) LELELE  SADP   EUV
=========== ======= ====== ======
10x16        17.33   2.07   2.58
10x64        20.01   1.49   2.42
10x256       20.60   1.65   1.42
10x1024      18.29   2.27  −1.02
=========== ======= ====== ======
(formula)
10x16        18.37   1.88   2.20
10x64        20.43   1.62   2.15
10x256       20.49   0.88   1.66
10x1024      18.84  −4.00  −1.47
=========== ======= ====== ======

The paper's point: because tdp is a *ratio*, the lumped-model errors cancel
and the formula tracks the simulated penalty well for LE3 and EUV; the
known exception is SADP at long arrays, where the anti-correlated VSS-rail
resistance (simulated, but absent from the formula) pushes the simulated
tdp up while the formula drifts the other way.  The bench asserts exactly
that agreement/divergence structure.
"""

import pytest

from repro.reporting import format_table3


def test_table3_formula_vs_simulation_tdp(benchmark, validation):
    rows = benchmark.pedantic(validation.table3, rounds=1, iterations=1)
    print("\n" + format_table3(rows))

    by_key = {(row.array_label, row.method): row.tdp_percent_by_option for row in rows}
    labels = [f"10x{size}" for size in (16, 64, 256, 1024)]
    assert set(label for label, _ in by_key) == set(labels)

    # Formula tracks simulation for LE3 at every size (within a few points).
    for label in labels:
        simulated = by_key[(label, "simulation")]["LELELE"]
        formula = by_key[(label, "formula")]["LELELE"]
        assert simulated > 10.0 and formula > 10.0
        assert abs(simulated - formula) < 12.0

    # Formula tracks simulation for SADP and EUV at short arrays...
    for label in ("10x16", "10x64"):
        for option in ("SADP", "EUV"):
            gap = abs(by_key[(label, "simulation")][option] - by_key[(label, "formula")][option])
            assert gap < 5.0

    # ...but diverges for SADP at the longest array (the VSS effect).
    sadp_gap_long = abs(
        by_key[("10x1024", "simulation")]["SADP"] - by_key[("10x1024", "formula")]["SADP"]
    )
    sadp_gap_short = abs(
        by_key[("10x16", "simulation")]["SADP"] - by_key[("10x16", "formula")]["SADP"]
    )
    assert sadp_gap_long > sadp_gap_short
    assert by_key[("10x1024", "simulation")]["SADP"] > by_key[("10x1024", "formula")]["SADP"]

    benchmark.extra_info["reproduced"] = {
        f"{label}/{method}": {k: round(v, 2) for k, v in values.items()}
        for (label, method), values in by_key.items()
    }
