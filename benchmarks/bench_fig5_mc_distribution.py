"""Fig. 5 — Monte-Carlo tdp distributions (8 nm 3σ OL, n = 64).

The paper samples the process variability of each patterning option with
the parameterized LPE tool, maps every (Rvar, Cvar) sample through the
analytical formula and histograms the resulting read-time penalty.  The
headline observation: the LE3 distribution at an 8 nm overlay budget is
more than twice as wide (σ) as the SADP one.

The bench regenerates the three distributions and checks their relative
widths, their centring and their reproducibility.
"""

import pytest

from repro.reporting import figure5_ascii, figure5_csv


def test_fig5_monte_carlo_tdp_distribution(benchmark, monte_carlo_study):
    records = benchmark.pedantic(
        monte_carlo_study.figure5,
        kwargs={"n_wordlines": 64, "overlay_three_sigma_nm": 8.0},
        rounds=1,
        iterations=1,
    )
    for record in records:
        print("\n" + figure5_ascii(record))
    print("\n" + figure5_csv(records))

    by_name = {record.option_name: record for record in records}
    assert set(by_name) == {"LELELE", "SADP", "EUV"}
    for record in records:
        assert record.n_wordlines == 64
        assert len(record.tdp_percent_samples) == record.n_samples
        # The distributions are centred near the nominal (0 % penalty): the
        # worst corners of Table I are multi-sigma tail events.
        assert abs(record.summary.mean) < 3.0
        # The histogram covers every sample.
        assert sum(record.histogram.counts) == record.n_samples

    # LE3 spread dominates — the paper reports sigma(LE3, 8 nm) > 2x sigma(SADP).
    assert by_name["LELELE"].sigma_percent > 1.8 * by_name["SADP"].sigma_percent
    assert by_name["LELELE"].sigma_percent > by_name["EUV"].sigma_percent
    # SADP is the tightest distribution of the three.
    assert by_name["SADP"].sigma_percent <= by_name["EUV"].sigma_percent

    benchmark.extra_info["sigma_percent"] = {
        name: round(record.sigma_percent, 3) for name, record in by_name.items()
    }
    benchmark.extra_info["paper_sigma_percent"] = {"LELELE": 0.753, "SADP": 0.317, "EUV": 0.415}
