"""Table IV — tdp standard deviation per patterning option and overlay budget.

Paper values (10x64 array, σ of the tdp distribution):

==================== =======
Option               σ
==================== =======
LELELE, 3 nm OL      0.414
LELELE, 5 nm OL      0.454
LELELE, 7 nm OL      0.552
LELELE, 8 nm OL      0.753
SADP                 0.317
EUV                  0.415
==================== =======

Shape asserted here: the LE3 σ grows monotonically with the overlay
budget, reaches roughly twice the SADP σ at 8 nm, and drops to a value
comparable with SADP/EUV once the budget is tightened to 3 nm — the data
behind the paper's conclusion that overlay control decides whether LE3 is
usable.
"""

import pytest

from repro.reporting import format_table4

PAPER_SIGMA = {
    ("LELELE", 3.0): 0.414,
    ("LELELE", 5.0): 0.454,
    ("LELELE", 7.0): 0.552,
    ("LELELE", 8.0): 0.753,
    ("SADP", None): 0.317,
    ("EUV", None): 0.415,
}


def test_table4_tdp_sigma(benchmark, monte_carlo_study):
    rows = benchmark.pedantic(
        monte_carlo_study.table4, kwargs={"n_wordlines": 64}, rounds=1, iterations=1
    )
    print("\n" + format_table4(rows))

    assert len(rows) == 6
    by_key = {(row.option_name, row.overlay_three_sigma_nm): row.sigma_percent for row in rows}

    # Monotone growth of the LE3 sigma with the overlay budget.
    le3_sweep = [by_key[("LELELE", overlay)] for overlay in (3.0, 5.0, 7.0, 8.0)]
    assert all(later >= earlier for earlier, later in zip(le3_sweep, le3_sweep[1:]))
    assert le3_sweep[-1] > 1.5 * le3_sweep[0]

    # Headline ratio: LE3 @ 8 nm roughly double the SADP sigma.
    assert by_key[("LELELE", 8.0)] > 1.8 * by_key[("SADP", None)]

    # Tight overlay brings LE3 close to the single-exposure options.
    comparable = max(by_key[("SADP", None)], by_key[("EUV", None)])
    assert by_key[("LELELE", 3.0)] < 1.6 * comparable

    # SADP is the tightest option overall.
    assert by_key[("SADP", None)] == min(by_key.values())

    benchmark.extra_info["reproduced_sigma_percent"] = {
        f"{name}@{overlay}": round(value, 3) for (name, overlay), value in by_key.items()
    }
    benchmark.extra_info["paper_sigma"] = {
        f"{name}@{overlay}": value for (name, overlay), value in PAPER_SIGMA.items()
    }
