"""Tests of the worst-case study, Monte-Carlo study, validation and comparison.

These exercise the paper's actual experiments on reduced grids so the
whole file still runs in seconds; the full-size runs live in the
benchmarks.
"""

import pytest

from repro.core.comparison import ComparisonError, OptionComparison
from repro.core.montecarlo import MonteCarloTdpStudy
from repro.core.results import TdpSigmaRow, WorstCaseTdRow
from repro.core.study import MultiPatterningSRAMStudy, StudyError
from repro.core.validation import FormulaValidation
from repro.core.worst_case import WorstCaseStudy
from repro.variability.doe import StudyDOE


@pytest.fixture(scope="module")
def small_doe():
    return StudyDOE(array_sizes=(16, 64), overlay_budgets_nm=(3.0, 8.0))


@pytest.fixture(scope="module")
def worst_case_study(node, small_doe):
    return WorstCaseStudy(node, doe=small_doe)


@pytest.fixture(scope="module")
def table1_rows(worst_case_study):
    return worst_case_study.table1()


@pytest.fixture(scope="module")
def figure4_rows(worst_case_study, simulator):
    return worst_case_study.figure4(simulator=simulator)


@pytest.fixture(scope="module")
def mc_study(node, small_doe, analytical_model):
    return MonteCarloTdpStudy(node, doe=small_doe, model=analytical_model, n_samples=150, seed=7)


@pytest.fixture(scope="module")
def table4_rows(mc_study):
    return mc_study.table4()


class TestWorstCaseStudy:
    def test_table1_covers_all_options(self, table1_rows):
        assert [row.option_name for row in table1_rows] == ["LELELE", "SADP", "EUV"]

    def test_table1_le3_dominates_cbl(self, table1_rows):
        by_name = {row.option_name: row for row in table1_rows}
        assert by_name["LELELE"].delta_cbl_percent > 30.0
        assert by_name["SADP"].delta_cbl_percent < 15.0
        assert by_name["EUV"].delta_cbl_percent < 15.0
        assert by_name["LELELE"].delta_cbl_percent > 3.0 * by_name["SADP"].delta_cbl_percent

    def test_table1_sadp_capacitance_below_euv(self, table1_rows):
        """Paper: SADP's worst-case Cbl impact is even smaller than EUV's."""
        by_name = {row.option_name: row for row in table1_rows}
        assert by_name["SADP"].delta_cbl_percent < by_name["EUV"].delta_cbl_percent

    def test_table1_resistance_drops_at_worst_corners(self, table1_rows):
        for row in table1_rows:
            assert row.delta_rbl_percent < 0.0

    def test_table1_sadp_worst_corner_matches_paper(self, table1_rows):
        """Paper Table I: SADP worst case is core CD -3sigma, spacer -3sigma."""
        sadp_row = next(row for row in table1_rows if row.option_name == "SADP")
        assert sadp_row.corner_parameters["cd:core"] == pytest.approx(-3.0)
        assert sadp_row.corner_parameters["spacer"] == pytest.approx(-1.5)

    def test_table1_le3_worst_corner_has_opposing_overlays(self, table1_rows):
        le3_row = next(row for row in table1_rows if row.option_name == "LELELE")
        overlays = [value for name, value in le3_row.corner_parameters.items() if name.startswith("ol:")]
        assert len(overlays) == 2
        assert overlays[0] * overlays[1] < 0.0    # the two masks move in opposite directions

    def test_worst_corner_caching(self, worst_case_study):
        assert worst_case_study.find_worst_corner("EUV") is worst_case_study.find_worst_corner("EUV")

    def test_figure2_distortion_records(self, worst_case_study):
        records = worst_case_study.figure2()
        assert len(records) == 3
        le3_record = next(r for r in records if r.option_name == "LELELE")
        # The worst LE3 corner visibly moves or widens the central tracks.
        assert any(abs(track.center_shift_nm) > 1.0 or abs(track.width_change_nm) > 1.0
                   for track in le3_record.tracks)
        # SADP keeps every printed track inside a few nm of its drawn position.
        sadp_record = next(r for r in records if r.option_name == "SADP")
        assert all(abs(track.center_shift_nm) < 5.0 for track in sadp_record.tracks)

    def test_figure4_rows_structure(self, figure4_rows, small_doe):
        assert [row.n_wordlines for row in figure4_rows] == list(small_doe.array_sizes)
        for row in figure4_rows:
            assert set(row.tdp_percent_by_option) == set(small_doe.option_names)
            assert row.nominal_td_ps > 0.0

    def test_figure4_le3_penalty_dominates(self, figure4_rows):
        for row in figure4_rows:
            assert row.tdp_percent("LELELE") > 10.0
            assert row.tdp_percent("LELELE") > row.tdp_percent("SADP")
            assert row.tdp_percent("LELELE") > row.tdp_percent("EUV")

    def test_figure4_sadp_and_euv_small(self, figure4_rows):
        for row in figure4_rows:
            assert abs(row.tdp_percent("SADP")) < 10.0
            assert abs(row.tdp_percent("EUV")) < 10.0


class TestFormulaValidation:
    @pytest.fixture(scope="class")
    def validation(self, node, small_doe, analytical_model, simulator, worst_case_study):
        return FormulaValidation(
            node,
            doe=small_doe,
            model=analytical_model,
            simulator=simulator,
            worst_case=worst_case_study,
        )

    def test_table2_rows(self, validation, small_doe):
        rows = validation.table2()
        assert [row.n_wordlines for row in rows] == list(small_doe.array_sizes)
        for row in rows:
            assert row.simulation_td_s > 0.0
            assert row.formula_td_s > 0.0
            assert 0.2 < row.ratio < 5.0

    def test_table3_interleaves_methods(self, validation):
        rows = validation.table3(array_sizes=[16])
        assert [row.method for row in rows] == ["simulation", "formula"]

    def test_table3_formula_tracks_simulation_for_le3(self, validation):
        rows = validation.table3(array_sizes=[16, 64])
        by_key = {(row.array_label, row.method): row for row in rows}
        for label in ("10x16", "10x64"):
            simulated = by_key[(label, "simulation")].tdp_percent_by_option["LELELE"]
            formula = by_key[(label, "formula")].tdp_percent_by_option["LELELE"]
            assert formula == pytest.approx(simulated, abs=8.0)
            assert formula > 10.0

    def test_agreement_metric(self, validation):
        gaps = validation.tdp_agreement_percent(validation.table3(array_sizes=[16]))
        assert set(gaps) == {"LELELE", "SADP", "EUV"}
        assert all(gap >= 0.0 for gap in gaps.values())


class TestMonteCarloStudy:
    def test_records_are_reproducible(self, mc_study):
        first = mc_study.figure5(n_wordlines=64)[0]
        second = mc_study.figure5(n_wordlines=64)[0]
        assert first.tdp_percent_samples == second.tdp_percent_samples

    def test_figure5_has_three_options(self, mc_study):
        records = mc_study.figure5()
        assert [record.option_name for record in records] == ["LELELE", "SADP", "EUV"]
        for record in records:
            assert record.n_samples == 150
            assert len(record.tdp_percent_samples) == 150

    def test_le3_sigma_exceeds_sadp_at_8nm(self, mc_study):
        records = {record.option_name: record for record in mc_study.figure5()}
        assert records["LELELE"].sigma_percent > 1.5 * records["SADP"].sigma_percent

    def test_table4_overlay_sweep_is_monotonic(self, table4_rows):
        le3_rows = [row for row in table4_rows if row.option_name == "LELELE"]
        le3_rows.sort(key=lambda row: row.overlay_three_sigma_nm)
        sigmas = [row.sigma_percent for row in le3_rows]
        assert sigmas[0] < sigmas[-1]

    def test_table4_le3_at_tight_overlay_comparable_to_others(self, table4_rows):
        """Paper conclusion: a 3 nm OL budget makes LE3 comparable to SADP/EUV."""
        by_label = {row.label: row for row in table4_rows}
        le3_tight = by_label["LELELE 3nm OL"].sigma_percent
        sadp_sigma = by_label["SADP"].sigma_percent
        euv_sigma = by_label["EUV"].sigma_percent
        assert le3_tight < 2.0 * max(sadp_sigma, euv_sigma)

    def test_tdp_distributions_centered_near_zero(self, mc_study):
        for record in mc_study.figure5():
            assert abs(record.summary.mean) < 3.0 * record.summary.std + 1.0

    def test_overlay_sensitivity_pairs(self, mc_study):
        pairs = mc_study.overlay_sensitivity()
        assert [overlay for overlay, _ in pairs] == [3.0, 8.0]
        assert pairs[0][1] < pairs[1][1]

    def test_rejects_too_few_samples(self, node):
        with pytest.raises(Exception):
            MonteCarloTdpStudy(node, n_samples=1)


class TestOptionComparison:
    def test_verdict_recommends_sadp_at_loose_overlay(self, figure4_rows, table4_rows):
        verdict = OptionComparison(figure4_rows, table4_rows).verdict()
        assert verdict.recommended_option == "SADP"
        assert verdict.worst_case_leader in ("SADP", "EUV")

    def test_sigma_ratio_matches_paper_headline(self, figure4_rows, table4_rows):
        comparison = OptionComparison(figure4_rows, table4_rows)
        assert comparison.sigma_ratio_le3_over_sadp(8.0) > 1.5

    def test_overlay_requirement_is_tightest_budget(self, figure4_rows, table4_rows):
        requirement = OptionComparison(figure4_rows, table4_rows).required_overlay_for_parity(
            tolerance_percent=60.0
        )
        assert requirement.reference_option == "SADP"
        if requirement.achievable:
            assert requirement.required_overlay_nm in (3.0, 8.0)

    def test_euv_allowed_when_manufacturable(self, figure4_rows, table4_rows):
        verdict = OptionComparison(figure4_rows, table4_rows).verdict(euv_manufacturable=True)
        assert verdict.recommended_option in ("SADP", "EUV")

    def test_empty_inputs_rejected(self):
        with pytest.raises(ComparisonError):
            OptionComparison([], [])

    def test_sigma_lookup_errors(self, figure4_rows, table4_rows):
        comparison = OptionComparison(figure4_rows, table4_rows)
        with pytest.raises(ComparisonError):
            comparison.sigma_for("SAQP")


class TestMultiPatterningSRAMStudy:
    def test_full_reduced_run_is_complete(self, node):
        study = MultiPatterningSRAMStudy(
            node, doe=StudyDOE(array_sizes=(16,), overlay_budgets_nm=(3.0, 8.0)),
            monte_carlo_samples=60, seed=1,
        )
        report = study.run()
        assert report.is_complete()
        assert len(report.table1) == 3
        assert len(report.figure4) == 1
        assert len(report.table2) == 1
        assert len(report.table3) == 2
        assert len(report.figure5) == 3
        assert len(report.table4) == 4   # 2 LE3 overlay points + SADP + EUV

    def test_verdict_from_report(self, node):
        study = MultiPatterningSRAMStudy(
            node, doe=StudyDOE(array_sizes=(16,), overlay_budgets_nm=(3.0, 8.0)),
            monte_carlo_samples=60, seed=1,
        )
        report = study.run()
        verdict = study.verdict(report)
        assert verdict.recommended_option in ("SADP", "LELELE")
        assert verdict.notes

    def test_invalid_sample_count_rejected(self, node):
        with pytest.raises(StudyError):
            MultiPatterningSRAMStudy(node, monte_carlo_samples=1)
