"""Coverage for the figure ascii/csv helpers and the operation tables.

The figure helpers (``reporting/figures.py``) were previously untested;
the operation-table formatters get golden-string tests because the CLI
and the docs show their output verbatim.
"""

import pytest

from repro.core.results import (
    LayoutDistortionRecord,
    MonteCarloTdpRecord,
    OperationImpactRow,
    OperationSigmaRow,
    TrackDistortion,
    WorstCaseTdRow,
)
from repro.reporting.figures import (
    ascii_bar_chart,
    figure2_ascii,
    figure2_csv,
    figure3_csv,
    figure4_ascii,
    figure4_csv,
    figure5_ascii,
    figure5_csv,
    overlay_sweep_csv,
)
from repro.reporting.tables import (
    ReportingError,
    format_operation_sigma,
    format_operation_table,
)
from repro.variability.statistics import Histogram, SummaryStatistics


@pytest.fixture()
def distortion_record():
    return LayoutDistortionRecord(
        option_name="SADP",
        corner_parameters={"cd:core": -3.0},
        tracks=(
            TrackDistortion(
                net="BL@2", mask="core",
                drawn_left_nm=0.0, drawn_right_nm=12.0,
                printed_left_nm=1.0, printed_right_nm=11.0,
            ),
            TrackDistortion(
                net="VSS@2", mask=None,
                drawn_left_nm=24.0, drawn_right_nm=36.0,
                printed_left_nm=24.5, printed_right_nm=37.0,
            ),
        ),
    )


@pytest.fixture()
def figure4_rows():
    return [
        WorstCaseTdRow(
            array_label="10x16", n_wordlines=16, nominal_td_ps=5.38,
            tdp_percent_by_option={"LELELE": 22.97, "EUV": 3.89},
        ),
        WorstCaseTdRow(
            array_label="10x64", n_wordlines=64, nominal_td_ps=7.31,
            tdp_percent_by_option={"LELELE": 14.02, "EUV": 3.12},
        ),
    ]


@pytest.fixture()
def mc_record():
    samples = (1.0, 2.0, 2.5, 3.0, 4.0, 2.2, 1.8, 2.9)
    return MonteCarloTdpRecord(
        option_name="LELELE",
        overlay_three_sigma_nm=8.0,
        n_wordlines=64,
        n_samples=len(samples),
        tdp_percent_samples=samples,
        summary=SummaryStatistics.from_samples(samples),
        histogram=Histogram.from_samples(samples, bins=4),
    )


class TestAsciiBarChart:
    def test_bars_scale_with_the_peak(self):
        chart = ascii_bar_chart(["a", "bb"], [1.0, 2.0], width=10, unit="%")
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10
        assert "2.000%" in lines[1]

    def test_title_prepended(self):
        chart = ascii_bar_chart(["a"], [1.0], title="My chart")
        assert chart.splitlines()[0] == "My chart"

    def test_zero_peak_renders_empty_bars(self):
        chart = ascii_bar_chart(["a"], [0.0])
        assert "#" not in chart

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ReportingError, match="same length"):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_empty_values_raise(self):
        with pytest.raises(ReportingError, match="nothing"):
            ascii_bar_chart([], [])


class TestFigure2:
    def test_ascii_shows_drawn_and_printed_strips(self, distortion_record):
        art = figure2_ascii(distortion_record)
        assert "Fig. 2 (SADP)" in art
        assert art.count("drawn") == 2
        assert art.count("printed") == 2
        assert "[core]" in art

    def test_ascii_rejects_bad_scale(self, distortion_record):
        with pytest.raises(ReportingError, match="scale"):
            figure2_ascii(distortion_record, scale_nm_per_char=0.0)

    def test_csv_carries_width_and_shift_columns(self, distortion_record):
        csv = figure2_csv([distortion_record])
        lines = csv.splitlines()
        assert lines[0].startswith("option,net,mask,")
        assert len(lines) == 3
        assert lines[1].split(",")[0] == "SADP"
        # BL@2 printed 1..11 versus drawn 0..12: width change -2.0.
        assert "-2.000" in lines[1]


class TestFigure3:
    def test_csv_round_trips_the_summaries(self):
        summaries = [
            {"label": "10x16", "n_wordlines": 16},
            {"label": "10x64", "n_wordlines": 64},
        ]
        csv = figure3_csv(summaries)
        assert csv.splitlines()[0] == "label,n_wordlines"
        assert csv.splitlines()[2] == "10x64,64"

    def test_empty_summaries_raise(self):
        with pytest.raises(ReportingError, match="no arrays"):
            figure3_csv([])


class TestFigure4:
    def test_csv_has_one_column_per_option(self, figure4_rows):
        csv = figure4_csv(figure4_rows)
        lines = csv.splitlines()
        assert lines[0] == "array,n_wordlines,nominal_td_ps,tdp_EUV_percent,tdp_LELELE_percent"
        assert lines[1].startswith("10x16,16,5.380,")
        assert len(lines) == 3

    def test_ascii_renders_one_block_per_size(self, figure4_rows):
        art = figure4_ascii(figure4_rows)
        assert "10x16: nominal td = 5.38 ps" in art
        assert "10x64" in art

    def test_empty_rows_raise(self):
        with pytest.raises(ReportingError, match="no Fig. 4 rows"):
            figure4_csv([])


class TestFigure5:
    def test_ascii_histogram_mentions_sigma(self, mc_record):
        art = figure5_ascii(mc_record)
        assert "LELELE 8nm OL" in art
        assert "sigma" in art

    def test_csv_one_row_per_bin(self, mc_record):
        csv = figure5_csv([mc_record])
        lines = csv.splitlines()
        assert lines[0] == "option,tdp_percent_bin_center,count"
        assert len(lines) == 1 + 4

    def test_overlay_sweep_csv(self):
        csv = overlay_sweep_csv([(3.0, 0.5), (8.0, 1.9)])
        lines = csv.splitlines()
        assert lines[0] == "option,overlay_3sigma_nm,tdp_sigma_percent"
        assert lines[2] == "LELELE,8.00,1.9000"


class TestOperationTables:
    def test_write_table_golden(self):
        rows = [
            OperationImpactRow(
                operation="write", array_label="10x16", n_wordlines=16,
                nominal_value=6.4578e-12, unit="s",
                delta_percent_by_option={"LELELE": -1.59, "SADP": -0.48},
            ),
        ]
        expected = "\n".join(
            [
                "Operation suite (write): worst-case patterning impact",
                "Array size | Nominal (ps) | dwrite LELELE (%) | dwrite SADP (%)",
                "-----------+--------------+-------------------+----------------",
                "10x16      | 6.46         | -1.59             | -0.48          ",
            ]
        )
        assert format_operation_table(rows) == expected

    def test_margin_table_golden(self):
        rows = [
            OperationImpactRow(
                operation="hold_snm", array_label="10x64", n_wordlines=64,
                nominal_value=0.33216, unit="V",
                delta_percent_by_option={"EUV": -0.16},
            ),
        ]
        expected = "\n".join(
            [
                "Noise margins",
                "Array size | Nominal (mV) | dhold_snm EUV (%)",
                "-----------+--------------+------------------",
                "10x64      | 332.16       | -0.16            ",
            ]
        )
        assert format_operation_table(rows, title="Noise margins") == expected

    def test_sigma_table_golden(self):
        rows = [
            OperationSigmaRow(
                operation="write", array_label="10x64", option_name="SADP",
                overlay_three_sigma_nm=None, sigma_percent=0.1234,
            ),
        ]
        expected = "\n".join(
            [
                "Operation suite (write): Monte-Carlo impact sigma",
                "Array size | Patterning option | Std. deviation (% points)",
                "-----------+-------------------+--------------------------",
                "10x64      | SADP              | 0.123                    ",
            ]
        )
        assert format_operation_sigma(rows) == expected

    def test_empty_rows_raise(self):
        with pytest.raises(ReportingError, match="no operation rows"):
            format_operation_table([])
        with pytest.raises(ReportingError, match="no operation sigma rows"):
            format_operation_sigma([])

    def test_mixed_operations_rejected(self):
        rows = [
            OperationImpactRow(
                operation="write", array_label="10x16", n_wordlines=16,
                nominal_value=1e-12, unit="s", delta_percent_by_option={"EUV": 0.1},
            ),
            OperationImpactRow(
                operation="read", array_label="10x64", n_wordlines=64,
                nominal_value=1e-12, unit="s", delta_percent_by_option={"EUV": 0.1},
            ),
        ]
        with pytest.raises(ReportingError, match="share the operation"):
            format_operation_table(rows)
