"""Tests of the swept-source DC analysis and the DC robustness fallbacks."""

import numpy as np
import pytest

from repro.circuit.dc import (
    ConvergenceError,
    NewtonOptions,
    dc_operating_point,
    dc_sweep,
)
from repro.circuit.elements import Resistor, VoltageSource
from repro.circuit.mna import MNAError
from repro.circuit.mosfet import MOSFET
from repro.circuit.netlist import Circuit
from repro.sram.cell import CellNodes, build_cell
from repro.technology.transistors import default_n10_nmos, default_n10_pmos


def _divider() -> Circuit:
    circuit = Circuit(title="divider")
    circuit.add(VoltageSource.dc("vin", "in", "0", 1.0))
    circuit.add(Resistor("r1", "in", "mid", 1000.0))
    circuit.add(Resistor("r2", "mid", "0", 1000.0))
    return circuit


def _inverter() -> Circuit:
    circuit = Circuit(title="inverter")
    circuit.add(VoltageSource.dc("vdd", "vdd", "0", 0.7))
    circuit.add(VoltageSource.dc("vin", "in", "0", 0.0))
    circuit.add(MOSFET("mp", drain="out", gate="in", source="vdd", parameters=default_n10_pmos()))
    circuit.add(MOSFET("mn", drain="out", gate="in", source="0", parameters=default_n10_nmos()))
    return circuit


def _cell_circuit() -> Circuit:
    """A free-running 6T cell on ideal supplies (bistable from a flat start)."""
    circuit = Circuit(title="cell")
    circuit.add(VoltageSource.dc("vdd", "vdd", "0", 0.7))
    circuit.add(VoltageSource.dc("vwl", "wl", "0", 0.0))
    circuit.add(VoltageSource.dc("vbl", "bl", "0", 0.7))
    circuit.add(VoltageSource.dc("vblb", "blb", "0", 0.7))
    nodes = CellNodes(
        bitline="bl", bitline_bar="blb", wordline="wl",
        vdd="vdd", vss="0", internal_q="q", internal_qb="qb",
    )
    circuit.add_all(build_cell("cell", nodes).elements)
    return circuit


class TestSourceOverrides:
    def test_override_replaces_the_waveform_value(self):
        result = dc_operating_point(_divider(), source_overrides={"vin": 0.5})
        assert result.voltage("in") == pytest.approx(0.5, rel=1e-9)
        assert result.voltage("mid") == pytest.approx(0.25, rel=1e-6)

    def test_unknown_source_name_raises(self):
        with pytest.raises(MNAError, match="no voltage source"):
            dc_operating_point(_divider(), source_overrides={"nope": 0.5})


class TestRobustness:
    def test_bistable_cell_converges_from_flat_start(self):
        """Regression: Newton from an all-zero guess on the cross-coupled
        cell must not abort — the gmin / source-stepping / pseudo-transient
        ladder has to find a genuine operating point."""
        result = dc_operating_point(_cell_circuit())
        assert result.converged
        assert result.voltage("vdd") == pytest.approx(0.7, abs=1e-6)
        q, qb = result.voltage("q"), result.voltage("qb")
        # Any genuine DC solution of the cell keeps both internals inside
        # the rails (the flat start typically relaxes to the metastable
        # ridge, which is a valid operating point).
        assert -0.01 <= q <= 0.71 and -0.01 <= qb <= 0.71

    def test_bistable_cell_follows_the_initial_guess(self):
        result = dc_operating_point(
            _cell_circuit(), initial_voltages={"q": 0.7, "qb": 0.0}
        )
        assert result.voltage("q") > 0.5
        assert result.voltage("qb") < 0.2

    def test_tight_iteration_budget_still_raises_cleanly(self):
        options = NewtonOptions(max_iterations=1)
        with pytest.raises(ConvergenceError):
            dc_operating_point(_cell_circuit(), options=options)


class TestDCSweep:
    def test_divider_sweep_is_linear(self):
        sweep = dc_sweep(_divider(), "vin", np.linspace(0.0, 1.0, 11))
        assert sweep.voltage("mid") == pytest.approx(sweep.values / 2.0, abs=1e-6)

    def test_inverter_vtc_is_monotone_and_full_swing(self):
        sweep = dc_sweep(_inverter(), "vin", np.linspace(0.0, 0.7, 71))
        out = sweep.voltage("out")
        assert out[0] == pytest.approx(0.7, abs=0.01)
        assert out[-1] == pytest.approx(0.0, abs=0.01)
        assert np.all(np.diff(out) <= 1e-6)

    def test_crossing_value_interpolates(self):
        sweep = dc_sweep(_inverter(), "vin", np.linspace(0.0, 0.7, 71))
        trip = sweep.crossing_value("out", 0.35, direction="falling")
        assert trip is not None
        assert 0.2 < trip < 0.5

    def test_crossing_value_none_when_never_crossed(self):
        sweep = dc_sweep(_divider(), "vin", np.linspace(0.0, 1.0, 5))
        assert sweep.crossing_value("mid", 2.0, direction="rising") is None

    def test_crossing_direction_validated(self):
        sweep = dc_sweep(_divider(), "vin", [0.0, 1.0])
        with pytest.raises(MNAError, match="rising"):
            sweep.crossing_value("mid", 0.5, direction="sideways")

    def test_bad_source_name_raises_early(self):
        with pytest.raises(MNAError, match="no voltage source"):
            dc_sweep(_divider(), "nope", [0.0, 1.0])

    def test_empty_grid_rejected(self):
        with pytest.raises(ConvergenceError, match="at least one"):
            dc_sweep(_divider(), "vin", [])

    def test_continuation_tracks_the_held_cell_state(self):
        """Sweeping BL down with the cell holding 1: continuation keeps the
        held branch until the genuine trip, then lands on the written one."""
        circuit = _cell_circuit()
        # WL on so the pass gates connect the swept bit line to the cell.
        for element in circuit.elements_of_type(VoltageSource):
            if element.name == "vwl":
                element.waveform = type(element.waveform)(0.7)
        sweep = dc_sweep(
            circuit,
            "vbl",
            np.linspace(0.7, 0.0, 36),
            initial_voltages={"q": 0.7, "qb": 0.0, "vdd": 0.7, "bl": 0.7, "blb": 0.7},
        )
        q = sweep.voltage("q")
        assert q[0] > 0.5            # held at the start
        assert q[-1] < 0.2           # flipped by the end
