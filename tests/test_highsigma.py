"""Tests of the high-sigma yield engine (repro.highsigma).

Covers the whitened parameter space and defensive mixture proposal, the
quadratic surrogate, the HL-RF dominant-shift search, the tail
estimators, the end-to-end engine against closed-form Gaussian tails,
the DOE-level study with its Monte-Carlo parity oracle, and the
``yield_hs`` spec/api/CLI wiring.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from scipy.stats import norm

from repro.highsigma import (
    HighSigmaEngine,
    HighSigmaError,
    HighSigmaYieldStudy,
    ParameterSpace,
    QuadraticSurrogate,
    binomial_estimate,
    find_dominant_shift,
    intervals_overlap,
    self_normalized_is_estimate,
)
from repro.highsigma.estimator import EstimatorError, TailEstimate
from repro.highsigma.space import MixtureProposal, continuous_mask
from repro.highsigma.study import BatchEvaluator
from repro.highsigma.surrogate import initial_design, n_quadratic_features
from repro.variability.distributions import (
    CornerDistribution,
    DistributionError,
    NormalDistribution,
)


def make_space(dimension=2, sigma=1.0):
    return ParameterSpace(
        names=tuple(f"x{i}" for i in range(dimension)),
        distributions=tuple(
            NormalDistribution(sigma=sigma) for _ in range(dimension)
        ),
    )


class TestParameterSpace:
    def test_standardize_round_trip(self):
        space = ParameterSpace(
            names=("a", "b"),
            distributions=(
                NormalDistribution(mu=2.0, sigma=0.5),
                NormalDistribution(mu=-1.0, sigma=3.0),
            ),
        )
        X = np.array([[2.5, 2.0], [1.5, -4.0]])
        assert np.allclose(space.unstandardize(space.standardize(X)), X)
        assert np.allclose(space.standardize(X)[0], [1.0, 1.0])

    def test_logpdf_sums_dimensions(self):
        space = make_space(2)
        x = np.array([[0.3, -0.7]])
        expected = NormalDistribution().logpdf(0.3) + NormalDistribution().logpdf(-0.7)
        assert space.logpdf(x)[0] == pytest.approx(expected, rel=1e-12)

    def test_from_samples_fits_moments(self):
        rng = np.random.default_rng(0)
        matrix = np.column_stack(
            [rng.normal(5.0, 2.0, 4000), rng.normal(-1.0, 0.5, 4000)]
        )
        space = ParameterSpace.from_samples(("u", "v"), matrix)
        assert space.distributions[0].mean() == pytest.approx(5.0, abs=0.1)
        assert space.distributions[0].std() == pytest.approx(2.0, rel=0.05)
        assert space.distributions[1].std() == pytest.approx(0.5, rel=0.05)

    def test_degenerate_dimension_rejected(self):
        with pytest.raises(DistributionError):
            ParameterSpace(
                names=("a",), distributions=(NormalDistribution(sigma=0.0),)
            )

    def test_proposal_for_shift_moves_continuous_keeps_corner(self):
        space = ParameterSpace(
            names=("a", "c"),
            distributions=(
                NormalDistribution(mu=1.0, sigma=2.0),
                CornerDistribution(excursion=3.0),
            ),
        )
        proposal = space.proposal_for_shift(np.array([2.0, 5.0]))
        assert proposal.distributions[0].mean() == pytest.approx(5.0)  # 1 + 2*2
        assert proposal.distributions[0].std() == pytest.approx(2.0)
        assert proposal.distributions[1] is space.distributions[1]

    def test_proposal_inflation_widens_spread(self):
        space = make_space(1)
        proposal = space.proposal_for_shift(np.array([4.0]), inflation=2.0)
        assert proposal.distributions[0].std() == pytest.approx(2.0)
        with pytest.raises(DistributionError):
            space.proposal_for_shift(np.array([4.0]), inflation=0.0)

    def test_log_weights_are_exact_ratios(self):
        space = make_space(1)
        proposal = space.proposal_for_shift(np.array([3.0]))
        X = np.array([[0.0], [3.0]])
        lw = space.log_weights(proposal, X)
        # log N(x;0,1) - log N(x;3,1) = (-x^2 + (x-3)^2)/2 = (9 - 6x)/2
        assert lw[0] == pytest.approx(4.5, rel=1e-12)
        assert lw[1] == pytest.approx(-4.5, rel=1e-12)

    def test_continuous_mask(self):
        space = ParameterSpace(
            names=("a", "c"),
            distributions=(
                NormalDistribution(sigma=1.0),
                CornerDistribution(excursion=1.0),
            ),
        )
        assert continuous_mask(space).tolist() == [True, False]


class TestMixtureProposal:
    def test_logpdf_is_log_mixture(self):
        space = make_space(1)
        shifted = space.proposal_for_shift(np.array([4.0]))
        mix = MixtureProposal(target=space, shifted=shifted, alpha=0.5)
        x = np.array([[1.0]])
        expected = np.log(
            0.5 * np.exp(space.logpdf(x)) + 0.5 * np.exp(shifted.logpdf(x))
        )
        assert mix.logpdf(x)[0] == pytest.approx(float(expected[0]), rel=1e-12)

    def test_weights_bounded_by_inverse_alpha(self):
        # The defensive-mixture guarantee: w = p/(a p + (1-a) q) <= 1/a.
        space = make_space(2)
        mix = MixtureProposal(
            target=space,
            shifted=space.proposal_for_shift(np.array([5.0, 5.0])),
            alpha=0.5,
        )
        rng = np.random.default_rng(1)
        X = mix.sample(rng, 2000)
        weights = np.exp(space.log_weights(mix, X))
        assert np.max(weights) <= 2.0 + 1e-9

    def test_sample_count_and_validation(self):
        space = make_space(1)
        shifted = space.proposal_for_shift(np.array([2.0]))
        mix = MixtureProposal(target=space, shifted=shifted)
        assert mix.sample(np.random.default_rng(2), 100).shape == (100, 1)
        with pytest.raises(DistributionError):
            MixtureProposal(target=space, shifted=shifted, alpha=1.0)


class TestQuadraticSurrogate:
    def test_recovers_exact_quadratic(self):
        rng = np.random.default_rng(3)
        surrogate = QuadraticSurrogate(2)
        U = rng.standard_normal((40, 2)) * 3.0

        def truth(U):
            return 1.0 + 2.0 * U[:, 0] - U[:, 1] + 0.5 * U[:, 0] ** 2 + 0.25 * U[:, 0] * U[:, 1]

        surrogate.observe(U, truth(U))
        assert surrogate.refit()
        probe = rng.standard_normal((10, 2)) * 5.0
        assert np.allclose(surrogate.predict(probe), truth(probe), atol=1e-8)
        assert surrogate.residual_std == pytest.approx(0.0, abs=1e-8)

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(4)
        surrogate = QuadraticSurrogate(3)
        U = rng.standard_normal((60, 3)) * 2.0
        values = U[:, 0] + 0.3 * U[:, 1] ** 2 - 0.2 * U[:, 0] * U[:, 2]
        surrogate.observe(U, values)
        surrogate.refit()
        u = np.array([0.5, -1.0, 2.0])
        grad = surrogate.gradient(u)
        eps = 1e-6
        for axis in range(3):
            e = np.zeros(3)
            e[axis] = eps
            fd = (surrogate.predict_one(u + e) - surrogate.predict_one(u - e)) / (2 * eps)
            assert grad[axis] == pytest.approx(fd, rel=1e-5, abs=1e-7)

    def test_refuses_underdetermined_fit(self):
        surrogate = QuadraticSurrogate(2)
        surrogate.observe(np.zeros((3, 2)), np.zeros(3))
        assert not surrogate.refit()
        assert not surrogate.is_fitted

    def test_initial_design_spans_sigma_range(self):
        design = initial_design(2, 32, np.random.default_rng(5))
        assert design.shape[0] >= 13  # origin + 3 radii * 2 dims * 2 signs
        norms = np.linalg.norm(design, axis=1)
        assert norms.max() >= 6.0
        assert n_quadratic_features(2) == 6


class TestDominantShift:
    def test_linear_margin_closed_form(self):
        # g(u) = b - a.u fails past the hyperplane a.u = b; the closest
        # point is u* = b a / ||a||^2 with beta = b/||a||.
        a = np.array([3.0, 4.0])
        b = 10.0
        result = find_dominant_shift(
            lambda u: b - float(a @ u), lambda u: -a, dimension=2
        )
        assert result.converged
        assert result.beta == pytest.approx(b / 5.0, rel=1e-9)
        assert np.allclose(result.u_star, b * a / 25.0)
        assert result.margin == pytest.approx(0.0, abs=1e-9)

    def test_movable_mask_pins_dimensions(self):
        a = np.array([3.0, 4.0])
        result = find_dominant_shift(
            lambda u: 10.0 - float(a @ u),
            lambda u: -a,
            dimension=2,
            movable=np.array([True, False]),
        )
        assert result.u_star[1] == 0.0
        assert result.beta == pytest.approx(10.0 / 3.0, rel=1e-9)

    def test_flat_surrogate_terminates_unconverged(self):
        result = find_dominant_shift(
            lambda u: 5.0, lambda u: np.zeros(2), dimension=2
        )
        assert not result.converged
        assert result.beta == 0.0


class TestEstimators:
    def test_uniform_weights_reduce_to_mean(self):
        lw = np.zeros(1000)
        ind = np.zeros(1000)
        ind[:25] = 1.0
        estimate = self_normalized_is_estimate(lw, ind)
        assert estimate.probability == pytest.approx(0.025)
        assert estimate.ess == pytest.approx(1000.0)
        assert estimate.method == "importance_sampling"

    def test_defensive_mixture_recovers_gaussian_tail(self):
        # Estimate P(x > t) for x ~ N(0,1) with a 50/50 defensive mixture
        # of N(0,1) and N(t,1) as the proposal; the exact answer is
        # norm.sf(t). (A *pure* shift would collapse the self-normalizer:
        # weights are unbounded on the left tail and the ESS drops to ~2.)
        t = 4.0
        rng = np.random.default_rng(6)
        n = 20000
        x = np.concatenate(
            [rng.normal(0.0, 1.0, n // 2), rng.normal(t, 1.0, n // 2)]
        )
        lp = norm.logpdf(x)
        lq = np.logaddexp(
            lp + np.log(0.5), norm.logpdf(x, loc=t) + np.log(0.5)
        )
        estimate = self_normalized_is_estimate(lp - lq, (x > t).astype(float))
        exact = float(norm.sf(t))
        assert estimate.ci_low <= exact <= estimate.ci_high
        assert estimate.probability == pytest.approx(exact, rel=0.25)
        assert estimate.ess > n / 3

    def test_log_weight_shift_immune_to_underflow(self):
        lw = np.full(100, -800.0)  # exp underflows to 0 without the shift
        ind = np.zeros(100)
        ind[:10] = 1.0
        estimate = self_normalized_is_estimate(lw, ind)
        assert estimate.probability == pytest.approx(0.1)

    def test_all_zero_weights_rejected(self):
        with pytest.raises(EstimatorError):
            self_normalized_is_estimate(
                np.full(10, -np.inf), np.zeros(10)
            )

    def test_binomial_wilson_interval(self):
        estimate = binomial_estimate(5, 100)
        assert estimate.probability == pytest.approx(0.05)
        assert 0.0 < estimate.ci_low < 0.05 < estimate.ci_high < 1.0
        assert estimate.method == "monte_carlo"
        zero = binomial_estimate(0, 100)
        assert zero.probability == 0.0
        assert zero.ci_high > 0.0  # Wilson never collapses the interval

    def test_sigma_equivalent(self):
        estimate = binomial_estimate(1, 1000)
        three_sigma = TailEstimate(
            probability=float(norm.sf(3.0)),
            ci_low=0.0,
            ci_high=1.0,
            confidence=0.95,
            ess=1.0,
            n_samples=1,
            method="monte_carlo",
        )
        assert three_sigma.sigma_equivalent == pytest.approx(3.0, rel=1e-9)
        assert estimate.ppm == pytest.approx(1000.0)

    def test_intervals_overlap(self):
        a = binomial_estimate(10, 100)
        b = binomial_estimate(12, 100)
        c = binomial_estimate(90, 100)
        assert intervals_overlap(a, b)
        assert not intervals_overlap(a, c)


class TestBatchEvaluator:
    def test_counts_calls(self):
        evaluator = BatchEvaluator(lambda X: X[:, 0], max_calls=100)
        evaluator(np.zeros((30, 1)))
        evaluator(np.zeros((20, 1)))
        assert evaluator.calls == 50
        assert evaluator.remaining == 50

    def test_budget_enforced(self):
        evaluator = BatchEvaluator(lambda X: X[:, 0], max_calls=10)
        with pytest.raises(HighSigmaError):
            evaluator(np.zeros((11, 1)))
        assert evaluator.calls == 0  # the refused batch is not charged


class TestHighSigmaEngine:
    def make_engine(self, metric, dimension=2, seed=7, max_calls=100_000):
        space = make_space(dimension)
        return HighSigmaEngine(
            space, BatchEvaluator(metric, max_calls=max_calls), seed=seed
        )

    def test_recovers_linear_gaussian_tail_at_3_sigma(self):
        # f(x) = x0 + x1 ~ N(0, sqrt(2)); P(f >= t) = sf(t/sqrt(2)).
        engine = self.make_engine(lambda X: X[:, 0] + X[:, 1])
        t = 3.0 * np.sqrt(2.0)
        result = engine.estimate(t, n_proposals=4000)
        exact = float(norm.sf(3.0))
        assert result.estimate.ci_low <= exact <= result.estimate.ci_high
        assert result.shift.beta == pytest.approx(3.0, rel=0.05)

    def test_recovers_linear_gaussian_tail_at_6_sigma(self):
        # The deliverable: a 6-sigma probability (~1e-9) with a finite
        # two-sided CI from a few thousand weighted draws.
        engine = self.make_engine(lambda X: X[:, 0] + X[:, 1])
        t = 6.0 * np.sqrt(2.0)
        result = engine.estimate(t, n_proposals=4000)
        exact = float(norm.sf(6.0))
        assert result.estimate.ci_low <= exact <= result.estimate.ci_high
        assert 0.0 < result.estimate.ci_low < result.estimate.ci_high < 1e-6
        assert result.estimate.ess > 500.0

    def test_brute_force_parity_at_3_sigma(self):
        engine = self.make_engine(lambda X: X[:, 0] + X[:, 1])
        t = 3.0 * np.sqrt(2.0)
        is_estimate = engine.estimate(t, n_proposals=4000).estimate
        mc = engine.brute_force(t, 50_000)
        assert intervals_overlap(is_estimate, mc)

    def test_exact_surrogate_needs_no_promotions(self):
        # A linear metric is inside the quadratic family: residual ~ 0,
        # the trust band collapses, and nothing needs a real solve.
        engine = self.make_engine(lambda X: X[:, 0] + X[:, 1])
        result = engine.estimate(3.0, n_proposals=2000)
        assert result.n_promoted == 0

    def test_nonquadratic_metric_promotes_uncertain_draws(self):
        # A cubic term leaves residual the quadratic cannot absorb; draws
        # near the threshold fall inside the band and must be promoted.
        engine = self.make_engine(lambda X: X[:, 0] + 0.1 * X[:, 0] ** 3)
        result = engine.estimate(4.0, n_proposals=2000)
        assert result.n_promoted > 0
        assert result.n_simulator_calls >= result.n_promoted

    def test_promotions_recorded_in_metrics(self):
        from repro.obs.metrics import registry, reset_registry

        reset_registry()
        engine = self.make_engine(lambda X: X[:, 0] + 0.1 * X[:, 0] ** 3)
        engine.estimate(4.0, n_proposals=1000, operation="read")
        counters = registry().snapshot()["counters"]
        names = {key[0] for key in counters}
        assert "repro_highsigma_proposals_total" in names
        assert "repro_highsigma_promoted_solves_total" in names
        assert "repro_highsigma_simulator_calls_total" in names
        for key, value in counters.items():
            if key[0] == "repro_highsigma_proposals_total":
                assert key[1] == (("operation", "read"),)
                assert value == 1000.0
        reset_registry()

    def test_fail_direction_below(self):
        # A margin-like metric fails low: P(x0 <= -t) = sf(t).
        space = make_space(1)
        engine = HighSigmaEngine(
            space,
            BatchEvaluator(lambda X: X[:, 0]),
            fail_direction="below",
            seed=11,
        )
        result = engine.estimate(-4.0, n_proposals=4000)
        exact = float(norm.sf(4.0))
        assert result.estimate.ci_low <= exact <= result.estimate.ci_high

    def test_invalid_fail_direction_rejected(self):
        space = make_space(1)
        with pytest.raises(HighSigmaError):
            HighSigmaEngine(
                space, BatchEvaluator(lambda X: X[:, 0]), fail_direction="up"
            )

    def test_budget_exhaustion_surfaces(self):
        engine = self.make_engine(lambda X: X[:, 0], max_calls=5)
        with pytest.raises(HighSigmaError):
            engine.fit_surrogate(32)


@pytest.fixture(scope="module")
def analytical_hs_study(node, analytical_model):
    from repro.core.montecarlo import MonteCarloTdpStudy
    from repro.variability.doe import StudyDOE

    study = MonteCarloTdpStudy(
        node,
        doe=StudyDOE(array_sizes=(64,), overlay_budgets_nm=(8.0,)),
        model=analytical_model,
        n_samples=256,
        seed=2015,
    )
    return HighSigmaYieldStudy(
        study,
        proposals=2000,
        pilot_samples=256,
        mc_samples=8000,
        sigma_levels=(3.0, 6.0),
    )


class TestHighSigmaYieldStudy:
    def test_corner_parity_and_deep_tail(self, analytical_hs_study):
        from repro.variability.doe import DOEPoint

        point = DOEPoint(
            n_wordlines=64, option_name="LELELE", overlay_three_sigma_nm=8.0
        )
        rows = analytical_hs_study.corner_rows(point)
        by_level = {row.sigma_level: row for row in rows}
        assert set(by_level) == {3.0, 6.0}

        three = by_level[3.0]
        assert three.mc_agrees is True  # the parity oracle
        assert three.mc_probability is not None
        assert three.ess > analytical_hs_study.proposals / 8

        six = by_level[6.0]
        assert six.mc_agrees is None  # too deep to brute-force
        assert 0.0 < six.ci_low <= six.fail_probability <= six.ci_high < 1e-6
        assert six.beta > 4.0
        assert six.shift_converged

    def test_call_accounting(self, analytical_hs_study):
        from repro.variability.doe import DOEPoint

        before = analytical_hs_study.total_simulator_calls
        rows = analytical_hs_study.corner_rows(
            DOEPoint(n_wordlines=64, option_name="SADP", overlay_three_sigma_nm=None)
        )
        spent = analytical_hs_study.total_simulator_calls - before
        assert spent >= analytical_hs_study.surrogate_initial
        assert spent <= analytical_hs_study.max_calls
        assert all(row.n_simulator_calls <= spent for row in rows)

    def test_to_record_is_flat_json(self, analytical_hs_study):
        from repro.variability.doe import DOEPoint

        row = analytical_hs_study.corner_rows(
            DOEPoint(n_wordlines=64, option_name="EUV", overlay_three_sigma_nm=None)
        )[0]
        record = row.to_record()
        assert record["record"] == "high_sigma"
        json.dumps(record)  # must be JSON-serialisable as-is
        assert record["ppm"] == pytest.approx(row.fail_probability * 1e6)

    def test_analytical_model_restricted_to_read(self, node, analytical_model):
        from repro.core.montecarlo import MonteCarloTdpStudy

        study = MonteCarloTdpStudy(node, model=analytical_model, n_samples=16)
        with pytest.raises(HighSigmaError):
            HighSigmaYieldStudy(study, operation="write", model="analytical")
        with pytest.raises(HighSigmaError):
            HighSigmaYieldStudy(study, model="bogus")

    def test_margin_operations_fail_below(self, node, analytical_model):
        from repro.core.montecarlo import MonteCarloTdpStudy

        study = MonteCarloTdpStudy(node, model=analytical_model, n_samples=16)
        hs = HighSigmaYieldStudy(study, operation="hold_snm", model="surface")
        assert hs.fail_direction == "below"
        hs = HighSigmaYieldStudy(study, operation="read", model="circuit")
        assert hs.fail_direction == "above"


class TestCircuitModel:
    def test_circuit_metric_through_prepared_lanes(self, node, analytical_model):
        # The circuit metric must run real batched solves through the
        # prepare/solve_prepared lanes: nominal variation -> ~0 % impact,
        # degraded R/C -> positive read-time impact.
        from repro.core.montecarlo import MonteCarloTdpStudy
        from repro.variability.doe import StudyDOE

        study = MonteCarloTdpStudy(
            node,
            doe=StudyDOE(array_sizes=(8,)),
            model=analytical_model,
            n_samples=8,
        )
        hs = HighSigmaYieldStudy(
            study, model="circuit", n_wordlines=8, pilot_samples=8
        )
        metric = hs._metric_fn()
        X = np.array(
            [
                [1.0, 1.0, 1.0],   # nominal
                [1.3, 1.2, 1.05],  # degraded interconnect
            ]
        )
        values = metric(X)
        assert values.shape == (2,)
        assert np.all(np.isfinite(values))
        assert values[0] == pytest.approx(0.0, abs=1e-9)
        assert values[1] > 0.0

    def test_surface_metric_vectorises(self, node, analytical_model):
        from repro.core.montecarlo import MonteCarloTdpStudy
        from repro.variability.doe import StudyDOE

        study = MonteCarloTdpStudy(
            node,
            doe=StudyDOE(array_sizes=(8,)),
            model=analytical_model,
            n_samples=8,
        )
        hs = HighSigmaYieldStudy(study, model="surface", n_wordlines=8)
        metric = hs._metric_fn()
        X = np.array([[1.0, 1.0, 1.0], [1.2, 1.1, 1.0], [0.9, 0.95, 1.0]])
        values = metric(X)
        assert values.shape == (3,)
        assert values[0] == pytest.approx(0.0, abs=1e-9)
        assert values[1] > 0.0


class TestSpecApiWiring:
    def make_spec(self, **hs_overrides):
        from repro.core.spec import (
            ArraySpec,
            ExperimentSpec,
            HighSigmaSpec,
            TechnologySpec,
        )

        hs = dict(
            operation="read",
            model="analytical",
            sigma_levels=(3.0, 6.0),
            proposals=2000,
            pilot_samples=256,
            mc_samples=8000,
        )
        hs.update(hs_overrides)
        return ExperimentSpec(
            kind="yield_hs",
            technology=TechnologySpec(overlay_three_sigma_nm=8.0),
            array=ArraySpec(sizes=(64,), overlay_budgets_nm=(8.0,)),
            high_sigma=HighSigmaSpec(**hs),
        )

    def test_spec_round_trips(self):
        from repro.core.spec import ExperimentSpec

        spec = self.make_spec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_spec_validation(self):
        from repro.core.spec import HighSigmaSpec, SpecError

        with pytest.raises(SpecError):
            HighSigmaSpec(model="bogus")
        with pytest.raises(SpecError):
            HighSigmaSpec(operation="write", model="analytical")
        with pytest.raises(SpecError):
            HighSigmaSpec(sigma_levels=())
        with pytest.raises(SpecError):
            HighSigmaSpec(proposals=10)
        with pytest.raises(SpecError):
            HighSigmaSpec(confidence=1.5)

    def test_fingerprint_stable_for_other_kinds(self):
        # Pre-existing kinds must keep their fingerprints (and hence any
        # cached results): high_sigma only enters the canonical form for
        # yield_hs specs.
        from repro.core.spec import ExperimentSpec, HighSigmaSpec

        base = ExperimentSpec(kind="yield")
        tweaked = ExperimentSpec(
            kind="yield", high_sigma=HighSigmaSpec(proposals=999)
        )
        assert "high_sigma" not in base.canonical_dict()
        assert base.fingerprint() == tweaked.fingerprint()
        hs_spec = self.make_spec()
        assert "high_sigma" in hs_spec.canonical_dict()

    def test_api_run_dispatches(self):
        from repro.api import run

        result = run(self.make_spec())
        assert result.kind == "yield_hs"
        records = [r for r in result.records if r.get("record") == "high_sigma"]
        assert len(records) == 6  # 3 corners (LELELE 8nm, SADP, EUV) x 2 levels
        meta = result.meta["high_sigma"]
        assert meta["total_simulator_calls"] <= 100_000
        assert meta["total_proposals"] == 6 * 2000
        three_sigma = [r for r in records if r["sigma_level"] == 3.0]
        assert all(r["mc_agrees"] for r in three_sigma)
        six_sigma = [r for r in records if r["sigma_level"] == 6.0]
        assert all(0.0 < r["ci_low"] <= r["ci_high"] < 1.0 for r in six_sigma)

    def test_result_set_renders_all_formats(self):
        from repro.api import run

        result = run(self.make_spec(sigma_levels=(3.0,)))
        text = result.to_text()
        assert "High-sigma yield" in text
        assert "MC check" in text
        payload = json.loads(result.to_json())
        assert payload["kind"] == "yield_hs"
        assert result.to_csv().splitlines()[0].startswith("record,")


class TestCli:
    def test_yield_hs_options_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "yield-hs",
                "--sigma-levels", "3", "4.5",
                "--hs-model", "surface",
                "--proposals", "500",
                "--format", "json",
            ]
        )
        assert args.command == "yield-hs"
        assert args.sigma_levels == [3.0, 4.5]
        assert args.hs_model == "surface"

    def test_yield_hs_smoke(self, capsys):
        from repro.cli import main

        code = main(
            [
                "yield-hs",
                "--sizes", "64",
                "--sigma-levels", "3",
                "--proposals", "500",
                "--pilot-samples", "64",
                "--mc-samples", "2000",
                "--format", "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "yield_hs"
        assert payload["n_records"] > 0

    def test_spec_dump_yield_hs(self, capsys):
        from repro.cli import main

        assert main(["spec", "dump", "--kind", "yield_hs", "--proposals", "1234"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "yield_hs"
        assert payload["high_sigma"]["proposals"] == 1234
