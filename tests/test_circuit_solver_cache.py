"""Factorisation reuse in the circuit solvers.

The DC and transient solvers share one :class:`CachedFactorSolver`: a
fixed CSC Jacobian template plus an LU cache keyed by the capacitance
scale (0 for DC, 1/dt for backward Euler, 2/dt for trapezoidal).  These
tests pin down both the correctness (cached solves equal fresh solves)
and the caching behaviour (linear circuits refactorise only when dt
changes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.dc import dc_operating_point
from repro.circuit.elements import Capacitor, Resistor, VoltageSource
from repro.circuit.mna import CachedFactorSolver, JacobianTemplate, MNAAssembler
from repro.circuit.mosfet import MOSFET
from repro.circuit.netlist import Circuit
from repro.circuit.transient import TransientOptions, TransientSolver
from repro.technology.transistors import default_n10_nmos


def rc_ladder(n: int = 50) -> Circuit:
    circuit = Circuit("ladder")
    circuit.add(VoltageSource.dc("vin", "n0", "0", 0.7))
    for index in range(n):
        circuit.add(Resistor(f"r{index}", f"n{index}", f"n{index + 1}", 100.0))
        circuit.add(Capacitor(f"c{index}", f"n{index + 1}", "0", 1e-16))
    return circuit


def nmos_divider() -> Circuit:
    circuit = Circuit("divider")
    circuit.add(VoltageSource.dc("vdd", "d", "0", 0.7))
    circuit.add(VoltageSource.dc("vg", "g", "0", 0.7))
    circuit.add(Resistor("rl", "d", "x", 5e3))
    circuit.add(MOSFET("m1", drain="x", gate="g", source="0", parameters=default_n10_nmos()))
    return circuit


class TestJacobianTemplate:
    def test_template_reproduces_static_matrices(self):
        assembler = MNAAssembler(rc_ladder(20))
        template = JacobianTemplate(assembler)
        g_ref = assembler.conductance_matrix.toarray()
        np.testing.assert_allclose(template.matrix(template.g_data).toarray(), g_ref)
        dt = 1e-13
        ref = (assembler.conductance_matrix + assembler.capacitance_matrix / dt).toarray()
        np.testing.assert_allclose(
            template.matrix(template.static_data(1.0 / dt)).toarray(), ref
        )

    def test_template_covers_mosfet_positions(self):
        assembler = MNAAssembler(nmos_divider())
        template = JacobianTemplate(assembler)
        stamp = assembler.nonlinear_stamp(np.full(assembler.size, 0.3))
        assert len(stamp.rows) == len(template.nl_positions)
        data = template.static_data(0.0)
        np.add.at(data, template.nl_positions, stamp.values)
        from scipy import sparse

        jac_nl = sparse.csr_matrix(
            (stamp.values, (stamp.rows, stamp.cols)),
            shape=(assembler.size, assembler.size),
        )
        ref = (assembler.conductance_matrix + jac_nl).toarray()
        np.testing.assert_allclose(template.matrix(data).toarray(), ref)

    def test_duplicate_stamp_positions_accumulate(self):
        # Two stacked MOSFETs share node "m": their (s,s) and (d,d) stamps
        # land on the same matrix position and must sum, not overwrite.
        circuit = Circuit("stack")
        circuit.add(VoltageSource.dc("vdd", "d", "0", 0.7))
        circuit.add(VoltageSource.dc("vg", "g", "0", 0.7))
        nmos = default_n10_nmos()
        circuit.add(MOSFET("m1", drain="d", gate="g", source="m", parameters=nmos))
        circuit.add(MOSFET("m2", drain="m", gate="g", source="0", parameters=nmos))
        assembler = MNAAssembler(circuit)
        template = JacobianTemplate(assembler)
        stamp = assembler.nonlinear_stamp(np.full(assembler.size, 0.35))
        data = template.static_data(0.0)
        np.add.at(data, template.nl_positions, stamp.values)
        from scipy import sparse

        jac_nl = sparse.csr_matrix(
            (stamp.values, (stamp.rows, stamp.cols)),
            shape=(assembler.size, assembler.size),
        )
        ref = (assembler.conductance_matrix + jac_nl).toarray()
        np.testing.assert_allclose(template.matrix(data).toarray(), ref)


class TestCachedFactorSolver:
    def test_linear_circuit_factorises_once_per_dt(self):
        assembler = MNAAssembler(rc_ladder(30))
        solver = CachedFactorSolver(assembler)
        stamp = assembler.nonlinear_stamp(np.zeros(assembler.size))
        rhs = np.ones(assembler.size)
        first = solver.solve(1.0 / 1e-13, stamp, rhs)
        for _ in range(5):
            again = solver.solve(1.0 / 1e-13, stamp, rhs)
            np.testing.assert_array_equal(first, again)
        assert solver.n_factorizations == 1
        solver.solve(1.0 / 2e-13, stamp, rhs)
        assert solver.n_factorizations == 2
        assert solver.n_solves == 7

    def test_changed_stamp_values_refactorise(self):
        assembler = MNAAssembler(nmos_divider())
        solver = CachedFactorSolver(assembler)
        rhs = np.ones(assembler.size)
        stamp_a = assembler.nonlinear_stamp(np.full(assembler.size, 0.2))
        stamp_b = assembler.nonlinear_stamp(np.full(assembler.size, 0.5))
        solver.solve(0.0, stamp_a, rhs)
        solver.solve(0.0, stamp_a, rhs)
        assert solver.n_factorizations == 1
        solver.solve(0.0, stamp_b, rhs)
        assert solver.n_factorizations == 2

    def test_solution_matches_dense_solve(self):
        assembler = MNAAssembler(nmos_divider())
        solver = CachedFactorSolver(assembler)
        stamp = assembler.nonlinear_stamp(np.full(assembler.size, 0.4))
        rhs = np.arange(1.0, assembler.size + 1.0)
        from scipy import sparse

        jac_nl = sparse.csr_matrix(
            (stamp.values, (stamp.rows, stamp.cols)),
            shape=(assembler.size, assembler.size),
        )
        dense = (assembler.conductance_matrix + jac_nl).toarray()
        expected = np.linalg.solve(dense, rhs)
        np.testing.assert_allclose(solver.solve(0.0, stamp, rhs), expected, rtol=1e-9)


class TestSolverIntegration:
    def test_transient_reuses_factorisations_on_linear_ladder(self):
        options = TransientOptions(t_stop_s=1e-10, record_nodes=["n30"])
        solver = TransientSolver(rc_ladder(30), options=options)
        result = solver.run()
        assert result.converged
        cache = solver.solver_cache
        assert cache.n_solves > cache.n_factorizations
        # One factorisation per distinct step size, not per Newton solve.
        assert cache.n_factorizations <= len(cache._static)

    def test_transient_matches_analytic_rc_discharge(self):
        # One-pole RC: V(t) = V0 (1 - exp(-t/RC)) with RC = 1e-11 s.
        circuit = Circuit("rc")
        circuit.add(VoltageSource.dc("vin", "in", "0", 1.0))
        circuit.add(Resistor("r1", "in", "out", 1e4))
        circuit.add(Capacitor("c1", "out", "0", 1e-15))
        options = TransientOptions(
            t_stop_s=5e-11,
            dt_max_s=5e-13,
            method="trapezoidal",
            record_nodes=["out"],
        )
        result = TransientSolver(circuit, options=options).run()
        rc = 1e4 * 1e-15
        expected = 1.0 - np.exp(-result.times_s / rc)
        np.testing.assert_allclose(result.voltages["out"], expected, atol=5e-3)

    def test_dc_operating_point_unchanged(self):
        result = dc_operating_point(nmos_divider())
        assert result.converged
        # The on NMOS sinks current through the 5k load, dropping node x
        # measurably below the supply.
        assert 0.0 < result.voltage("x") < 0.65
