"""Property-based tests (hypothesis) of the core data structures and invariants.

These cover the algebraic properties the rest of the library silently
relies on: patterning never loses tracks, extraction responds monotonically
to geometry, the analytical formula behaves like the rational polynomial
it claims to be, and the simulator's building blocks conserve totals.
"""

import math

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.analytical import AnalyticalDelayModel, discharge_constant
from repro.extraction.capacitance import sakurai_tamaru_coupling, sakurai_tamaru_ground
from repro.extraction.profiles import TrapezoidalProfile
from repro.layout.geometry import Interval, Rect
from repro.layout.wire import NetRole, Track, TrackPattern
from repro.patterning import euv, le3, sadp
from repro.sram.bitline import BitlineSpec, build_bitline_ladder
from repro.circuit.elements import Capacitor, Resistor

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

EPS = 2.3e-20  # a representative permittivity in F/nm


# -- strategies ----------------------------------------------------------------------

widths = st.floats(min_value=16.0, max_value=60.0)
spaces = st.floats(min_value=8.0, max_value=80.0)
small_deltas = st.floats(min_value=-3.0, max_value=3.0)
overlay_deltas = st.floats(min_value=-8.0, max_value=8.0)


@st.composite
def track_patterns(draw, n_tracks=st.integers(min_value=3, max_value=9)):
    """Non-overlapping parallel track patterns with varied widths/spaces."""
    count = draw(n_tracks)
    track_widths = [draw(widths) for _ in range(count)]
    track_spaces = [draw(spaces) for _ in range(count - 1)]
    tracks = []
    cursor = 0.0
    for index, width in enumerate(track_widths):
        center = cursor + width / 2.0
        tracks.append(Track(net=f"N{index}", center_nm=center, width_nm=width))
        cursor += width + (track_spaces[index] if index < count - 1 else 0.0)
    return TrackPattern(tracks, wire_length_nm=1000.0)


# -- geometry ------------------------------------------------------------------------


class TestGeometryProperties:
    @SETTINGS
    @given(
        st.floats(-100, 100), st.floats(-100, 100),
        st.floats(0.1, 50), st.floats(0.1, 50),
        st.floats(-20, 20), st.floats(-20, 20),
    )
    def test_rect_translation_preserves_area(self, cx, cy, w, h, dx, dy):
        rect = Rect.from_center(cx, cy, w, h)
        moved = rect.translated(dx, dy)
        assert moved.area == pytest.approx(rect.area, rel=1e-9)
        assert moved.width == pytest.approx(rect.width, rel=1e-9)

    @SETTINGS
    @given(st.floats(-50, 50), st.floats(0.1, 100), st.floats(0.0, 10))
    def test_interval_grow_then_shrink_is_identity(self, low, length, delta):
        interval = Interval(low, low + length)
        round_tripped = interval.grown(delta).grown(-delta)
        assert round_tripped.low == pytest.approx(interval.low, abs=1e-9)
        assert round_tripped.high == pytest.approx(interval.high, abs=1e-9)

    @SETTINGS
    @given(st.floats(-50, 50), st.floats(0.1, 100), st.floats(-50, 50), st.floats(0.1, 100))
    def test_interval_gap_is_symmetric(self, low_a, len_a, low_b, len_b):
        a = Interval(low_a, low_a + len_a)
        b = Interval(low_b, low_b + len_b)
        assert a.gap_to(b) == pytest.approx(b.gap_to(a), abs=1e-9)


# -- patterning ------------------------------------------------------------------------


class TestPatterningProperties:
    @SETTINGS
    @given(track_patterns(), small_deltas, small_deltas, small_deltas,
           overlay_deltas, overlay_deltas)
    def test_le3_preserves_track_count_and_nets(self, pattern, cd_a, cd_b, cd_c, ol_b, ol_c):
        parameters = {"cd:A": cd_a, "cd:B": cd_b, "cd:C": cd_c, "ol:B": ol_b, "ol:C": ol_c}
        try:
            result = le3().apply(pattern, parameters)
        except Exception:
            assume(False)   # pattern pinched off; not the property under test
            return
        assert len(result.printed) == len(pattern)
        assert set(result.printed.nets) == set(pattern.nets)

    @SETTINGS
    @given(track_patterns(), small_deltas)
    def test_euv_width_change_equals_cd_everywhere(self, pattern, cd):
        assume(all(space + min(0.0, -cd) > 0.5 for space in pattern.spaces()))
        assume(all(track.width_nm + cd > 0.5 for track in pattern))
        result = euv().apply(pattern, {"cd:euv": cd})
        for net in pattern.nets:
            assert result.width_change_nm(net) == pytest.approx(cd, abs=1e-9)
            assert result.center_shift_nm(net) == pytest.approx(0.0, abs=1e-9)

    @SETTINGS
    @given(track_patterns(), small_deltas, st.floats(-1.5, 1.5))
    def test_sadp_total_width_plus_gaps_conserved(self, pattern, core_cd, spacer):
        """SADP redistributes edges but the pattern extent moves only via the
        outermost mandrel CD (self-alignment: no overlay term anywhere)."""
        assume(all(space > 4.0 for space in pattern.spaces()))
        try:
            result = sadp().apply(pattern, {"cd:core": core_cd, "spacer": spacer})
        except Exception:
            assume(False)
            return
        assert len(result.printed) == len(pattern)
        # Gap changes are bounded by |spacer| + |core_cd|/2 (no 8 nm overlay jumps).
        for change in result.space_changes_nm():
            assert abs(change) <= abs(spacer) + abs(core_cd) / 2.0 + 1e-9

    @SETTINGS
    @given(track_patterns())
    def test_nominal_printing_is_identity_for_all_options(self, pattern):
        for option in (le3(), sadp(), euv()):
            result = option.nominal_result(pattern)
            for drawn, printed in zip(pattern, result.printed):
                assert printed.width_nm == pytest.approx(drawn.width_nm, abs=1e-9)
                assert printed.center_nm == pytest.approx(drawn.center_nm, abs=1e-9)


# -- extraction ------------------------------------------------------------------------


class TestExtractionProperties:
    @SETTINGS
    @given(widths, st.floats(20.0, 60.0), st.floats(20.0, 80.0))
    def test_ground_capacitance_positive_and_increasing_in_width(self, width, thickness, height):
        base = sakurai_tamaru_ground(width, thickness, height, EPS)
        wider = sakurai_tamaru_ground(width + 2.0, thickness, height, EPS)
        assert base > 0.0
        assert wider > base

    @SETTINGS
    @given(widths, st.floats(20.0, 60.0), st.floats(20.0, 80.0), st.floats(6.0, 60.0))
    def test_coupling_decreasing_in_space(self, width, thickness, height, space):
        near = sakurai_tamaru_coupling(width, thickness, height, space, EPS)
        far = sakurai_tamaru_coupling(width, thickness, height, space * 1.5, EPS)
        assert near > far > 0.0

    @SETTINGS
    @given(widths, st.floats(25.0, 60.0), st.floats(0.0, 4.0), st.floats(0.0, 3.0))
    def test_profile_conductor_area_shrinks_with_barrier_and_taper(self, width, thickness, barrier, taper):
        assume(width - 2.0 * barrier > 2.0)
        assume(width - 2.0 * thickness * math.tan(math.radians(taper)) > 2.0 * barrier + 1.0)
        bare = TrapezoidalProfile(width, thickness)
        dressed = TrapezoidalProfile(width, thickness, tapering_angle_deg=taper, barrier_thickness_nm=barrier)
        assert dressed.conductor_area_nm2 <= bare.conductor_area_nm2 + 1e-9


# -- analytical model --------------------------------------------------------------------


class TestAnalyticalProperties:
    def make_model(self):
        return AnalyticalDelayModel(
            a=discharge_constant(0.1),
            rbl_per_cell_ohm=8.5,
            cbl_per_cell_f=38e-18,
            rfe_ohm=40_000.0,
            cfe_per_cell_f=32e-18,
            cpre_fn=lambda n: 1e-16 * max(1, n // 8),
        )

    @SETTINGS
    @given(st.integers(1, 2048), st.floats(0.5, 1.5), st.floats(0.5, 2.0))
    def test_td_positive_and_polynomial_consistent(self, n, rvar, cvar):
        model = self.make_model()
        td = model.td_s(n, rvar, cvar)
        assert td > 0.0
        assert model.polynomial_coefficients(n, rvar, cvar).evaluate(n) == pytest.approx(td, rel=1e-9)

    @SETTINGS
    @given(st.integers(1, 2048), st.floats(0.5, 1.5), st.floats(1.0, 2.0))
    def test_tdp_at_least_one_when_only_capacitance_grows(self, n, _unused, cvar):
        model = self.make_model()
        assert model.tdp(n, 1.0, cvar) >= 1.0 - 1e-12

    @SETTINGS
    @given(st.integers(1, 2048), st.floats(0.5, 1.5), st.floats(0.5, 2.0))
    def test_tdp_monotonic_in_each_variation(self, n, rvar, cvar):
        model = self.make_model()
        assert model.tdp(n, rvar, cvar) <= model.tdp(n, rvar + 0.1, cvar) + 1e-12
        assert model.tdp(n, rvar, cvar) <= model.tdp(n, rvar, cvar + 0.1) + 1e-12

    @SETTINGS
    @given(st.floats(0.01, 0.95))
    def test_discharge_constant_inverts_exponential(self, fraction):
        a = discharge_constant(fraction)
        assert 1.0 - math.exp(-a) == pytest.approx(fraction, rel=1e-9)


# -- bit-line ladder -----------------------------------------------------------------------


class TestLadderProperties:
    @SETTINGS
    @given(
        st.integers(1, 1024),
        st.floats(1.0, 50.0),
        st.floats(5e-18, 2e-16),
        st.floats(0.0, 1e-16),
        st.integers(1, 64),
    )
    def test_ladder_conserves_totals_for_any_segmentation(self, n, r, c, cfe, segments):
        spec = BitlineSpec(
            n_cells=n,
            resistance_per_cell_ohm=r,
            capacitance_per_cell_f=c,
            frontend_capacitance_per_cell_f=cfe,
        )
        ladder = build_bitline_ladder(spec, "bl", segments=segments)
        total_r = sum(e.resistance_ohm for e in ladder.elements if isinstance(e, Resistor))
        total_c = sum(e.capacitance_f for e in ladder.elements if isinstance(e, Capacitor))
        assert total_r == pytest.approx(spec.total_resistance_ohm, rel=1e-9)
        assert total_c == pytest.approx(spec.total_capacitance_f, rel=1e-9)
        assert len(ladder.node_names) == ladder.segments + 1

    @SETTINGS
    @given(st.integers(1, 1024), st.floats(0.5, 1.5), st.floats(0.5, 1.5))
    def test_scaling_commutes_with_totals(self, n, rvar, cvar):
        spec = BitlineSpec(n, 8.5, 38e-18, 32e-18)
        scaled = spec.scaled(rvar, cvar)
        assert scaled.total_resistance_ohm == pytest.approx(spec.total_resistance_ohm * rvar, rel=1e-9)
        assert scaled.wire_capacitance_f == pytest.approx(spec.wire_capacitance_f * cvar, rel=1e-9)
