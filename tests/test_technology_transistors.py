"""Tests of the FinFET parameter containers and the SRAM device set."""

import pytest

from repro.technology.transistors import (
    DeviceError,
    DeviceType,
    FinFETParameters,
    SRAMTransistorSet,
    default_n10_nmos,
    default_n10_pmos,
    default_sram_transistors,
)


class TestFinFETParameters:
    def test_nmos_on_current_reasonable_at_0v7(self):
        nmos = default_n10_nmos()
        ion = nmos.on_current_a(0.7)
        # A single N10-class fin delivers on the order of tens of µA.
        assert 5e-6 < ion < 100e-6

    def test_on_current_scales_with_fins(self):
        nmos = default_n10_nmos()
        assert nmos.on_current_a(0.7, nfins=2) == pytest.approx(2.0 * nmos.on_current_a(0.7, nfins=1), rel=1e-12)

    def test_on_current_zero_below_threshold(self):
        nmos = default_n10_nmos()
        assert nmos.on_current_a(nmos.vth_v * 0.5) == 0.0

    def test_effective_resistance_positive(self):
        nmos = default_n10_nmos()
        assert nmos.effective_resistance_ohm(0.7) > 0.0

    def test_effective_resistance_raises_when_off(self):
        nmos = default_n10_nmos()
        with pytest.raises(DeviceError):
            nmos.effective_resistance_ohm(0.1)

    def test_scaled_returns_modified_copy(self):
        nmos = default_n10_nmos()
        faster = nmos.scaled(vth_v=0.25)
        assert faster.vth_v == 0.25
        assert nmos.vth_v == 0.30
        assert faster.on_current_a(0.7) > nmos.on_current_a(0.7)

    def test_rejects_alpha_out_of_range(self):
        with pytest.raises(DeviceError):
            default_n10_nmos().scaled(alpha=2.5)

    def test_rejects_nonpositive_vth(self):
        with pytest.raises(DeviceError):
            default_n10_nmos().scaled(vth_v=0.0)

    def test_rejects_negative_capacitance(self):
        with pytest.raises(DeviceError):
            default_n10_nmos().scaled(cdrain_f_per_fin=-1e-18)

    def test_pmos_weaker_than_nmos(self):
        assert default_n10_pmos().on_current_a(0.7) < default_n10_nmos().on_current_a(0.7)


class TestSRAMTransistorSet:
    def test_default_cell_is_one_one_one(self):
        cell = default_sram_transistors()
        assert (cell.pull_down_fins, cell.pass_gate_fins, cell.pull_up_fins) == (1, 1, 1)

    def test_beta_ratio_above_one_for_read_stability(self):
        cell = default_sram_transistors()
        assert cell.beta_ratio(0.7) > 1.0

    def test_discharge_path_resistance_is_series_sum(self):
        cell = default_sram_transistors()
        expected = cell.pass_gate.effective_resistance_ohm(0.7) + cell.pull_down.effective_resistance_ohm(0.7)
        assert cell.discharge_path_resistance_ohm(0.7) == pytest.approx(expected)

    def test_bitline_loading_is_pass_gate_drain_cap(self):
        cell = default_sram_transistors()
        assert cell.bitline_loading_capacitance_f() == pytest.approx(
            cell.pass_gate.cdrain_f_per_fin * cell.pass_gate_fins
        )

    def test_as_dict_contains_three_flavours(self):
        assert set(default_sram_transistors().as_dict()) == {"pull_down", "pass_gate", "pull_up"}

    def test_wrong_device_types_rejected(self):
        nmos = default_n10_nmos()
        pmos = default_n10_pmos()
        with pytest.raises(DeviceError):
            SRAMTransistorSet(pull_down=nmos, pass_gate=nmos, pull_up=nmos)
        with pytest.raises(DeviceError):
            SRAMTransistorSet(pull_down=pmos, pass_gate=nmos, pull_up=pmos)

    def test_fin_counts_must_be_positive(self):
        with pytest.raises(DeviceError):
            SRAMTransistorSet(
                pull_down=default_n10_nmos(),
                pass_gate=default_n10_nmos(),
                pull_up=default_n10_pmos(),
                pass_gate_fins=0,
            )
