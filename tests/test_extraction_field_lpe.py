"""Tests of the cross-section extractor and the parameterized LPE driver."""

import pytest

from repro.extraction.field import CrossSectionExtractor, ExtractionError
from repro.extraction.lpe import ParameterizedLPE, RCVariation
from repro.layout.wire import NetRole, Track, uniform_track_pattern
from repro.patterning import euv, le3, sadp
from tests.conftest import EUV_WORST_CORNER, LE3_WORST_CORNER, SADP_WORST_CORNER


class TestCrossSectionExtractor:
    def test_extracts_every_net(self, node, array64):
        extractor = CrossSectionExtractor(node.bitline_metal)
        result = extractor.extract(array64.metal1_pattern)
        assert len(result) == len(array64.metal1_pattern)
        assert set(result.nets) == set(array64.metal1_pattern.nets)

    def test_edge_tracks_have_less_coupling_than_central(self, node, array64):
        extractor = CrossSectionExtractor(node.bitline_metal)
        result = extractor.extract(array64.metal1_pattern)
        first_net = array64.metal1_pattern.nets[0]
        central_net, _ = array64.central_pair_nets()
        assert (
            result[first_net].capacitance_per_nm.coupling_total
            < result[central_net].capacitance_per_nm.coupling_total
        )

    def test_totals_scale_with_wire_length(self, node):
        pattern = uniform_track_pattern(["A", "B", "C"], 48.0, 24.0, 1000.0)
        extractor = CrossSectionExtractor(node.bitline_metal)
        short = extractor.extract(pattern)
        long = extractor.extract(pattern.with_wire_length(2000.0))
        assert long["B"].capacitance_total_f == pytest.approx(2.0 * short["B"].capacitance_total_f)
        assert long["B"].resistance_total_ohm == pytest.approx(2.0 * short["B"].resistance_total_ohm)

    def test_unknown_net_lookup_raises(self, node, array64):
        extractor = CrossSectionExtractor(node.bitline_metal)
        result = extractor.extract(array64.metal1_pattern)
        with pytest.raises(ExtractionError):
            result["NOPE"]

    def test_role_filter(self, node, array64):
        extractor = CrossSectionExtractor(node.bitline_metal)
        result = extractor.extract(array64.metal1_pattern)
        bitlines = result.nets_with_role(NetRole.BITLINE)
        assert len(bitlines) == array64.n_bitline_pairs

    def test_thickness_delta_changes_resistance(self, node, array64):
        thin = CrossSectionExtractor(node.bitline_metal, thickness_delta_nm=-4.0)
        thick = CrossSectionExtractor(node.bitline_metal, thickness_delta_nm=+4.0)
        net, _ = array64.central_pair_nets()
        r_thin = thin.extract(array64.metal1_pattern)[net].resistance_per_nm
        r_thick = thick.extract(array64.metal1_pattern)[net].resistance_per_nm
        assert r_thin > r_thick

    def test_per_cell_helper(self, node, array64):
        extractor = CrossSectionExtractor(node.bitline_metal)
        net, _ = array64.central_pair_nets()
        parasitics = extractor.extract(array64.metal1_pattern)[net]
        per_cell = parasitics.per_cell(240.0)
        assert per_cell.length_nm == 240.0
        assert per_cell.resistance_total_ohm == pytest.approx(parasitics.resistance_per_nm * 240.0)


class TestParameterizedLPE:
    def test_nominal_variation_is_identity(self, lpe, array64, le3_option):
        net, _ = array64.central_pair_nets()
        variation = lpe.rc_variation(array64.metal1_pattern, le3_option, {}, net)
        assert variation.rvar == pytest.approx(1.0, abs=1e-9)
        assert variation.cvar == pytest.approx(1.0, abs=1e-9)

    def test_le3_worst_corner_dominates_cbl(self, lpe, array64):
        net, _ = array64.central_pair_nets()
        le3_var = lpe.rc_variation(array64.metal1_pattern, le3(), LE3_WORST_CORNER, net)
        sadp_var = lpe.rc_variation(array64.metal1_pattern, sadp(), SADP_WORST_CORNER, net)
        euv_var = lpe.rc_variation(array64.metal1_pattern, euv(), EUV_WORST_CORNER, net)
        # Paper Table I ordering: LE3 >> EUV >= SADP for delta-Cbl.
        assert le3_var.delta_c_percent > 3.0 * euv_var.delta_c_percent
        assert le3_var.delta_c_percent > 3.0 * sadp_var.delta_c_percent
        assert le3_var.delta_c_percent > 30.0

    def test_sadp_resistance_drop_exceeds_others(self, lpe, array64):
        net, _ = array64.central_pair_nets()
        le3_var = lpe.rc_variation(array64.metal1_pattern, le3(), LE3_WORST_CORNER, net)
        sadp_var = lpe.rc_variation(array64.metal1_pattern, sadp(), SADP_WORST_CORNER, net)
        assert sadp_var.delta_r_percent < le3_var.delta_r_percent < 0.0

    def test_sadp_vss_anticorrelation(self, lpe, array64):
        """SADP's worst corner lowers Rbl but raises the VSS-rail resistance."""
        bl_net, _ = array64.central_pair_nets()
        column = array64.n_bitline_pairs // 2
        vss_net = f"VSS@{column}"
        extraction = lpe.extract_with_patterning(
            array64.metal1_pattern, sadp(), SADP_WORST_CORNER
        )
        assert extraction.variation_for(bl_net).delta_r_percent < 0.0
        assert extraction.variation_for(vss_net).delta_r_percent > 0.0

    def test_wider_cd_always_lowers_bitline_resistance(self, lpe, array64):
        net, _ = array64.central_pair_nets()
        variation = lpe.rc_variation(array64.metal1_pattern, euv(), {"cd:euv": 3.0}, net)
        assert variation.rvar < 1.0

    def test_delta_percent_round_trip(self):
        variation = RCVariation(net="BL", option_name="EUV", rvar=0.9, cvar=1.1)
        assert variation.delta_r_percent == pytest.approx(-10.0)
        assert variation.delta_c_percent == pytest.approx(10.0)

    def test_monte_carlo_variations_are_reproducible(self, lpe, array64):
        net, _ = array64.central_pair_nets()
        first = lpe.monte_carlo_variations(array64.metal1_pattern, euv(), net, 20, seed=11)
        second = lpe.monte_carlo_variations(array64.metal1_pattern, euv(), net, 20, seed=11)
        assert [v.cvar for v in first] == pytest.approx([v.cvar for v in second])

    def test_monte_carlo_centered_near_nominal(self, lpe, array64):
        net, _ = array64.central_pair_nets()
        variations = lpe.monte_carlo_variations(array64.metal1_pattern, euv(), net, 200, seed=5)
        mean_cvar = sum(v.cvar for v in variations) / len(variations)
        assert mean_cvar == pytest.approx(1.0, abs=0.02)

    def test_corner_variations_match_individual_calls(self, lpe, array64):
        net, _ = array64.central_pair_nets()
        corners = [EUV_WORST_CORNER, {"cd:euv": -3.0}]
        batch = lpe.corner_variations(array64.metal1_pattern, euv(), net, corners)
        single = lpe.rc_variation(array64.metal1_pattern, euv(), EUV_WORST_CORNER, net)
        assert batch[0].cvar == pytest.approx(single.cvar)
        assert len(batch) == 2

    def test_extract_array_equivalent_to_pattern(self, lpe, array64):
        from_array = lpe.extract_array(array64)
        from_pattern = lpe.extract_pattern(array64.metal1_pattern)
        net, _ = array64.central_pair_nets()
        assert from_array[net].capacitance_total_f == pytest.approx(
            from_pattern[net].capacitance_total_f
        )
