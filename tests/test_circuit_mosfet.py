"""Tests of the alpha-power-law MOSFET model."""

import pytest

from repro.circuit.elements import ElementError
from repro.circuit.mosfet import MOSFET
from repro.technology.transistors import default_n10_nmos, default_n10_pmos


def nmos(nfins=1):
    return MOSFET("mn", "d", "g", "s", default_n10_nmos(), nfins=nfins)


def pmos(nfins=1):
    return MOSFET("mp", "d", "g", "s", default_n10_pmos(), nfins=nfins)


class TestNMOSCurrents:
    def test_off_below_threshold(self):
        assert nmos().drain_current_a(0.7, 0.0, 0.0) == pytest.approx(0.0, abs=1e-9)

    def test_on_current_positive(self):
        assert nmos().drain_current_a(0.7, 0.7, 0.0) > 1e-5

    def test_saturation_current_nearly_flat_in_vds(self):
        device = nmos()
        i_sat1 = device.drain_current_a(0.5, 0.7, 0.0)
        i_sat2 = device.drain_current_a(0.7, 0.7, 0.0)
        assert i_sat2 > i_sat1
        assert (i_sat2 - i_sat1) / i_sat2 < 0.05

    def test_linear_region_current_smaller_than_saturation(self):
        device = nmos()
        assert device.drain_current_a(0.05, 0.7, 0.0) < device.drain_current_a(0.7, 0.7, 0.0)

    def test_current_monotonic_in_vgs(self):
        device = nmos()
        currents = [device.drain_current_a(0.7, vgs, 0.0) for vgs in (0.3, 0.4, 0.5, 0.6, 0.7)]
        assert all(later > earlier for earlier, later in zip(currents, currents[1:]))

    def test_current_monotonic_in_vds(self):
        device = nmos()
        currents = [device.drain_current_a(vds, 0.7, 0.0) for vds in (0.05, 0.1, 0.2, 0.4, 0.7)]
        assert all(later > earlier for earlier, later in zip(currents, currents[1:]))

    def test_symmetric_conduction_reverses_sign(self):
        device = nmos()
        forward = device.drain_current_a(0.3, 0.7, 0.0)
        reverse = device.drain_current_a(0.0, 0.7, 0.3)
        assert reverse == pytest.approx(-forward, rel=1e-6)

    def test_zero_vds_zero_current(self):
        assert nmos().drain_current_a(0.0, 0.7, 0.0) == pytest.approx(0.0, abs=1e-12)

    def test_fins_multiply_current(self):
        assert nmos(nfins=3).drain_current_a(0.7, 0.7, 0.0) == pytest.approx(
            3.0 * nmos(nfins=1).drain_current_a(0.7, 0.7, 0.0)
        )

    def test_nfins_must_be_positive(self):
        with pytest.raises(ElementError):
            MOSFET("m", "d", "g", "s", default_n10_nmos(), nfins=0)


class TestPMOSCurrents:
    def test_off_when_gate_high(self):
        # Source at Vdd, gate at Vdd: |Vgs| = 0, device off.
        assert abs(pmos().drain_current_a(0.0, 0.7, 0.7)) < 1e-9

    def test_on_when_gate_low(self):
        # Source at Vdd, gate at 0: current flows out of the drain (negative
        # by the NMOS drain-current sign convention).
        assert pmos().drain_current_a(0.0, 0.0, 0.7) < -1e-6

    def test_weaker_than_nmos(self):
        n_current = nmos().drain_current_a(0.7, 0.7, 0.0)
        p_current = abs(pmos().drain_current_a(0.0, 0.0, 0.7))
        assert p_current < n_current


class TestOperatingPoint:
    def test_conductances_positive_in_on_state(self):
        op = nmos().operating_point(0.35, 0.7, 0.0)
        assert op.ids_a > 0.0
        assert op.gm_s > 0.0
        assert op.gds_s > 0.0

    def test_gm_larger_than_gds_in_saturation(self):
        op = nmos().operating_point(0.7, 0.7, 0.0)
        assert op.gm_s > op.gds_s

    def test_off_state_conductances_negligible(self):
        op = nmos().operating_point(0.7, 0.0, 0.0)
        assert abs(op.ids_a) < 1e-9
        assert abs(op.gm_s) < 1e-6

    def test_saturated_flag(self):
        assert nmos().operating_point(0.7, 0.7, 0.0).saturated


class TestCapacitancesAndHelpers:
    def test_terminal_capacitances_scale_with_fins(self):
        single = nmos(nfins=1).terminal_capacitances_f()
        double = nmos(nfins=2).terminal_capacitances_f()
        assert double["g"] == pytest.approx(2.0 * single["g"])

    def test_on_current_helper_positive_for_both_types(self):
        assert nmos().on_current_a(0.7) > 0.0
        assert pmos().on_current_a(0.7) > 0.0

    def test_nodes(self):
        assert nmos().nodes() == ("d", "g", "s")
