"""Tests of the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENT_COMMANDS, build_parser, main


FAST = ["--sizes", "16", "--samples", "40", "--seed", "3"]


class TestParser:
    def test_all_experiment_commands_registered(self):
        parser = build_parser()
        for command in EXPERIMENT_COMMANDS + ("all", "verdict", "yield"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_common_options_after_subcommand(self):
        args = build_parser().parse_args(["table4", "--samples", "123", "--overlay-nm", "5"])
        assert args.samples == 123
        assert args.overlay_nm == 5.0

    def test_sizes_accept_multiple_values(self):
        args = build_parser().parse_args(["fig4", "--sizes", "16", "64"])
        assert args.sizes == [16, 64]

    def test_yield_specific_options(self):
        args = build_parser().parse_args(["yield", "--budget", "12", "--ppm", "50"])
        assert args.budget == 12.0
        assert args.ppm == 50.0

    def test_workers_option_on_any_subcommand(self):
        args = build_parser().parse_args(["fig4", "--workers", "4"])
        assert args.workers == 4

    def test_operation_commands_registered(self):
        parser = build_parser()
        for command in ("write", "margins"):
            args = parser.parse_args([command])
            assert args.command == command
            assert args.mc_sigma is False
        assert parser.parse_args(["write", "--mc-sigma"]).mc_sigma is True

    def test_campaign_operations_axis_option(self):
        args = build_parser().parse_args(
            ["campaign", "--operations", "read", "write", "hold_snm"]
        )
        assert args.operations == ["read", "write", "hold_snm"]

    def test_campaign_rejects_unknown_operation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--operations", "erase"])

    def test_campaign_specific_options(self):
        args = build_parser().parse_args(
            [
                "campaign",
                "--format", "json",
                "--store", "runs/x",
                "--overlay-sweep", "3", "8",
                "--stored-values", "0", "1",
                "--strap-intervals", "64", "256",
                "--methods", "backward-euler", "trapezoidal",
            ]
        )
        assert args.format == "json"
        assert args.store == "runs/x"
        assert args.overlay_sweep == [3.0, 8.0]
        assert args.stored_values == [0, 1]
        assert args.strap_intervals == [64, 256]
        assert args.methods == ["backward-euler", "trapezoidal"]

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_table1_prints_paper_style_table(self, capsys):
        assert main(["table1"] + FAST) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "LELELE" in out and "SADP" in out and "EUV" in out

    def test_table4_respects_sample_count(self, capsys):
        assert main(["table4"] + FAST) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "LELELE 8nm OL" in out

    def test_fig3_emits_csv(self, capsys):
        assert main(["fig3"] + FAST) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("label,")

    def test_fig2_emits_distortion_strips(self, capsys):
        assert main(["fig2"] + FAST) == 0
        out = capsys.readouterr().out
        assert "drawn" in out and "printed" in out

    def test_fig4_runs_simulations(self, capsys):
        assert main(["fig4"] + FAST) == 0
        out = capsys.readouterr().out
        assert "Nominal td (ps)" in out
        assert "10x16" in out

    def test_verdict_names_an_option(self, capsys):
        assert main(["verdict"] + FAST) == 0
        out = capsys.readouterr().out
        assert "Recommended multiple-patterning option:" in out

    def test_yield_reports_ppm_and_requirement(self, capsys):
        assert main(["yield", "--budget", "8", "--ppm", "1000"] + FAST) == 0
        out = capsys.readouterr().out
        assert "violation_probability" in out
        assert "ppm target" in out

    def test_overlay_option_changes_the_study(self, capsys):
        assert main(["table1", "--overlay-nm", "3"] + FAST) == 0
        tight = capsys.readouterr().out
        assert main(["table1", "--overlay-nm", "8"] + FAST) == 0
        loose = capsys.readouterr().out
        assert tight != loose
        assert "ol:B=-3.0" in tight or "ol:B=+3.0" in tight

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["table1", "--output", str(target)] + FAST) == 0
        assert capsys.readouterr().out == ""
        assert "Table I" in target.read_text()

    def test_table2_and_table3(self, capsys):
        assert main(["table2"] + FAST) == 0
        assert "Table II" in capsys.readouterr().out
        assert main(["table3"] + FAST) == 0
        assert "Table III" in capsys.readouterr().out

    def test_fig5_prints_histograms(self, capsys):
        assert main(["fig5"] + FAST) == 0
        out = capsys.readouterr().out
        assert "tdp distribution" in out


class TestCampaignCommand:
    def test_campaign_text_report(self, capsys):
        assert main(["campaign"] + FAST) == 0
        out = capsys.readouterr().out
        assert "Simulation campaign: 4 records" in out
        assert "(nominal)" in out and "LELELE" in out

    def test_campaign_json_report(self, capsys):
        assert main(["campaign", "--format", "json"] + FAST) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["n_records"] == 4
        assert report["campaign"]["array_sizes"] == [16]
        kinds = {record["kind"] for record in report["records"]}
        assert kinds == {"nominal", "corner"}

    def test_campaign_csv_report(self, capsys):
        assert main(["campaign", "--format", "csv"] + FAST) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("key,kind,scenario,")
        assert len(lines) == 5

    def test_campaign_store_resume(self, tmp_path, capsys):
        def physics(text):
            # Everything above the solver summary is the physics report
            # and must be byte-identical across a resume; the summary
            # itself counts this run's solves, which a fully-resumed run
            # legitimately reports as zero.
            return text.split("Solver summary")[0]

        store = str(tmp_path / "store")
        assert main(["campaign", "--store", store] + FAST) == 0
        first = capsys.readouterr().out
        assert (tmp_path / "store" / "campaign.json").exists()
        assert len(list((tmp_path / "store" / "items").glob("*.json"))) == 4
        assert main(["campaign", "--store", store] + FAST) == 0
        resumed = capsys.readouterr().out
        assert physics(resumed) == physics(first)
        assert "Solver summary" in resumed
        # The resumed run loaded every record from the store: no solves.
        assert "| 0" in resumed.split("Solver summary")[1]

    def test_campaign_workers_and_scenario_axes(self, capsys):
        assert (
            main(
                ["campaign", "--workers", "2", "--stored-values", "0", "1"] + FAST
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Simulation campaign: 8 records" in out

    def test_campaign_operations_axis(self, capsys):
        assert main(["campaign", "--operations", "read", "write"] + FAST) == 0
        out = capsys.readouterr().out
        assert "Simulation campaign: 8 records" in out
        assert "write" in out

    def test_fig4_with_output_file_smoke(self, tmp_path, capsys):
        target = tmp_path / "fig4.txt"
        assert main(["fig4", "--sizes", "16", "--output", str(target)] + FAST[2:]) == 0
        assert capsys.readouterr().out == ""
        content = target.read_text()
        assert "Fig. 4" in content and "10x16" in content

    def test_fig4_workers_matches_serial(self, capsys):
        assert main(["fig4"] + FAST) == 0
        serial = capsys.readouterr().out
        assert main(["fig4", "--workers", "2"] + FAST) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial


class TestOperationCommands:
    def test_write_command_prints_the_impact_table(self, capsys):
        assert main(["write", "--workers", "2"] + FAST) == 0
        out = capsys.readouterr().out
        assert "Operation suite (write)" in out
        assert "Nominal (ps)" in out
        assert "10x16" in out

    def test_margins_command_prints_both_snm_tables(self, capsys):
        assert main(["margins"] + FAST) == 0
        out = capsys.readouterr().out
        assert "hold_snm" in out and "read_snm" in out
        assert "Nominal (mV)" in out
        assert "10x16" in out

    def test_write_workers_matches_serial(self, capsys):
        assert main(["write"] + FAST) == 0
        serial = capsys.readouterr().out
        assert main(["write", "--workers", "2"] + FAST) == 0
        assert capsys.readouterr().out == serial


class TestDeclarativeCommands:
    """The spec-driven surface: --version, run, spec dump/validate, exit 2."""

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_spec_dump_emits_valid_json(self, capsys):
        assert main(["spec", "dump", "--kind", "campaign"] + FAST) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "campaign"
        assert payload["array"]["sizes"] == [16]
        assert payload["operation"]["samples"] == 40
        assert payload["execution"]["seed"] == 3

    def test_spec_dump_validate_round_trip(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        assert (
            main(["spec", "dump", "--kind", "worst_case", "--output", str(spec_path)])
            == 0
        )
        assert main(["spec", "validate", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK: worst_case spec")

    def test_run_executes_a_dumped_campaign_spec(self, tmp_path, capsys):
        spec_path = tmp_path / "campaign.json"
        assert main(["spec", "dump", "--output", str(spec_path)] + FAST) == 0
        capsys.readouterr()
        assert main(["run", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "Simulation campaign: 4 records" in out

    def test_run_matches_the_campaign_shim(self, tmp_path, capsys):
        def strip_wall_clock(csv_text):
            # The trailing wall_s column is wall-clock timing, the one
            # legitimately nondeterministic field of a record.
            return [line.rsplit(",", 1)[0] for line in csv_text.splitlines()]

        spec_path = tmp_path / "campaign.json"
        assert main(["spec", "dump", "--output", str(spec_path)] + FAST) == 0
        capsys.readouterr()
        assert main(["run", str(spec_path), "--format", "csv"]) == 0
        from_spec = capsys.readouterr().out
        assert main(["campaign", "--format", "csv"] + FAST) == 0
        from_shim = capsys.readouterr().out
        assert strip_wall_clock(from_spec) == strip_wall_clock(from_shim)

    def test_run_json_has_records(self, tmp_path, capsys):
        spec_path = tmp_path / "t1.json"
        assert main(["spec", "dump", "--kind", "worst_case", "--output", str(spec_path)]) == 0
        capsys.readouterr()
        assert main(["run", str(spec_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_records"] == 3
        assert payload["records"]

    def test_missing_spec_file_exits_two(self, capsys):
        assert main(["run", "no-such-spec.json"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")

    def test_invalid_spec_document_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "erase"}', encoding="utf-8")
        assert main(["run", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "kind" in err and "Traceback" not in err

    def test_mismatched_store_exits_two(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["campaign", "--store", store] + FAST) == 0
        capsys.readouterr()
        assert main(["campaign", "--store", store, "--sizes", "16", "64"] + FAST[2:]) == 2
        err = capsys.readouterr().err
        assert "different campaign" in err

    def test_table1_shim_matches_study_rendering(self, capsys):
        from repro.reporting.tables import format_table1
        from repro.core.worst_case import WorstCaseStudy
        from repro.technology.node import n10

        assert main(["table1"] + FAST) == 0
        out = capsys.readouterr().out
        assert out == format_table1(WorstCaseStudy(n10()).table1()) + "\n"


class TestSpecDumpRunConsistency:
    """Every spec `spec dump` emits must be accepted by `repro run`."""

    def test_operations_dump_with_axis_flags_runs(self, tmp_path, capsys):
        spec_path = tmp_path / "ops.json"
        assert (
            main(
                [
                    "spec", "dump",
                    "--kind", "operations",
                    "--operations", "write",
                    "--overlay-sweep", "5",
                    "--output", str(spec_path),
                ]
                + FAST
            )
            == 0
        )
        assert main(["spec", "validate", str(spec_path)]) == 0
        capsys.readouterr()
        assert main(["run", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "Operation suite (write)" in out

    def test_bad_scalar_in_spec_exits_two(self, tmp_path, capsys):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(
            '{"kind": "campaign", "operation": {"samples": "many"}}',
            encoding="utf-8",
        )
        assert main(["run", str(spec_path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:") and "Traceback" not in err


class TestServiceVerbs:
    """The `serve` / `submit` verbs and the hardened run/submit error paths."""

    def test_serve_and_submit_parsers_registered(self):
        parser = build_parser()
        serve = parser.parse_args(
            ["serve", "--port", "0", "--cache-dir", "runs/cache", "--workers", "3"]
        )
        assert serve.command == "serve"
        assert serve.port == 0 and serve.cache_dir == "runs/cache" and serve.workers == 3
        submit = parser.parse_args(
            ["submit", "spec.json", "--wait", "--format", "csv",
             "--url", "http://127.0.0.1:9", "--timeout", "7", "--output", "x.csv"]
        )
        assert submit.command == "submit"
        assert submit.wait and submit.format == "csv" and submit.timeout == 7.0

    @pytest.mark.parametrize("fmt", ["text", "json", "csv"])
    def test_run_missing_spec_exits_two_for_every_format(self, fmt, capsys):
        assert main(["run", "no-such-spec.json", "--format", fmt]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:") and "Traceback" not in err
        assert err.count("\n") == 1  # one-line message

    @pytest.mark.parametrize("fmt", ["text", "json", "csv"])
    def test_submit_missing_spec_exits_two_for_every_format(self, fmt, capsys):
        assert main(["submit", "no-such-spec.json", "--wait", "--format", fmt]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:") and "Traceback" not in err
        assert err.count("\n") == 1

    def test_run_unreadable_spec_directory_exits_two(self, tmp_path, capsys):
        assert main(["run", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:") and "Traceback" not in err

    def test_submit_without_server_exits_two(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        assert main(["spec", "dump", "--output", str(spec_path)] + FAST) == 0
        capsys.readouterr()
        # Port 9 (discard) refuses connections; the client must surface a
        # one-line ServiceError, not a traceback.
        assert main(
            ["submit", str(spec_path), "--url", "http://127.0.0.1:9", "--wait"]
        ) == 2
        err = capsys.readouterr().err
        assert "cannot reach the experiment server" in err

    def test_run_output_into_missing_directory_exits_two(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        assert main(["spec", "dump", "--kind", "worst_case", "--output", str(spec_path)]) == 0
        capsys.readouterr()
        missing = tmp_path / "no" / "such" / "dir" / "out.txt"
        assert main(["run", str(spec_path), "--output", str(missing)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:") and "Traceback" not in err

    def test_run_output_writes_the_report_atomically(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        assert main(["spec", "dump", "--kind", "worst_case", "--output", str(spec_path)]) == 0
        out_path = tmp_path / "report.csv"
        out_path.write_text("stale", encoding="utf-8")
        assert main(["run", str(spec_path), "--format", "csv", "--output", str(out_path)]) == 0
        capsys.readouterr()
        text = out_path.read_text(encoding="utf-8")
        assert text.startswith("record,") and "stale" not in text
        leftovers = [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_submit_round_trip_against_a_live_server(self, tmp_path, capsys):
        from repro.service.server import ExperimentServer

        spec_path = tmp_path / "spec.json"
        assert main(["spec", "dump", "--kind", "worst_case", "--output", str(spec_path)]) == 0
        capsys.readouterr()
        with ExperimentServer(cache_dir=tmp_path / "cache", workers=1) as server:
            out_path = tmp_path / "result.json"
            assert main(
                ["submit", str(spec_path), "--url", server.url,
                 "--wait", "--format", "json", "--output", str(out_path)]
            ) == 0
            payload = json.loads(out_path.read_text(encoding="utf-8"))
            assert payload["kind"] == "worst_case" and payload["n_records"] > 0
            # Fire-and-forget submission prints the ticket (now a cache hit).
            assert main(["submit", str(spec_path), "--url", server.url]) == 0
            ticket = json.loads(capsys.readouterr().out)
            assert ticket["cached"] is True and ticket["state"] == "done"


class TestFailurePolicyVerbs:
    """The fault-tolerance surface of the CLI: --failure-policy, the
    partial-result exit code 3, and the serve/submit robustness knobs."""

    def test_failure_policy_parser(self):
        args = build_parser().parse_args(
            ["run", "spec.json", "--failure-policy", "skip"]
        )
        assert args.failure_policy == "skip"
        assert build_parser().parse_args(["run", "spec.json"]).failure_policy is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "spec.json", "--failure-policy", "explode"])

    def test_serve_parser_accepts_durability_knobs(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--journal", "runs/journal.jsonl",
                "--job-timeout", "120",
                "--drain-timeout", "3",
            ]
        )
        assert args.journal == "runs/journal.jsonl"
        assert args.job_timeout == 120.0
        assert args.drain_timeout == 3.0
        assert build_parser().parse_args(["serve"]).drain_timeout == 10.0

    def test_submit_parser_accepts_retries(self):
        assert build_parser().parse_args(["submit", "s.json", "--retries", "5"]).retries == 5
        assert build_parser().parse_args(["submit", "s.json"]).retries == 2

    def test_run_with_skip_policy_exits_three_on_a_partial_result(
        self, tmp_path, capsys
    ):
        from repro.testing import FaultPlan
        from repro.testing.faults import injected

        spec_path = tmp_path / "campaign.json"
        assert main(["spec", "dump", "--output", str(spec_path)] + FAST) == 0
        capsys.readouterr()
        # Every solver call faults: with `skip` the run still finishes,
        # reports the failed items, and signals partiality via exit 3.
        with injected(FaultPlan(solver_fail_rate=1.0, solver_fail_attempts=99)):
            assert main(["run", str(spec_path), "--failure-policy", "skip"]) == 3
        out = capsys.readouterr().out
        assert "PARTIAL" in out
        assert "injected" in out

    def test_run_partial_json_counts_failures(self, tmp_path, capsys):
        from repro.testing import FaultPlan
        from repro.testing.faults import injected

        spec_path = tmp_path / "campaign.json"
        assert main(["spec", "dump", "--output", str(spec_path)] + FAST) == 0
        capsys.readouterr()
        with injected(FaultPlan(solver_fail_rate=1.0, solver_fail_attempts=99)):
            assert main(
                ["run", str(spec_path), "--failure-policy", "skip", "--format", "json"]
            ) == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_failures"] > 0
        assert any(r.get("record") == "failure" for r in payload["records"])

    def test_clean_run_still_exits_zero_with_a_policy(self, tmp_path, capsys):
        spec_path = tmp_path / "campaign.json"
        assert main(["spec", "dump", "--output", str(spec_path)] + FAST) == 0
        capsys.readouterr()
        assert main(["run", str(spec_path), "--failure-policy", "retry"]) == 0
