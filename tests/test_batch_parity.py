"""Parity of the batched Monte-Carlo pipeline against the scalar oracle.

The vectorised path (batched sampling → batched printing → batched
extraction → array-valued analytical model) must reproduce the scalar
per-sample loop element-wise: identical random streams by construction,
and identical arithmetic up to floating-point round-off (``rtol <= 1e-12``)
for every patterning option and every paper array size (16/64/256/1024).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analytical import model_from_technology
from repro.core.montecarlo import MonteCarloTdpStudy
from repro.extraction.lpe import ParameterizedLPE
from repro.layout.array import PAPER_ARRAY_SIZES, generate_array_layout
from repro.patterning import PAPER_OPTIONS, create_option
from repro.patterning.sampler import ParameterSampler
from repro.variability.doe import DOEPoint

RTOL = 1e-12

OPTIONS = list(PAPER_OPTIONS) + ["LELE"]


@pytest.fixture(scope="module")
def node():
    from repro.technology.node import n10

    return n10()


@pytest.fixture(scope="module")
def layout(node):
    return generate_array_layout(n_wordlines=64, n_bitline_pairs=4, node=node)


class TestSamplerParity:
    @pytest.mark.parametrize("option_name", OPTIONS)
    @pytest.mark.parametrize("count", [16, 64, 256])
    def test_batched_draws_bitwise_match_scalar_draws(self, node, option_name, count):
        option = create_option(option_name)
        batch = ParameterSampler(option, node.variations, seed=101).draw_batch(count)
        scalar = ParameterSampler(option, node.variations, seed=101).draw_many(count)
        assert len(batch) == count
        for row, sample in enumerate(scalar):
            for column, name in enumerate(batch.parameter_names):
                assert batch.matrix[row, column] == sample.values[name]

    def test_truncated_draws_bitwise_match(self, node):
        option = create_option("LELELE")
        batch = ParameterSampler(
            option, node.variations, seed=5, truncate_at_three_sigma=True
        ).draw_batch(128)
        scalar = ParameterSampler(
            option, node.variations, seed=5, truncate_at_three_sigma=True
        ).draw_many(128)
        for row, sample in enumerate(scalar):
            for column, name in enumerate(batch.parameter_names):
                assert batch.matrix[row, column] == sample.values[name]

    def test_batch_values_round_trip_to_scalar_dicts(self, node):
        option = create_option("SADP")
        batch = ParameterSampler(option, node.variations, seed=3).draw_batch(8)
        for index, sample in enumerate(batch):
            assert sample.index == index
            assert sample.values == batch.values_at(index)


class TestPrintingParity:
    @pytest.mark.parametrize("option_name", OPTIONS)
    def test_apply_batch_edges_match_scalar_apply(self, node, layout, option_name):
        option = create_option(option_name)
        pattern = layout.metal1_pattern
        batch = ParameterSampler(option, node.variations, seed=17).draw_batch(32)
        geometry = option.apply_batch(pattern, batch.matrix, batch.parameter_names)
        for index in range(len(batch)):
            printed = option.apply(pattern, batch.values_at(index)).printed
            for column, track in enumerate(printed):
                assert geometry.nets[column] == track.net
                np.testing.assert_allclose(
                    geometry.left_edges_nm[index, column], track.left_edge_nm, rtol=RTOL
                )
                np.testing.assert_allclose(
                    geometry.right_edges_nm[index, column], track.right_edge_nm, rtol=RTOL
                )

    def test_fallback_apply_batch_matches_vectorised(self, node, layout):
        from repro.patterning.base import PatterningOption

        option = create_option("LELELE")
        pattern = layout.metal1_pattern
        batch = ParameterSampler(option, node.variations, seed=23).draw_batch(8)
        fast = option.apply_batch(pattern, batch.matrix, batch.parameter_names)
        slow = PatterningOption.apply_batch(
            option, pattern, batch.matrix, batch.parameter_names
        )
        np.testing.assert_allclose(fast.left_edges_nm, slow.left_edges_nm, rtol=RTOL)
        np.testing.assert_allclose(fast.right_edges_nm, slow.right_edges_nm, rtol=RTOL)


class TestExtractionParity:
    @pytest.mark.parametrize("option_name", OPTIONS)
    def test_batched_rc_variations_match_scalar_loop(self, node, layout, option_name):
        option = create_option(option_name)
        pattern = layout.metal1_pattern
        bl_net, _ = layout.central_pair_nets()
        lpe = ParameterizedLPE(node)
        scalar = lpe.monte_carlo_variations(pattern, option, bl_net, 64, seed=29)
        batch = lpe.monte_carlo_variations_batch(pattern, option, bl_net, 64, seed=29)
        assert len(batch) == len(scalar)
        np.testing.assert_allclose(
            batch.rvar, [v.rvar for v in scalar], rtol=RTOL
        )
        np.testing.assert_allclose(
            batch.cvar, [v.cvar for v in scalar], rtol=RTOL
        )

    def test_batch_variation_scalar_views(self, node, layout):
        option = create_option("EUV")
        pattern = layout.metal1_pattern
        bl_net, _ = layout.central_pair_nets()
        lpe = ParameterizedLPE(node)
        batch = lpe.monte_carlo_variations_batch(pattern, option, bl_net, 16, seed=1)
        as_list = batch.to_list()
        assert len(as_list) == 16
        assert as_list[3].rvar == pytest.approx(float(batch.rvar[3]))
        assert as_list[3].parameters.keys() == set(batch.parameter_names)

    def test_nominal_extraction_is_cached(self, node, layout):
        lpe = ParameterizedLPE(node)
        pattern = layout.metal1_pattern
        first = lpe.nominal_extraction(pattern)
        second = lpe.nominal_extraction(pattern)
        assert first is second
        # A different thickness delta is a different cache entry.
        third = lpe.nominal_extraction(pattern, thickness_delta_nm=1.0)
        assert third is not first


class TestAnalyticalParity:
    @pytest.mark.parametrize("n_wordlines", PAPER_ARRAY_SIZES)
    def test_array_valued_model_matches_scalar(self, node, n_wordlines):
        model = model_from_technology(node, n_bitline_pairs=4)
        rng = np.random.default_rng(n_wordlines)
        rvar = 1.0 + 0.1 * rng.standard_normal(256)
        cvar = 1.0 + 0.1 * rng.standard_normal(256)
        batched = model.tdp_percent(n_wordlines, rvar, cvar)
        scalar = [
            model.tdp_percent(n_wordlines, float(r), float(c))
            for r, c in zip(rvar, cvar)
        ]
        np.testing.assert_allclose(batched, scalar, rtol=RTOL)

    def test_array_valued_array_sizes(self, node):
        model = model_from_technology(node, n_bitline_pairs=4)
        sizes = np.array(PAPER_ARRAY_SIZES)
        batched = model.td_s(sizes, 1.05, 0.97)
        scalar = [model.td_s(int(n), 1.05, 0.97) for n in sizes]
        np.testing.assert_allclose(batched, scalar, rtol=RTOL)

    def test_array_validation_still_raises(self, node):
        from repro.core.analytical import AnalyticalModelError

        model = model_from_technology(node, n_bitline_pairs=4)
        with pytest.raises(AnalyticalModelError):
            model.td_s(64, np.array([1.0, -0.5]), 1.0)
        with pytest.raises(AnalyticalModelError):
            model.td_s(np.array([64, 0]), 1.0, 1.0)


class TestStudyParity:
    @pytest.mark.parametrize("option_name", PAPER_OPTIONS)
    @pytest.mark.parametrize("n_wordlines", PAPER_ARRAY_SIZES)
    def test_batched_study_matches_scalar_study(self, node, option_name, n_wordlines):
        overlay = 8.0 if option_name.upper().startswith("LE") else None
        point = DOEPoint(
            n_wordlines=n_wordlines,
            option_name=option_name,
            overlay_three_sigma_nm=overlay,
        )
        kwargs = dict(node=node, n_samples=48, seed=2015)
        scalar_record = MonteCarloTdpStudy(batch=False, **kwargs).tdp_record(point)
        batch_record = MonteCarloTdpStudy(batch=True, **kwargs).tdp_record(point)
        # The tdp *ratio* matches to rtol <= 1e-12; the percent view is the
        # ratio minus one, so near-nominal samples need an absolute floor
        # (1e-9 percent = 1e-11 in ratio) against cancellation noise.
        batch_ratio = 1.0 + np.asarray(batch_record.tdp_percent_samples) / 100.0
        scalar_ratio = 1.0 + np.asarray(scalar_record.tdp_percent_samples) / 100.0
        np.testing.assert_allclose(batch_ratio, scalar_ratio, rtol=RTOL)
        np.testing.assert_allclose(
            batch_record.tdp_percent_samples,
            scalar_record.tdp_percent_samples,
            rtol=RTOL,
            atol=1e-9,
        )
        # The distribution statistics the paper reports agree as well.
        assert batch_record.summary.std == pytest.approx(
            scalar_record.summary.std, rel=1e-9
        )
        assert batch_record.histogram.counts == scalar_record.histogram.counts

    def test_process_pool_records_match_serial(self, node):
        study = MonteCarloTdpStudy(node, n_samples=32, seed=7)
        points = study.doe.monte_carlo_points(n_wordlines=64)
        serial = study.tdp_records(points)
        parallel = study.tdp_records(points, workers=2)
        for one, two in zip(serial, parallel):
            assert one.tdp_percent_samples == two.tdp_percent_samples
