"""Tests of wire profiles and resistance extraction."""

import pytest

from repro.extraction.profiles import ProfileError, TrapezoidalProfile, profile_for_layer
from repro.extraction.resistance import (
    ResistanceError,
    resistance_per_unit_length,
    sheet_resistance_ohm_per_sq,
    via_resistance_ohm,
    wire_resistance,
)
from repro.technology.materials import BarrierLiner, MaterialSystem
from repro.technology.metal_stack import default_n10_metal_stack


@pytest.fixture(scope="module")
def metal1():
    return default_n10_metal_stack().layer("metal1")


class TestTrapezoidalProfile:
    def test_rectangular_profile(self):
        profile = TrapezoidalProfile(top_width_nm=30.0, thickness_nm=40.0)
        assert profile.bottom_width_nm == pytest.approx(30.0)
        assert profile.mean_width_nm == pytest.approx(30.0)
        assert profile.trench_area_nm2 == pytest.approx(1200.0)

    def test_tapered_profile_is_narrower_at_bottom(self):
        profile = TrapezoidalProfile(top_width_nm=30.0, thickness_nm=40.0, tapering_angle_deg=5.0)
        assert profile.bottom_width_nm < profile.top_width_nm
        assert profile.mean_width_nm < profile.top_width_nm

    def test_barrier_reduces_conductor_area(self):
        bare = TrapezoidalProfile(top_width_nm=30.0, thickness_nm=40.0)
        lined = TrapezoidalProfile(top_width_nm=30.0, thickness_nm=40.0, barrier_thickness_nm=2.0)
        assert lined.conductor_area_nm2 < bare.conductor_area_nm2
        assert lined.conductor_width_top_nm == pytest.approx(26.0)
        assert lined.conductor_thickness_nm == pytest.approx(38.0)

    def test_scaled_width(self):
        profile = TrapezoidalProfile(top_width_nm=30.0, thickness_nm=40.0)
        assert profile.scaled_width(3.0).top_width_nm == pytest.approx(33.0)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ProfileError):
            TrapezoidalProfile(top_width_nm=0.0, thickness_nm=40.0)
        with pytest.raises(ProfileError):
            TrapezoidalProfile(top_width_nm=30.0, thickness_nm=-1.0)

    def test_rejects_barrier_consuming_cross_section(self):
        with pytest.raises(ProfileError):
            TrapezoidalProfile(top_width_nm=10.0, thickness_nm=40.0, barrier_thickness_nm=5.0)

    def test_rejects_extreme_taper(self):
        with pytest.raises(ProfileError):
            TrapezoidalProfile(top_width_nm=10.0, thickness_nm=100.0, tapering_angle_deg=30.0)

    def test_profile_for_layer_applies_dishing_to_wide_lines(self, metal1):
        narrow = profile_for_layer(metal1, metal1.min_width_nm)
        wide = profile_for_layer(metal1, metal1.min_width_nm * 3.0)
        assert wide.thickness_nm < narrow.thickness_nm

    def test_profile_for_layer_rejects_nonpositive_width(self, metal1):
        with pytest.raises(ProfileError):
            profile_for_layer(metal1, 0.0)


class TestResistance:
    def test_resistance_decreases_with_width(self, metal1):
        narrow = wire_resistance(metal1, 24.0, 1000.0)
        wide = wire_resistance(metal1, 30.0, 1000.0)
        assert wide.resistance_ohm < narrow.resistance_ohm

    def test_resistance_scales_linearly_with_length(self, metal1):
        short = wire_resistance(metal1, 30.0, 1000.0)
        long = wire_resistance(metal1, 30.0, 2000.0)
        assert long.resistance_ohm == pytest.approx(2.0 * short.resistance_ohm)

    def test_per_cell_bitline_resistance_in_expected_range(self, metal1):
        """A 30 nm x 240 nm N10 bit-line segment is a few ohms to ~20 ohms."""
        result = wire_resistance(metal1, 30.0, 240.0)
        assert 2.0 < result.resistance_ohm < 30.0

    def test_effective_resistivity_above_bulk(self, metal1):
        result = wire_resistance(metal1, 24.0, 1000.0)
        assert result.effective_resistivity_ohm_nm > metal1.materials.conductor.bulk_resistivity_ohm_nm

    def test_conductive_barrier_lowers_resistance(self, metal1):
        insulating = resistance_per_unit_length(
            profile_for_layer(metal1, 30.0), metal1.materials
        )
        conductive_materials = MaterialSystem(
            conductor=metal1.materials.conductor,
            barrier=BarrierLiner(thickness_nm=1.5, resistivity_ohm_nm=500.0, conductive=True),
            intra_layer_dielectric=metal1.materials.intra_layer_dielectric,
            inter_layer_dielectric=metal1.materials.inter_layer_dielectric,
        )
        with_barrier = resistance_per_unit_length(
            profile_for_layer(metal1, 30.0), conductive_materials
        )
        assert with_barrier.resistance_per_nm < insulating.resistance_per_nm

    def test_nonpositive_length_rejected(self, metal1):
        with pytest.raises(ResistanceError):
            wire_resistance(metal1, 30.0, 0.0)

    def test_sheet_resistance_in_plausible_range(self, metal1):
        # N10-class copper M1 sheet resistance is of order 1-10 ohm/sq once
        # size effects and the barrier are accounted for.
        rs = sheet_resistance_ohm_per_sq(metal1)
        assert 0.5 < rs < 20.0

    def test_via_resistance_positive_and_small(self, metal1):
        r_via = via_resistance_ohm(metal1)
        assert 0.5 < r_via < 200.0

    def test_via_resistance_rejects_bad_side(self, metal1):
        with pytest.raises(ResistanceError):
            via_resistance_ohm(metal1, via_side_nm=0.0)
