"""Tests of the LE3 / SADP / EUV patterning options."""

import pytest

from repro.layout.wire import NetRole, uniform_track_pattern
from repro.patterning import (
    CORE_MASK,
    EUV_MASK,
    PAPER_OPTIONS,
    SPACER_MASK,
    create_option,
    default_registry,
    euv,
    le2,
    le3,
    paper_options,
    sadp,
)
from repro.patterning.base import PatterningError
from tests.conftest import EUV_WORST_CORNER, LE3_WORST_CORNER, SADP_WORST_CORNER


def cell_like_pattern():
    """A VSS | BL | VDD | BLB stack like the SRAM cell cross-section."""
    return uniform_track_pattern(
        nets=["VSS", "BL", "VDD", "BLB"],
        pitch_nm=48.0,
        width_nm=24.0,
        wire_length_nm=1000.0,
        roles=[NetRole.VSS, NetRole.BITLINE, NetRole.VDD, NetRole.BITLINE_BAR],
    )


class TestRegistry:
    def test_paper_options_registered(self):
        for name in PAPER_OPTIONS:
            assert name in default_registry

    def test_create_by_name(self):
        assert create_option("LELELE").name == "LELELE"
        assert create_option("sadp").name == "SADP"
        assert create_option("EUV").name == "EUV"

    def test_le3_alias(self):
        assert create_option("LE3").name == "LELELE"

    def test_unknown_option_rejected(self):
        with pytest.raises(PatterningError):
            create_option("SAQP")

    def test_paper_options_constructs_three(self):
        options = paper_options()
        assert [option.name for option in options] == ["LELELE", "SADP", "EUV"]


class TestLithoEtch:
    def test_names(self):
        assert le3().name == "LELELE"
        assert le2().name == "LELE"

    def test_decompose_assigns_cyclic_masks(self):
        decomposed = le3().decompose(cell_like_pattern())
        assert [track.mask for track in decomposed] == ["A", "B", "C", "A"]

    def test_parameter_specs_include_cd_and_overlay(self, node):
        specs = le3().parameter_specs(node.variations)
        assert set(specs) == {"cd:A", "cd:B", "cd:C", "ol:B", "ol:C"}
        assert specs["ol:B"].three_sigma_nm == pytest.approx(8.0)

    def test_nominal_apply_is_identity(self):
        pattern = cell_like_pattern()
        result = le3().nominal_result(pattern)
        assert result.printed.spaces() == pytest.approx(pattern.spaces())
        assert [t.width_nm for t in result.printed] == pytest.approx(
            [t.width_nm for t in pattern]
        )

    def test_cd_error_widens_only_that_mask(self):
        result = le3().apply(cell_like_pattern(), {"cd:B": 3.0})
        assert result.width_change_nm("BL") == pytest.approx(3.0)      # BL is on mask B
        assert result.width_change_nm("VSS") == pytest.approx(0.0)
        assert result.width_change_nm("VDD") == pytest.approx(0.0)

    def test_overlay_shifts_whole_mask_without_width_change(self):
        result = le3().apply(cell_like_pattern(), {"ol:B": -5.0})
        assert result.center_shift_nm("BL") == pytest.approx(-5.0)
        assert result.width_change_nm("BL") == pytest.approx(0.0)
        assert result.center_shift_nm("VSS") == pytest.approx(0.0)

    def test_reference_mask_has_no_overlay_parameter(self, node):
        assert "ol:A" not in le3().parameter_specs(node.variations)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(PatterningError):
            le3().apply(cell_like_pattern(), {"cd:D": 1.0})

    def test_worst_corner_squeezes_spaces_around_victim(self):
        pattern = cell_like_pattern()
        # BL sits on mask B here (track index 1): push A (left neighbour VSS)
        # and C (right neighbour VDD) towards it and widen everything.
        result = le3().apply(
            pattern, {"cd:A": 3.0, "cd:B": 3.0, "cd:C": 3.0, "ol:C": -8.0}
        )
        spaces = result.printed.spaces()
        nominal = pattern.spaces()
        assert spaces[1] < nominal[1]  # BL-VDD gap shrinks (C moved towards B)

    def test_chained_alignment_accumulates_shifts(self):
        pattern = cell_like_pattern()
        aligned = le3().apply(pattern, {"ol:B": 2.0, "ol:C": 2.0}, aligned_to_first=True)
        chained = le3().apply(pattern, {"ol:B": 2.0, "ol:C": 2.0}, aligned_to_first=False)
        # With chained alignment mask C inherits B's shift as well.
        assert chained.center_shift_nm("VDD") == pytest.approx(4.0)
        assert aligned.center_shift_nm("VDD") == pytest.approx(2.0)

    def test_graph_coloring_mode_requires_space_limit(self):
        option = le3(use_graph_coloring=True)
        with pytest.raises(PatterningError):
            option.decompose(cell_like_pattern())

    def test_graph_coloring_mode_decomposes_legally(self):
        option = le3(use_graph_coloring=True, same_mask_min_space_nm=80.0)
        decomposed = option.decompose(cell_like_pattern())
        masks = [track.mask for track in decomposed]
        assert None not in masks


class TestSADP:
    def test_decompose_alternates_core_and_spacer(self):
        decomposed = sadp().decompose(cell_like_pattern())
        assert [track.mask for track in decomposed] == [
            CORE_MASK, SPACER_MASK, CORE_MASK, SPACER_MASK,
        ]

    def test_bitlines_are_spacer_defined_by_default(self):
        decomposed = sadp().decompose(cell_like_pattern())
        assert decomposed.track_for("BL").mask == SPACER_MASK
        assert decomposed.track_for("VSS").mask == CORE_MASK

    def test_mandrel_bitline_ablation_swaps_assignment(self):
        decomposed = sadp(bitlines_spacer_defined=False).decompose(cell_like_pattern())
        assert decomposed.track_for("BL").mask == CORE_MASK

    def test_parameter_specs(self, node):
        specs = sadp().parameter_specs(node.variations)
        assert set(specs) == {"cd:core", "spacer"}
        assert specs["spacer"].three_sigma_nm == pytest.approx(1.5)

    def test_nominal_apply_is_identity(self):
        pattern = cell_like_pattern()
        result = sadp().nominal_result(pattern)
        assert [t.width_nm for t in result.printed] == pytest.approx(
            [t.width_nm for t in pattern]
        )
        assert result.printed.spaces() == pytest.approx(pattern.spaces())

    def test_core_shrink_widens_spacer_defined_lines(self):
        result = sadp().apply(cell_like_pattern(), {"cd:core": -3.0})
        assert result.width_change_nm("VSS") == pytest.approx(-3.0)
        assert result.width_change_nm("BL") > 0.0

    def test_spacer_thickness_sets_the_gaps(self):
        result = sadp().apply(cell_like_pattern(), {"spacer": -1.5})
        spaces = result.printed.spaces()
        # The BL-VDD and VSS-BL gaps are spacer-defined and shrink by 1.5 nm.
        assert spaces[0] == pytest.approx(24.0 - 1.5)
        assert spaces[1] == pytest.approx(24.0 - 1.5)

    def test_self_alignment_keeps_gap_variation_small(self):
        """The SADP gap change never exceeds the spacer budget (self-aligned)."""
        result = sadp().apply(cell_like_pattern(), SADP_WORST_CORNER)
        for change in result.space_changes_nm():
            assert abs(change) <= 1.5 + 1e-9

    def test_pinch_off_raises(self):
        with pytest.raises(PatterningError):
            sadp().apply(cell_like_pattern(), {"cd:core": 40.0, "spacer": 10.0})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(PatterningError):
            sadp().apply(cell_like_pattern(), {"cd:A": 1.0})


class TestEUV:
    def test_single_mask(self):
        decomposed = euv().decompose(cell_like_pattern())
        assert {track.mask for track in decomposed} == {EUV_MASK}

    def test_parameter_specs(self, node):
        specs = euv().parameter_specs(node.variations)
        assert set(specs) == {"cd:euv"}

    def test_uniform_cd_widens_all_lines_equally(self):
        result = euv().apply(cell_like_pattern(), EUV_WORST_CORNER)
        for net in ("VSS", "BL", "VDD", "BLB"):
            assert result.width_change_nm(net) == pytest.approx(3.0)

    def test_uniform_cd_shrinks_all_spaces_equally(self):
        result = euv().apply(cell_like_pattern(), {"cd:euv": 3.0})
        for change in result.space_changes_nm():
            assert change == pytest.approx(-3.0)

    def test_no_center_shifts(self):
        result = euv().apply(cell_like_pattern(), {"cd:euv": 3.0})
        for net in ("VSS", "BL", "VDD", "BLB"):
            assert result.center_shift_nm(net) == pytest.approx(0.0)


class TestWorstCornersAcrossOptions:
    def test_le3_worst_space_squeeze_exceeds_others(self, array64):
        """LE3's worst corner narrows the victim's gaps far more than SADP/EUV."""
        pattern = array64.metal1_pattern
        bl_net, _ = array64.central_pair_nets()

        def min_gap_around(result, net):
            index = result.printed.index_of(net)
            return min(
                result.printed.space_between(index - 1, index),
                result.printed.space_between(index, index + 1),
            )

        le3_gap = min_gap_around(le3().apply(pattern, LE3_WORST_CORNER), bl_net)
        sadp_gap = min_gap_around(sadp().apply(pattern, SADP_WORST_CORNER), bl_net)
        euv_gap = min_gap_around(euv().apply(pattern, EUV_WORST_CORNER), bl_net)
        assert le3_gap < euv_gap
        assert le3_gap < sadp_gap
