"""Tests of the analytical td / tdp formula (eqs. 1-5)."""

import math

import pytest

from repro.core.analytical import (
    AnalyticalDelayModel,
    AnalyticalModelError,
    discharge_constant,
    model_from_technology,
)
from repro.sram.precharge import precharge_capacitance_f


def simple_model(a=0.105):
    return AnalyticalDelayModel(
        a=a,
        rbl_per_cell_ohm=8.5,
        cbl_per_cell_f=38e-18,
        rfe_ohm=40_000.0,
        cfe_per_cell_f=32e-18,
        cpre_fn=lambda n: 1e-16 * max(1, n // 8),
    )


class TestDischargeConstant:
    def test_ten_percent_level_matches_paper(self):
        """Eq. 3: a ~ 0.105 for a 10% discharge level."""
        assert discharge_constant(0.1) == pytest.approx(0.105, abs=0.001)

    def test_sixty_three_percent_gives_one(self):
        assert discharge_constant(1.0 - math.exp(-1.0)) == pytest.approx(1.0, rel=1e-9)

    def test_monotonic_in_level(self):
        assert discharge_constant(0.2) > discharge_constant(0.1)

    def test_invalid_levels_rejected(self):
        with pytest.raises(AnalyticalModelError):
            discharge_constant(0.0)
        with pytest.raises(AnalyticalModelError):
            discharge_constant(1.0)


class TestEquationFour:
    def test_td_matches_hand_computation(self):
        model = simple_model()
        n = 64
        resistance = n * 8.5 + 40_000.0
        capacitance = n * (38e-18 + 32e-18) + 1e-16 * 8
        assert model.td_s(n) == pytest.approx(0.105 * resistance * capacitance, rel=1e-12)

    def test_variation_ratios_enter_linearly(self):
        model = simple_model()
        n = 64
        base = model.td_s(n)
        # Doubling Cvar doubles only the wire-capacitance term.
        with_cvar = model.td_s(n, cvar=2.0)
        assert with_cvar > base
        assert with_cvar < 2.0 * base

    def test_td_nominal_equals_unity_variation(self):
        model = simple_model()
        assert model.td_nominal_s(256) == model.td_s(256, 1.0, 1.0)

    def test_td_grows_superlinearly_with_n(self):
        model = simple_model()
        assert model.td_s(1024) > 4.0 * model.td_s(256)

    def test_invalid_inputs_rejected(self):
        model = simple_model()
        with pytest.raises(AnalyticalModelError):
            model.td_s(0)
        with pytest.raises(AnalyticalModelError):
            model.td_s(64, rvar=0.0)
        with pytest.raises(AnalyticalModelError):
            AnalyticalDelayModel(
                a=-1.0, rbl_per_cell_ohm=1.0, cbl_per_cell_f=1e-18,
                rfe_ohm=1.0, cfe_per_cell_f=0.0, cpre_fn=lambda n: 0.0,
            )


class TestEquationFive:
    def test_polynomial_reconstructs_td(self):
        model = simple_model()
        for n in (16, 64, 256, 1024):
            coefficients = model.polynomial_coefficients(n)
            assert coefficients.evaluate(n) == pytest.approx(model.td_s(n), rel=1e-9)

    def test_quadratic_coefficient_tracks_rvar_and_cvar(self):
        model = simple_model()
        nominal = model.polynomial_coefficients(64)
        varied = model.polynomial_coefficients(64, rvar=1.5, cvar=2.0)
        assert varied.c2 > nominal.c2
        assert varied.c0 == pytest.approx(nominal.c0)   # constant term has no Rbl/Cbl

    def test_constant_term_independent_of_variation(self):
        model = simple_model()
        assert model.polynomial_coefficients(64, rvar=0.5, cvar=3.0).c0 == pytest.approx(
            model.polynomial_coefficients(64).c0
        )


class TestTdp:
    def test_nominal_tdp_is_one(self):
        assert simple_model().tdp(64, 1.0, 1.0) == pytest.approx(1.0)

    def test_capacitance_increase_always_penalises(self):
        model = simple_model()
        for n in (16, 64, 256, 1024):
            assert model.tdp(n, 1.0, 1.2) > 1.0

    def test_resistance_decrease_helps_more_for_long_arrays(self):
        """The Rvar term is weighted by n*Rbl, so its effect grows with n."""
        model = simple_model()
        short = model.tdp(16, 0.9, 1.0)
        long = model.tdp(1024, 0.9, 1.0)
        assert long < short < 1.0

    def test_non_monotonic_penalty_with_negative_rvar(self):
        """LE3-like corner (Cvar up, Rvar down): penalty shrinks for large n."""
        model = simple_model()
        penalties = [model.tdp_percent(n, 0.87, 1.55) for n in (16, 64, 256, 1024)]
        assert penalties[0] > 0.0
        assert penalties[-1] < penalties[0]

    def test_tdp_percent_consistent_with_ratio(self):
        model = simple_model()
        assert model.tdp_percent(64, 0.9, 1.3) == pytest.approx(
            (model.tdp(64, 0.9, 1.3) - 1.0) * 100.0
        )

    def test_sensitivity_shifts_from_c_to_r_with_array_size(self):
        model = simple_model()
        d_r_small, d_c_small = model.tdp_sensitivity(16)
        d_r_large, d_c_large = model.tdp_sensitivity(1024)
        assert d_c_small > d_r_small          # small arrays: C dominated
        assert d_r_large > d_r_small          # R gains weight with n


class TestModelFromTechnology:
    def test_parameters_derived_from_node(self, node, analytical_model):
        assert analytical_model.a == pytest.approx(discharge_constant(0.1), rel=1e-6)
        assert 2.0 < analytical_model.rbl_per_cell_ohm < 30.0
        assert 1e-17 < analytical_model.cbl_per_cell_f < 1e-16
        assert analytical_model.rfe_ohm > 1_000.0
        assert analytical_model.cfe_per_cell_f > 0.0

    def test_cpre_matches_precharge_scaling(self, node, analytical_model):
        assert analytical_model.cpre_fn(64) == pytest.approx(
            precharge_capacitance_f(64, device=node.sram_devices.pull_up)
        )
        assert analytical_model.cpre_fn(1024) > analytical_model.cpre_fn(64)

    def test_formula_td_same_order_as_simulation(self, analytical_model, simulator):
        """Table II behaviour: same order of magnitude, same ordering in n."""
        for n in (16, 64):
            formula = analytical_model.td_nominal_s(n)
            simulated = simulator.measure_nominal(n).td_s
            assert 0.2 < simulated / formula < 5.0
        assert analytical_model.td_nominal_s(64) > analytical_model.td_nominal_s(16)

    def test_with_parameters_override(self, analytical_model):
        modified = analytical_model.with_parameters(rfe_ohm=10_000.0)
        assert modified.rfe_ohm == 10_000.0
        assert modified.rbl_per_cell_ohm == analytical_model.rbl_per_cell_ohm
