"""Tests of the read-path circuit builder and the read simulation harness."""

import pytest

from repro.circuit.mosfet import MOSFET
from repro.circuit.transient import TransientOptions
from repro.sram.array import ArrayCircuitError, ReadCircuitSpec, build_read_circuit
from repro.sram.bitline import BitlineSpec
from repro.sram.read_path import ReadMeasurement, ReadPathSimulator, ReadSimulationError
from repro.technology.node import OperatingConditions
from tests.conftest import EUV_WORST_CORNER, LE3_WORST_CORNER, SADP_WORST_CORNER


def small_spec(node, n_cells=16):
    bitline = BitlineSpec(
        n_cells=n_cells,
        resistance_per_cell_ohm=8.5,
        capacitance_per_cell_f=38e-18,
        frontend_capacitance_per_cell_f=32e-18,
    )
    return ReadCircuitSpec(
        n_cells=n_cells,
        bitline=bitline,
        bitline_bar=bitline,
        vss_rail_resistance_ohm=n_cells * 11.0,
        devices=node.sram_devices,
        conditions=node.operating_conditions,
    )


class TestReadCircuitBuilder:
    def test_circuit_validates(self, node):
        read_circuit = build_read_circuit(small_spec(node))
        read_circuit.circuit.validate()

    def test_contains_cell_precharge_and_ladders(self, node):
        read_circuit = build_read_circuit(small_spec(node))
        mosfets = read_circuit.circuit.elements_of_type(MOSFET)
        # 6 cell transistors + 3 precharge devices.
        assert len(mosfets) == 9
        assert read_circuit.bitline_ladder.segments == 16
        assert read_circuit.sense.bitline_node == read_circuit.bitline_ladder.near_node

    def test_accessed_cell_sits_at_far_end(self, node):
        read_circuit = build_read_circuit(small_spec(node))
        assert read_circuit.cell.nodes.bitline == read_circuit.bitline_ladder.far_node

    def test_initial_conditions_precharge_bitlines(self, node):
        read_circuit = build_read_circuit(small_spec(node))
        for ladder_node in read_circuit.bitline_ladder.node_names:
            assert read_circuit.initial_voltages[ladder_node] == pytest.approx(0.7)
        assert read_circuit.initial_voltages["q"] == 0.0
        assert read_circuit.initial_voltages["qb"] == pytest.approx(0.7)

    def test_stored_one_swaps_internal_nodes(self, node):
        spec = small_spec(node)
        spec = ReadCircuitSpec(
            n_cells=spec.n_cells,
            bitline=spec.bitline,
            bitline_bar=spec.bitline_bar,
            vss_rail_resistance_ohm=spec.vss_rail_resistance_ohm,
            devices=spec.devices,
            conditions=spec.conditions,
            stored_value=1,
        )
        read_circuit = build_read_circuit(spec)
        assert read_circuit.initial_voltages["q"] == pytest.approx(0.7)
        assert read_circuit.initial_voltages["qb"] == 0.0

    def test_invalid_spec_rejected(self, node):
        bitline = small_spec(node).bitline
        with pytest.raises(ArrayCircuitError):
            ReadCircuitSpec(
                n_cells=16,
                bitline=bitline,
                bitline_bar=bitline,
                vss_rail_resistance_ohm=0.0,
                devices=node.sram_devices,
                conditions=node.operating_conditions,
            )
        with pytest.raises(ArrayCircuitError):
            ReadCircuitSpec(
                n_cells=16,
                bitline=bitline,
                bitline_bar=bitline,
                vss_rail_resistance_ohm=100.0,
                devices=node.sram_devices,
                conditions=node.operating_conditions,
                stored_value=5,
            )


class TestReadPathSimulator:
    def test_nominal_td_positive_and_under_a_nanosecond(self, simulator):
        measurement = simulator.measure_nominal(16)
        assert 1e-12 < measurement.td_s < 1e-9
        assert measurement.stop_reason == "stop-condition"

    def test_td_grows_with_array_size(self, simulator):
        td16 = simulator.measure_nominal(16).td_s
        td64 = simulator.measure_nominal(64).td_s
        assert td64 > 2.0 * td16

    def test_nominal_td16_matches_paper_order_of_magnitude(self, simulator):
        """Paper Table II: simulated td at 10x16 is 5.59 ps; ours must be single-digit ps."""
        td_ps = simulator.measure_nominal(16).td_ps
        assert 2.0 < td_ps < 20.0

    def test_le3_worst_corner_penalty_large(self, simulator, le3_option):
        penalty = simulator.penalty_percent(16, le3_option, LE3_WORST_CORNER)
        assert penalty > 10.0

    def test_sadp_and_euv_worst_corner_penalties_small(self, simulator, sadp_option, euv_option):
        sadp_penalty = simulator.penalty_percent(16, sadp_option, SADP_WORST_CORNER)
        euv_penalty = simulator.penalty_percent(16, euv_option, EUV_WORST_CORNER)
        assert abs(sadp_penalty) < 10.0
        assert abs(euv_penalty) < 10.0

    def test_scaled_variation_increases_td(self, simulator):
        nominal = simulator.measure_nominal(16)
        varied = simulator.measure_with_variation(16, rvar=1.0, cvar=1.5)
        assert varied.td_s > nominal.td_s

    def test_penalty_vs_nominal_round_trip(self, simulator):
        nominal = simulator.measure_nominal(16)
        assert nominal.penalty_vs(nominal) == pytest.approx(1.0)
        assert nominal.penalty_percent_vs(nominal) == pytest.approx(0.0)

    def test_column_parasitics_roles(self, simulator):
        column = simulator.column_parasitics(16)
        assert column.bitline.n_cells == 16
        assert column.vss_rail_resistance_ohm > 0.0
        assert column.bitline.total_capacitance_f > column.bitline.wire_capacitance_f

    def test_waveforms_returned_when_requested(self, simulator):
        column = simulator.column_parasitics(16)
        measurement, result = simulator.simulate_column(
            16, column, label="probe", return_waveforms=True
        )
        assert isinstance(measurement, ReadMeasurement)
        bl_wave = result.voltage(simulator.build_circuit(16, column).sense.bitline_node)
        assert bl_wave[0] == pytest.approx(0.7)
        assert bl_wave[-1] < 0.7

    def test_bitline_discharges_while_complement_holds(self, simulator):
        column = simulator.column_parasitics(16)
        circuit = simulator.build_circuit(16, column)
        _measurement, result = simulator.simulate_column(
            16, column, label="probe", return_waveforms=True
        )
        bl_final = result.final_voltage(circuit.sense.bitline_node)
        blb_final = result.final_voltage(circuit.sense.bitline_bar_node)
        assert bl_final < 0.68
        assert blb_final > 0.65

    def test_layout_and_extraction_caching(self, simulator):
        first = simulator.layout_for(16)
        second = simulator.layout_for(16)
        assert first is second
        assert simulator.nominal_extraction(16) is simulator.nominal_extraction(16)

    def test_penalty_sign_matches_capacitance_change(self, simulator, euv_option):
        """A pure capacitance increase must slow the read down."""
        nominal = simulator.measure_nominal(16)
        slower = simulator.measure_with_variation(16, rvar=1.0, cvar=1.2)
        faster = simulator.measure_with_variation(16, rvar=0.8, cvar=1.0)
        assert slower.td_s > nominal.td_s
        assert faster.td_s < nominal.td_s


class TestTransientOptionOverrides:
    """Regression: user-supplied transient options used to produce invalid
    derived options (ValueError) when the size-derived dt cap undercut the
    override's dt_initial/dt_min on small arrays."""

    def test_large_dt_overrides_are_clamped_not_rejected(self, node):
        simulator = ReadPathSimulator(
            node,
            transient_options=TransientOptions(
                t_stop_s=1e-9, dt_initial_s=5e-12, dt_min_s=1e-12, dt_max_s=50e-12
            ),
        )
        measurement = simulator.measure_nominal(16)
        assert measurement.stop_reason == "stop-condition"
        assert measurement.td_s > 0.0

    def test_derived_options_satisfy_step_ordering(self, node):
        simulator = ReadPathSimulator(
            node,
            transient_options=TransientOptions(
                t_stop_s=1e-9, dt_initial_s=5e-12, dt_min_s=1e-12, dt_max_s=50e-12
            ),
        )
        column = simulator.column_parasitics(16)
        options = simulator._transient_options_for(column)
        assert 0.0 < options.dt_min_s <= options.dt_initial_s <= options.dt_max_s

    def test_transient_method_changes_only_the_integrator(self, node):
        """The method knob must not perturb the derived step-size policy."""
        be = ReadPathSimulator(node)
        trap = ReadPathSimulator(node, transient_method="trapezoidal")
        be_options = be._transient_options_for(be.column_parasitics(16))
        trap_options = trap._transient_options_for(trap.column_parasitics(16))
        assert be_options.method == "backward-euler"
        assert trap_options.method == "trapezoidal"
        assert trap_options.t_stop_s == be_options.t_stop_s
        assert trap_options.dt_initial_s == be_options.dt_initial_s
        assert trap_options.dt_min_s == be_options.dt_min_s
        assert trap_options.dt_max_s == be_options.dt_max_s

    def test_invalid_transient_method_rejected(self, node):
        with pytest.raises(ReadSimulationError):
            ReadPathSimulator(node, transient_method="gear2")

    def test_override_matches_default_when_not_binding(self, node):
        """Overrides looser than the derived caps change nothing."""
        default = ReadPathSimulator(node).measure_nominal(16)
        overridden = ReadPathSimulator(
            node,
            transient_options=TransientOptions(
                dt_initial_s=1e-13, dt_min_s=1e-16, dt_max_s=1e-12
            ),
        ).measure_nominal(16)
        assert overridden.td_s == pytest.approx(default.td_s, rel=0.05)


class TestMeasurementCaches:
    def test_nominal_measurement_memoized(self, node):
        simulator = ReadPathSimulator(node)
        first = simulator.measure_nominal(16)
        assert simulator.measure_nominal(16) is first
        assert simulator.measure_nominal(16, stored_value=1) is not first

    def test_printed_extraction_memoized(self, node, euv_option):
        simulator = ReadPathSimulator(node)
        first = simulator.printed_extraction(16, euv_option, EUV_WORST_CORNER)
        assert simulator.printed_extraction(16, euv_option, EUV_WORST_CORNER) is first
        other = simulator.printed_extraction(16, euv_option, {"cd:euv": -3.0})
        assert other is not first

    def test_penalty_percent_reuses_nominal(self, node, euv_option, monkeypatch):
        simulator = ReadPathSimulator(node)
        calls = {"count": 0}
        true_simulate = ReadPathSimulator.simulate_column

        def counting_simulate(self, *args, **kwargs):
            calls["count"] += 1
            return true_simulate(self, *args, **kwargs)

        monkeypatch.setattr(ReadPathSimulator, "simulate_column", counting_simulate)
        simulator.penalty_percent(16, euv_option, EUV_WORST_CORNER)
        assert calls["count"] == 2                  # nominal + corner
        simulator.penalty_percent(16, euv_option, {"cd:euv": -3.0})
        assert calls["count"] == 3                  # nominal came from the memo

    def test_invalidate_caches_drops_memos(self, node):
        simulator = ReadPathSimulator(node)
        first = simulator.measure_nominal(16)
        simulator.invalidate_caches()
        second = simulator.measure_nominal(16)
        assert second is not first
        assert second.td_s == first.td_s            # same physics, fresh compute

    def test_jacobian_structure_shared_across_corners(self, node, euv_option):
        simulator = ReadPathSimulator(node)
        simulator.measure_nominal(16)
        template = simulator._jacobian_template_cache[(16, 0)]
        simulator.measure_with_patterning(16, euv_option, EUV_WORST_CORNER)
        assert simulator._jacobian_template_cache[(16, 0)] is template

    def test_cache_adoption_shares_geometry_not_measurements(self, node):
        donor = ReadPathSimulator(node)
        donor.measure_nominal(16)
        variant = ReadPathSimulator(node, vss_strap_interval_cells=8)
        variant.adopt_shared_caches(donor)
        assert variant.layout_for(16) is donor.layout_for(16)
        assert variant.nominal_extraction(16) is donor.nominal_extraction(16)
        measurement = variant.measure_nominal(16)
        assert measurement is not donor.measure_nominal(16)

    def test_cache_adoption_rejects_mismatched_geometry(self, node):
        donor = ReadPathSimulator(node, n_bitline_pairs=10)
        other = ReadPathSimulator(node, n_bitline_pairs=4)
        with pytest.raises(ReadSimulationError):
            other.adopt_shared_caches(donor)
