"""Tests of the operation suite: registry, campaign axis, MC/worst-case twins.

The parity pin mirrors the read campaign's: operation-axis campaign rows
must match the sequential ``WorstCaseStudy.operation_rows`` numbers at
``rtol <= 1e-12``, with one worker and with two.
"""

import pytest

from repro.core.campaign import (
    CampaignError,
    CampaignRecord,
    CampaignScenario,
    SimulationCampaign,
    scenario_grid,
)
from repro.core.montecarlo import MonteCarloTdpStudy
from repro.core.operations import (
    OPERATION_NAMES,
    OperationError,
    OperationSimulators,
    calibrate_response_surface,
    create_operation,
)
from repro.core.worst_case import WorstCaseStudy
from repro.variability.doe import StudyDOE

RTOL = 1e-12
ALL_OPS = ("read", "write", "hold_snm", "read_snm")


@pytest.fixture(scope="module")
def doe():
    return StudyDOE(array_sizes=(16,))


@pytest.fixture(scope="module")
def op_simulators(node):
    return OperationSimulators(node)


@pytest.fixture(scope="module")
def sequential_op_rows(node, doe, op_simulators):
    """The sequential oracle: per-operation worst-case impact rows."""
    worst_case = WorstCaseStudy(node, doe=doe)
    return {
        name: worst_case.operation_rows(name, simulators=op_simulators)
        for name in ALL_OPS
    }


class TestRegistry:
    def test_all_operations_resolve(self):
        for name in OPERATION_NAMES:
            assert create_operation(name).name == name

    def test_unknown_operation_raises(self):
        with pytest.raises(OperationError, match="unknown operation"):
            create_operation("erase")

    def test_metrics_and_units(self):
        assert create_operation("read").unit == "s"
        assert create_operation("write").metric == "delay"
        assert create_operation("hold_snm").unit == "V"
        assert create_operation("read_snm").metric == "margin"

    def test_simulator_bundle_shares_one_geometry(self, op_simulators):
        assert op_simulators.write.geometry is op_simulators.read
        assert op_simulators.margins.geometry is op_simulators.read


class TestSequentialRows:
    def test_rows_cover_every_option_and_size(self, sequential_op_rows, doe):
        for name, rows in sequential_op_rows.items():
            assert [row.n_wordlines for row in rows] == list(doe.array_sizes)
            for row in rows:
                assert row.operation == name
                assert set(row.delta_percent_by_option) == set(doe.option_names)
                assert row.nominal_value > 0.0

    def test_margin_rows_carry_volt_units(self, sequential_op_rows):
        assert sequential_op_rows["hold_snm"][0].unit == "V"
        assert "mV" in sequential_op_rows["hold_snm"][0].nominal_display
        assert sequential_op_rows["write"][0].unit == "s"
        assert "ps" in sequential_op_rows["write"][0].nominal_display

    def test_read_rows_reproduce_figure4(self, node, doe, op_simulators):
        worst_case = WorstCaseStudy(node, doe=doe)
        figure4 = worst_case.figure4(simulator=op_simulators.read)
        op_rows = worst_case.operation_rows("read", simulators=op_simulators)
        for f4, op in zip(figure4, op_rows):
            assert op.nominal_value * 1e12 == pytest.approx(f4.nominal_td_ps, rel=RTOL)
            for name, value in f4.tdp_percent_by_option.items():
                assert op.delta_percent_by_option[name] == pytest.approx(value, rel=RTOL)


class TestCampaignOperationAxis:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_rows_match_sequential_path(
        self, node, doe, sequential_op_rows, workers
    ):
        campaign = SimulationCampaign(
            node, doe=doe, scenarios=scenario_grid(operations=ALL_OPS)
        )
        results = campaign.run(workers=workers, clamp_to_cpus=False)
        for scenario in campaign.scenarios:
            campaign_rows = campaign.operation_rows(results, scenario)
            expected = sequential_op_rows[scenario.operation]
            assert len(campaign_rows) == len(expected)
            for a, b in zip(expected, campaign_rows):
                assert b.array_label == a.array_label
                assert b.unit == a.unit
                assert b.nominal_value == pytest.approx(a.nominal_value, rel=RTOL)
                for name, value in a.delta_percent_by_option.items():
                    assert b.delta_percent_by_option[name] == pytest.approx(
                        value, rel=RTOL, abs=1e-12
                    )

    def test_operation_scenarios_share_the_read_nominal_keys(self):
        scenarios = scenario_grid(operations=("read", "write"))
        assert scenarios[0].sim_key == "sv0-strap256-be"
        assert scenarios[1].sim_key == "write-sv0-strap256-be"
        assert [s.label for s in scenarios] == ["paper", "write"]

    def test_invalid_operation_rejected(self):
        with pytest.raises(CampaignError, match="operation"):
            CampaignScenario(operation="erase")

    def test_figure4_rows_require_a_read_scenario(self, node, doe):
        campaign = SimulationCampaign(
            node, doe=doe, scenarios=scenario_grid(operations=("hold_snm",))
        )
        results = campaign.run()
        with pytest.raises(CampaignError, match="read scenarios"):
            campaign.figure4_rows(results)
        with pytest.raises(CampaignError, match="read scenarios"):
            campaign.table2_rows(results, model=None)

    def test_margin_records_carry_value_and_unit(self, node, doe):
        campaign = SimulationCampaign(
            node, doe=doe, scenarios=scenario_grid(operations=("hold_snm",))
        )
        results = campaign.run()
        nominal = results.nominal("hold_snm-sv0-strap256-be", 16)
        assert nominal.operation == "hold_snm"
        assert nominal.unit == "V"
        assert nominal.value > 0.0
        assert nominal.td_s == 0.0
        corner = results.corner("hold_snm", "SADP", 16)
        impact = results.penalty_percent_for(corner)
        assert impact == pytest.approx(
            (corner.value / nominal.value - 1.0) * 100.0, rel=1e-12
        )

    def test_record_round_trip_preserves_operation_fields(self, node, doe):
        campaign = SimulationCampaign(
            node, doe=doe, scenarios=scenario_grid(operations=("write",))
        )
        record = campaign.run().records[0]
        clone = CampaignRecord.from_dict(record.to_dict())
        assert clone == record
        assert clone.operation == "write"


class TestResponseSurface:
    def test_write_surface_slopes_match_the_physics(self, node, op_simulators):
        surface = calibrate_response_surface(
            create_operation("write"), op_simulators, 64
        )
        assert surface.base_value > 0.0
        assert surface.d_rvar > 0.0        # more bit-line R -> slower write
        assert surface.values(1.0, 1.0) == pytest.approx(surface.base_value)
        assert surface.change_percent(1.0, 1.0) == pytest.approx(0.0)

    def test_read_surface_base_is_the_nominal_td(self, node, op_simulators):
        surface = calibrate_response_surface(
            create_operation("read"), op_simulators, 16
        )
        nominal = op_simulators.read.measure_nominal(16)
        assert surface.base_value == pytest.approx(nominal.td_s, rel=RTOL)
        assert surface.d_cvar > 0.0        # more bit-line C -> slower read

    def test_bad_delta_rejected(self, op_simulators):
        with pytest.raises(OperationError, match="delta"):
            calibrate_response_surface(
                create_operation("read"), op_simulators, 16, delta=0.0
            )


class TestOperationSigma:
    def test_sigma_rows_cover_the_doe(self, node, op_simulators):
        study = MonteCarloTdpStudy(
            node, doe=StudyDOE(array_sizes=(16,)), n_samples=40
        )
        rows = study.operation_sigma_rows(
            "write", n_wordlines=16, simulators=op_simulators
        )
        points = study.doe.monte_carlo_points(n_wordlines=16)
        assert len(rows) == len(points)
        for row, point in zip(rows, points):
            assert row.operation == "write"
            assert row.option_name == point.option_name
            assert row.sigma_percent >= 0.0
        # The LE3 overlay sweep must show nonzero spread somewhere.
        assert any(row.sigma_percent > 0.0 for row in rows)

    def test_margin_sigma_is_driven_by_the_rail_axis(self, node, op_simulators):
        """Hold SNM does not couple to the bit-line wire parasitics (the
        pass gates are off), so its Monte-Carlo spread must come entirely
        from the supply-rail resistance samples."""
        study = MonteCarloTdpStudy(
            node, doe=StudyDOE(array_sizes=(16,)), n_samples=60
        )
        surface = study.response_surface("hold_snm", 16, simulators=op_simulators)
        assert surface.d_rvar == pytest.approx(0.0, abs=1e-6)
        assert surface.d_cvar == pytest.approx(0.0, abs=1e-6)
        assert surface.d_rail_rvar != 0.0
        rows = study.operation_sigma_rows(
            "hold_snm", n_wordlines=16, simulators=op_simulators
        )
        assert any(row.sigma_percent > 0.0 for row in rows)

    def test_rail_samples_share_the_bitline_seed(self, node):
        study = MonteCarloTdpStudy(
            node, doe=StudyDOE(array_sizes=(16,)), n_samples=25
        )
        point = study.doe.monte_carlo_points(n_wordlines=16)[0]
        bitline = study.rc_variation_samples_batch(point)
        rails = study.rail_variation_samples_batch(point)
        assert rails.net.startswith("VSS")
        assert len(rails) == len(bitline)
        # Same seeded draw: sample i of both arrays is the same wafer.
        assert rails.parameter_matrix == pytest.approx(bitline.parameter_matrix)

    def test_surface_is_cached_per_operation_and_size(self, node, op_simulators):
        study = MonteCarloTdpStudy(
            node, doe=StudyDOE(array_sizes=(16,)), n_samples=10
        )
        first = study.response_surface("write", 16, simulators=op_simulators)
        assert study.response_surface("write", 16) is first
