"""Tests of the SRAM circuit building blocks (cell, bit line, precharge, sense amp)."""

import pytest

from repro.circuit.elements import Capacitor, Resistor
from repro.circuit.mosfet import MOSFET
from repro.sram.bitline import (
    BitlineModelError,
    BitlineSpec,
    build_bitline_ladder,
    supply_rail_resistance_ohm,
)
from repro.sram.cell import (
    CellCircuitError,
    CellNodes,
    bitline_loading_per_unselected_cell_f,
    build_cell,
)
from repro.sram.precharge import (
    PrechargeError,
    build_precharge,
    precharge_capacitance_f,
    precharge_fins,
)
from repro.sram.sense_amp import SenseAmpError, SenseAmplifier


def cell_nodes():
    return CellNodes(
        bitline="bl",
        bitline_bar="blb",
        wordline="wl",
        vdd="vdd",
        vss="vss_cell",
        internal_q="q",
        internal_qb="qb",
    )


class TestCellCircuit:
    def test_six_transistors(self):
        cell = build_cell("cell", cell_nodes())
        transistors = [element for element in cell.elements if isinstance(element, MOSFET)]
        assert len(transistors) == 6

    def test_pass_gates_connect_bitlines_to_internal_nodes(self):
        cell = build_cell("cell", cell_nodes())
        pg1 = next(e for e in cell.elements if e.name == "cell_pg1")
        assert pg1.drain == "bl" and pg1.source == "q" and pg1.gate == "wl"
        pg2 = next(e for e in cell.elements if e.name == "cell_pg2")
        assert pg2.drain == "blb" and pg2.source == "qb"

    def test_terminal_capacitances_included_by_default(self):
        cell = build_cell("cell", cell_nodes())
        caps = [element for element in cell.elements if isinstance(element, Capacitor)]
        assert caps
        cap_nodes = {cap.positive for cap in caps}
        assert "q" in cap_nodes and "qb" in cap_nodes
        # Supply / local-VSS terminals are intentionally not loaded.
        assert "vdd" not in cap_nodes and "vss_cell" not in cap_nodes

    def test_capacitances_can_be_omitted(self):
        cell = build_cell("cell", cell_nodes(), include_terminal_capacitances=False)
        assert not [e for e in cell.elements if isinstance(e, Capacitor)]

    def test_initial_conditions_for_stored_zero_and_one(self):
        cell = build_cell("cell", cell_nodes())
        zero = cell.initial_conditions(0.7, stored_value=0)
        one = cell.initial_conditions(0.7, stored_value=1)
        assert zero == {"q": 0.0, "qb": 0.7}
        assert one == {"q": 0.7, "qb": 0.0}

    def test_invalid_stored_value_rejected(self):
        cell = build_cell("cell", cell_nodes())
        with pytest.raises(CellCircuitError):
            cell.initial_conditions(0.7, stored_value=2)

    def test_frontend_loading_positive(self):
        assert bitline_loading_per_unselected_cell_f() > 0.0


class TestBitlineSpec:
    def make(self, n=64):
        return BitlineSpec(
            n_cells=n,
            resistance_per_cell_ohm=8.5,
            capacitance_per_cell_f=38e-18,
            frontend_capacitance_per_cell_f=32e-18,
        )

    def test_totals(self):
        spec = self.make(64)
        assert spec.total_resistance_ohm == pytest.approx(64 * 8.5)
        assert spec.total_capacitance_f == pytest.approx(64 * 70e-18)
        assert spec.wire_capacitance_f == pytest.approx(64 * 38e-18)

    def test_elmore_delay(self):
        spec = self.make(64)
        assert spec.elmore_delay_s() == pytest.approx(
            0.5 * spec.total_resistance_ohm * spec.total_capacitance_f
        )

    def test_scaled_touches_only_wire_parasitics(self):
        scaled = self.make().scaled(rvar=0.9, cvar=1.5)
        assert scaled.resistance_per_cell_ohm == pytest.approx(8.5 * 0.9)
        assert scaled.capacitance_per_cell_f == pytest.approx(38e-18 * 1.5)
        assert scaled.frontend_capacitance_per_cell_f == pytest.approx(32e-18)

    def test_scaled_rejects_nonpositive_ratio(self):
        with pytest.raises(BitlineModelError):
            self.make().scaled(rvar=0.0, cvar=1.0)

    def test_from_extraction(self, nominal_extraction64, array64, node):
        net, _ = array64.central_pair_nets()
        spec = BitlineSpec.from_extraction(
            nominal_extraction64[net], 64, array64.cell.cell_length_nm, 32e-18
        )
        assert spec.n_cells == 64
        assert spec.resistance_per_cell_ohm > 0.0
        assert spec.capacitance_per_cell_f > 0.0

    def test_validation(self):
        with pytest.raises(BitlineModelError):
            BitlineSpec(0, 1.0, 1e-18, 1e-18)
        with pytest.raises(BitlineModelError):
            BitlineSpec(16, -1.0, 1e-18, 1e-18)
        with pytest.raises(BitlineModelError):
            BitlineSpec(16, 1.0, -1e-18, 1e-18)


class TestBitlineLadder:
    def test_segment_count_defaults_to_min_of_cells_and_cap(self):
        assert build_bitline_ladder(TestBitlineSpec().make(16), "bl").segments == 16
        assert build_bitline_ladder(TestBitlineSpec().make(1024), "bl").segments == 64

    def test_ladder_conserves_totals(self):
        spec = TestBitlineSpec().make(1024)
        ladder = build_bitline_ladder(spec, "bl", segments=32)
        total_r = sum(
            e.resistance_ohm for e in ladder.elements if isinstance(e, Resistor)
        )
        total_c = sum(
            e.capacitance_f for e in ladder.elements if isinstance(e, Capacitor)
        )
        assert total_r == pytest.approx(spec.total_resistance_ohm, rel=1e-9)
        assert total_c == pytest.approx(spec.total_capacitance_f, rel=1e-9)

    def test_node_names_run_near_to_far(self):
        ladder = build_bitline_ladder(TestBitlineSpec().make(64), "bl", segments=8)
        assert ladder.near_node == "bl_0"
        assert ladder.far_node == "bl_8"
        assert len(ladder.node_names) == 9

    def test_segments_never_exceed_cells(self):
        ladder = build_bitline_ladder(TestBitlineSpec().make(4), "bl", segments=100)
        assert ladder.segments == 4

    def test_invalid_segment_count_rejected(self):
        with pytest.raises(BitlineModelError):
            build_bitline_ladder(TestBitlineSpec().make(16), "bl", segments=0)

    def test_supply_rail_resistance_scales_with_cells(self, nominal_extraction64, array64):
        column = array64.n_bitline_pairs // 2
        vss = nominal_extraction64[f"VSS@{column}"]
        short = supply_rail_resistance_ohm(vss, 16, 240.0)
        long = supply_rail_resistance_ohm(vss, 64, 240.0)
        assert long == pytest.approx(4.0 * short)

    def test_supply_rail_rejects_bad_arguments(self, nominal_extraction64, array64):
        column = array64.n_bitline_pairs // 2
        vss = nominal_extraction64[f"VSS@{column}"]
        with pytest.raises(BitlineModelError):
            supply_rail_resistance_ohm(vss, 0, 240.0)


class TestPrecharge:
    def test_fins_scale_with_array_size(self):
        assert precharge_fins(16) < precharge_fins(256) < precharge_fins(1024)

    def test_fins_at_least_one(self):
        assert precharge_fins(1) == 1

    def test_capacitance_scales_with_array_size(self):
        assert precharge_capacitance_f(1024) > precharge_capacitance_f(64)

    def test_capacitance_matches_circuit(self, node):
        built = build_precharge("pch", "bl_0", "blb_0", "vdd", 64, 0.7, device=node.sram_devices.pull_up)
        assert built.capacitance_f == pytest.approx(
            precharge_capacitance_f(64, device=node.sram_devices.pull_up), rel=1e-9
        )

    def test_circuit_contains_three_devices_and_enable_source(self):
        built = build_precharge("pch", "bl_0", "blb_0", "vdd", 64, 0.7)
        devices = [e for e in built.elements if isinstance(e, MOSFET)]
        assert len(devices) == 3
        assert built.fins == precharge_fins(64)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(PrechargeError):
            precharge_fins(0)
        with pytest.raises(PrechargeError):
            precharge_fins(16, cells_per_fin=0)


class TestSenseAmplifier:
    def make(self):
        return SenseAmplifier(sensitivity_v=0.07, bitline_node="bl_0", bitline_bar_node="blb_0")

    def test_fires_only_above_sensitivity(self):
        sense = self.make()
        assert not sense.fires({"bl_0": 0.66, "blb_0": 0.70})
        assert sense.fires({"bl_0": 0.60, "blb_0": 0.70})

    def test_differential_is_absolute(self):
        sense = self.make()
        assert sense.differential_v({"bl_0": 0.70, "blb_0": 0.60}) == pytest.approx(0.10)

    def test_stop_condition_uses_margin(self):
        sense = self.make()
        stop = sense.stop_condition(margin=1.2)
        assert not stop(0.0, {"bl_0": 0.625, "blb_0": 0.70})   # 75 mV < 84 mV target
        assert stop(0.0, {"bl_0": 0.61, "blb_0": 0.70})        # 90 mV >= 84 mV

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SenseAmpError):
            SenseAmplifier(sensitivity_v=0.0, bitline_node="a", bitline_bar_node="b")
        with pytest.raises(SenseAmpError):
            SenseAmplifier(sensitivity_v=0.07, bitline_node="a", bitline_bar_node="a")
        with pytest.raises(SenseAmpError):
            self.make().stop_condition(margin=0.5)
