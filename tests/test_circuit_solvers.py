"""Tests of MNA assembly, DC operating point and transient analysis.

The assertions use circuits with known analytical answers (dividers, RC
decays, inverters) so the simulator is validated against physics, not
against itself.
"""

import math

import numpy as np
import pytest

from repro.circuit.dc import ConvergenceError, dc_operating_point
from repro.circuit.elements import (
    DC,
    Capacitor,
    CurrentSource,
    PiecewiseLinear,
    Resistor,
    VoltageSource,
)
from repro.circuit.mna import MNAAssembler, MNAError
from repro.circuit.mosfet import MOSFET
from repro.circuit.netlist import Circuit
from repro.circuit.transient import TransientOptions, TransientSolver, run_transient
from repro.technology.transistors import default_n10_nmos, default_n10_pmos


def divider_circuit(r1=1000.0, r2=3000.0, vin=1.0):
    circuit = Circuit("divider")
    circuit.add(VoltageSource.dc("vin", "in", "0", vin))
    circuit.add(Resistor("r1", "in", "out", r1))
    circuit.add(Resistor("r2", "out", "0", r2))
    return circuit


def rc_circuit(resistance=1000.0, capacitance=1e-12, v0=1.0):
    """A charged capacitor discharging through a resistor."""
    circuit = Circuit("rc-decay")
    circuit.add(Resistor("r", "node", "0", resistance))
    circuit.add(Capacitor("c", "node", "0", capacitance, initial_voltage_v=v0))
    # A tiny always-off current source keeps the matrix well-formed without
    # affecting the answer.
    circuit.add(CurrentSource.dc("ibias", "node", "0", 0.0))
    return circuit


class TestMNAAssembler:
    def test_system_size_counts_nodes_and_sources(self):
        assembler = MNAAssembler(divider_circuit())
        assert assembler.n_nodes == 2
        assert assembler.n_branches == 1
        assert assembler.size == 3

    def test_index_of_ground_is_none(self):
        assembler = MNAAssembler(divider_circuit())
        assert assembler.index_of("0") is None
        assert assembler.index_of("in") is not None

    def test_unknown_node_raises(self):
        assembler = MNAAssembler(divider_circuit())
        with pytest.raises(MNAError):
            assembler.index_of("nonexistent")

    def test_conductance_matrix_is_symmetric_without_sources(self):
        circuit = Circuit("rr")
        circuit.add(Resistor("r1", "a", "b", 100.0))
        circuit.add(Resistor("r2", "b", "0", 100.0))
        circuit.add(CurrentSource.dc("i", "a", "0", 1e-3))
        assembler = MNAAssembler(circuit)
        g = assembler.conductance_matrix.toarray()
        assert np.allclose(g, g.T)

    def test_source_vector_tracks_waveform(self):
        circuit = Circuit("ramp")
        circuit.add(
            VoltageSource("vin", "in", "0", PiecewiseLinear(points=((0.0, 0.0), (1e-9, 1.0))))
        )
        circuit.add(Resistor("r", "in", "0", 100.0))
        assembler = MNAAssembler(circuit)
        assert assembler.source_vector(0.0)[assembler.branch_index("vin")] == 0.0
        assert assembler.source_vector(1e-9)[assembler.branch_index("vin")] == pytest.approx(1.0)

    def test_branch_index_unknown_source(self):
        assembler = MNAAssembler(divider_circuit())
        with pytest.raises(MNAError):
            assembler.branch_index("nonexistent")

    def test_initial_solution_rejects_unknown_node(self):
        assembler = MNAAssembler(divider_circuit())
        with pytest.raises(MNAError):
            assembler.initial_solution({"bogus": 1.0})


class TestDCOperatingPoint:
    def test_resistive_divider(self):
        result = dc_operating_point(divider_circuit())
        assert result.converged
        assert result.voltage("out") == pytest.approx(0.75, rel=1e-6)
        assert result.voltage("in") == pytest.approx(1.0, rel=1e-6)

    def test_current_source_into_resistor(self):
        circuit = Circuit("ir")
        circuit.add(CurrentSource.dc("i1", "0", "node", 1e-3))  # 1 mA into the node
        circuit.add(Resistor("r1", "node", "0", 2000.0))
        result = dc_operating_point(circuit)
        assert result.voltage("node") == pytest.approx(2.0, rel=1e-6)

    def test_nmos_pulldown_divider(self):
        """An on NMOS against a resistive load settles between the rails."""
        circuit = Circuit("nmos-load")
        circuit.add(VoltageSource.dc("vdd", "vdd", "0", 0.7))
        circuit.add(Resistor("rload", "vdd", "out", 20_000.0))
        circuit.add(MOSFET("mn", "out", "vdd", "0", default_n10_nmos()))
        result = dc_operating_point(circuit)
        assert result.converged
        assert 0.0 < result.voltage("out") < 0.45

    def test_cmos_inverter_transfer_extremes(self):
        def inverter_output(v_in):
            circuit = Circuit("inverter")
            circuit.add(VoltageSource.dc("vdd", "vdd", "0", 0.7))
            circuit.add(VoltageSource.dc("vin", "in", "0", v_in))
            circuit.add(MOSFET("mp", "out", "in", "vdd", default_n10_pmos()))
            circuit.add(MOSFET("mn", "out", "in", "0", default_n10_nmos()))
            guess = {"out": 0.7 - v_in}
            return dc_operating_point(circuit, initial_voltages=guess).voltage("out")

        assert inverter_output(0.0) > 0.65
        assert inverter_output(0.7) < 0.05

    def test_sram_cell_holds_state(self):
        """The cross-coupled 6T core keeps the state given as the initial guess."""
        circuit = Circuit("6t-hold")
        circuit.add(VoltageSource.dc("vdd", "vdd", "0", 0.7))
        nmos = default_n10_nmos()
        pmos = default_n10_pmos()
        circuit.add(MOSFET("pd1", "q", "qb", "0", nmos))
        circuit.add(MOSFET("pd2", "qb", "q", "0", nmos))
        circuit.add(MOSFET("pu1", "q", "qb", "vdd", pmos))
        circuit.add(MOSFET("pu2", "qb", "q", "vdd", pmos))
        result = dc_operating_point(circuit, initial_voltages={"q": 0.0, "qb": 0.7})
        assert result.voltage("q") < 0.05
        assert result.voltage("qb") > 0.65


class TestTransient:
    def test_rc_discharge_matches_analytic_decay(self):
        resistance, capacitance, v0 = 1000.0, 1e-12, 1.0
        tau = resistance * capacitance
        options = TransientOptions(t_stop_s=3 * tau, dt_initial_s=tau / 500, dt_max_s=tau / 50)
        result = run_transient(
            rc_circuit(resistance, capacitance, v0),
            options=options,
            initial_voltages={"node": v0},
        )
        for multiple in (0.5, 1.0, 2.0):
            expected = v0 * math.exp(-multiple)
            measured = result.voltage_at("node", multiple * tau)
            assert measured == pytest.approx(expected, rel=0.03)

    def test_rc_charge_through_source(self):
        resistance, capacitance = 1000.0, 1e-12
        tau = resistance * capacitance
        circuit = Circuit("rc-charge")
        circuit.add(VoltageSource.dc("vin", "in", "0", 1.0))
        circuit.add(Resistor("r", "in", "out", resistance))
        circuit.add(Capacitor("c", "out", "0", capacitance))
        options = TransientOptions(t_stop_s=5 * tau, dt_initial_s=tau / 500, dt_max_s=tau / 50)
        result = run_transient(circuit, options=options, initial_voltages={"out": 0.0})
        assert result.voltage_at("out", tau) == pytest.approx(1.0 - math.exp(-1.0), rel=0.03)
        assert result.final_voltage("out") == pytest.approx(1.0, abs=0.02)

    def test_trapezoidal_method_matches_analytic(self):
        resistance, capacitance, v0 = 1000.0, 1e-12, 1.0
        tau = resistance * capacitance
        options = TransientOptions(
            t_stop_s=2 * tau, dt_initial_s=tau / 200, dt_max_s=tau / 40, method="trapezoidal"
        )
        result = run_transient(
            rc_circuit(resistance, capacitance, v0), options=options, initial_voltages={"node": v0}
        )
        assert result.voltage_at("node", tau) == pytest.approx(v0 * math.exp(-1.0), rel=0.03)

    def test_stop_condition_ends_simulation_early(self):
        resistance, capacitance, v0 = 1000.0, 1e-12, 1.0
        tau = resistance * capacitance
        options = TransientOptions(t_stop_s=10 * tau, dt_initial_s=tau / 500, dt_max_s=tau / 50)
        result = run_transient(
            rc_circuit(resistance, capacitance, v0),
            options=options,
            initial_voltages={"node": v0},
            stop_condition=lambda _t, v: v["node"] < 0.5,
        )
        assert result.stop_reason == "stop-condition"
        assert result.end_time_s < 2.0 * tau

    def test_record_nodes_subset(self):
        circuit = divider_circuit()
        circuit.add(Capacitor("cload", "out", "0", 1e-15))
        options = TransientOptions(t_stop_s=1e-11, dt_initial_s=1e-13, dt_max_s=1e-12,
                                   record_nodes=["out"])
        result = TransientSolver(circuit, options=options).run()
        assert result.nodes == ["out"]

    def test_unknown_record_node_raises(self):
        circuit = divider_circuit()
        circuit.add(Capacitor("cload", "out", "0", 1e-15))
        options = TransientOptions(t_stop_s=1e-11, dt_initial_s=1e-13, dt_max_s=1e-12,
                                   record_nodes=["bogus"])
        with pytest.raises(MNAError):
            TransientSolver(circuit, options=options).run()

    def test_options_validation(self):
        with pytest.raises(ValueError):
            TransientOptions(t_stop_s=-1.0)
        with pytest.raises(ValueError):
            TransientOptions(dt_initial_s=1e-15, dt_min_s=1e-12)
        with pytest.raises(ValueError):
            TransientOptions(method="gear")

    def test_nmos_discharges_capacitor_when_gated_on(self):
        """A word-line style ramp turning on an NMOS discharges the load cap."""
        circuit = Circuit("switch")
        load = 5e-15
        circuit.add(Capacitor("cload", "bl", "0", load, initial_voltage_v=0.7))
        circuit.add(
            VoltageSource("vg", "g", "0", PiecewiseLinear(points=((0.0, 0.0), (2e-12, 0.7))))
        )
        circuit.add(MOSFET("mn", "bl", "g", "0", default_n10_nmos()))
        options = TransientOptions(t_stop_s=3e-10, dt_initial_s=1e-13, dt_max_s=2e-12)
        result = run_transient(circuit, options=options, initial_voltages={"bl": 0.7, "g": 0.0})
        assert result.final_voltage("bl") < 0.1
        crossing = result.crossing_time_s("bl", 0.35, direction="falling")
        assert crossing is not None and crossing > 0.0
