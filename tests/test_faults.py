"""Tests of the fault-injection harness and the campaign failure policies.

The chaos acceptance bar of the fault-tolerance layer: with injected
faults active, ``retry`` reproduces the fault-free records bit-for-bit
for transient faults, ``skip`` isolates the failing items into typed
error rows while every survivor stays bit-identical, pool-worker crashes
are recovered by re-executing the lost chunks, and a twice-crashing
poison item is quarantined instead of crashing workers forever.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro.core.campaign import (
    CampaignExecutionError,
    SimulationCampaign,
    scenario_grid,
)
from repro.testing import FaultPlan, FaultPlanError, InjectedSolverFault, faults
from repro.testing.faults import FAULTS_ENV, active_plan, injected
from repro.variability.doe import StudyDOE


def nominal_campaign(**overrides) -> SimulationCampaign:
    """A tiny two-chunk campaign (two stored values, one size, nominals)."""
    from repro.technology import n10

    defaults = dict(
        doe=StudyDOE(array_sizes=(16,)),
        scenarios=scenario_grid(stored_values=(0, 1)),
    )
    defaults.update(overrides)
    return SimulationCampaign(n10(), **defaults)


def strip_wall(record):
    """wall_s is wall-clock, not physics; everything else must match."""
    return replace(record, wall_s=0.0)


@pytest.fixture()
def fault_free_records():
    results = nominal_campaign().run(kinds=("nominal",))
    assert not results.failures
    return {record.key: strip_wall(record) for record in results.records}


class TestFaultPlan:
    def test_env_round_trip(self):
        plan = FaultPlan(seed=7, solver_fail_keys=("a", "b"), solver_fail_rate=0.25)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_validation(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(solver_fail_rate=1.5)
        with pytest.raises(FaultPlanError):
            FaultPlan(solver_fail_attempts=0)
        with pytest.raises(FaultPlanError):
            FaultPlan(worker_crash_keys=("k",))  # needs state_dir
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"bogus": 1})

    def test_hash_rate_is_deterministic(self):
        plan = FaultPlan(seed=3, solver_fail_rate=0.5)
        first = [plan.hits_solver(f"item-{i}") for i in range(64)]
        assert first == [plan.hits_solver(f"item-{i}") for i in range(64)]
        assert any(first) and not all(first)

    def test_active_plan_absent_and_malformed(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert active_plan() is None
        monkeypatch.setenv(FAULTS_ENV, "{not json")
        with pytest.raises(FaultPlanError):
            active_plan()

    def test_injected_restores_environment(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        with injected(FaultPlan(seed=1)) as plan:
            assert active_plan() == plan
        assert FAULTS_ENV not in os.environ

    def test_hooks_are_noops_without_a_plan(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        faults.check_solver("any-key")
        faults.maybe_crash_worker("any-key", in_pool_worker=True)
        assert faults.maybe_truncate_cache("fp", "text") == "text"
        assert faults.http_fault() is None


class TestFailurePolicies:
    def test_fail_fast_raises_the_typed_failure(self, fault_free_records):
        campaign = nominal_campaign(failure_policy="fail_fast")
        target = campaign.work_items(kinds=("nominal",))[0].key
        with injected(FaultPlan(solver_fail_keys=(target,), solver_fail_attempts=99)):
            with pytest.raises(CampaignExecutionError) as excinfo:
                campaign.run(kinds=("nominal",))
        assert excinfo.value.failure.key == target
        assert excinfo.value.failure.classification == "injected"

    def test_skip_isolates_the_failure_and_survivors_are_bit_identical(
        self, fault_free_records
    ):
        campaign = nominal_campaign(failure_policy="skip")
        items = campaign.work_items(kinds=("nominal",))
        target = items[0].key
        with injected(FaultPlan(solver_fail_keys=(target,), solver_fail_attempts=99)):
            results = campaign.run(kinds=("nominal",))
        assert [f.key for f in results.failures] == [target]
        failure = results.failures[0]
        assert failure.classification == "injected"
        assert failure.error_type == "InjectedSolverFault"
        assert failure.attempts == 1
        survivors = {record.key: strip_wall(record) for record in results.records}
        assert set(survivors) == set(fault_free_records) - {target}
        for key, record in survivors.items():
            assert record == fault_free_records[key]

    def test_retry_recovers_a_transient_fault_bit_identically(
        self, fault_free_records
    ):
        campaign = nominal_campaign(
            failure_policy="retry", max_retries=2, retry_backoff_s=0.001
        )
        target = campaign.work_items(kinds=("nominal",))[0].key
        # solver_fail_attempts=1: the fault fires on attempt 0 only, so
        # the first retry re-runs clean at rescue level 0 and must
        # reproduce the fault-free record bit-for-bit.
        with injected(FaultPlan(solver_fail_keys=(target,), solver_fail_attempts=1)):
            results = campaign.run(kinds=("nominal",))
        assert not results.failures
        produced = {record.key: strip_wall(record) for record in results.records}
        assert produced == fault_free_records

    def test_retry_exhaustion_counts_every_attempt(self):
        campaign = nominal_campaign(
            failure_policy="retry", max_retries=2, retry_backoff_s=0.001
        )
        target = campaign.work_items(kinds=("nominal",))[0].key
        with injected(FaultPlan(solver_fail_keys=(target,), solver_fail_attempts=99)):
            results = campaign.run(kinds=("nominal",))
        assert [f.key for f in results.failures] == [target]
        assert results.failures[0].attempts == 3

    def test_failed_items_are_retried_by_the_next_run(self, fault_free_records):
        campaign = nominal_campaign(failure_policy="skip")
        target = campaign.work_items(kinds=("nominal",))[0].key
        with injected(FaultPlan(solver_fail_keys=(target,), solver_fail_attempts=99)):
            partial = campaign.run(kinds=("nominal",))
        assert partial.failures
        # Fault cleared: the same campaign object re-runs only the failed
        # item (the survivor is memoised) and completes.
        complete = campaign.run(kinds=("nominal",))
        assert not complete.failures
        produced = {record.key: strip_wall(record) for record in complete.records}
        assert produced == fault_free_records

    def test_invalid_policy_rejected(self):
        from repro.core.campaign import CampaignError

        with pytest.raises(CampaignError):
            nominal_campaign(failure_policy="explode")
        with pytest.raises(CampaignError):
            nominal_campaign(max_retries=-1)
        with pytest.raises(CampaignError):
            nominal_campaign(item_timeout_s=0.0)


class TestWorkerCrashRecovery:
    def test_lost_chunks_are_reexecuted_once(self, tmp_path, fault_free_records):
        campaign = nominal_campaign(failure_policy="skip")
        target = campaign.work_items(kinds=("nominal",))[0].key
        plan = FaultPlan(
            state_dir=str(tmp_path / "faults"),
            worker_crash_keys=(target,),
            worker_crash_limit=1,
        )
        with injected(plan):
            results = campaign.run(
                workers=2, clamp_to_cpus=False, kinds=("nominal",)
            )
        # One worker died holding the item; the rebuilt pool re-executed
        # the lost chunks and every record still matches fault-free.
        assert not results.failures
        produced = {record.key: strip_wall(record) for record in results.records}
        assert produced == fault_free_records

    def test_poison_item_is_quarantined(self, tmp_path, fault_free_records):
        campaign = nominal_campaign(failure_policy="skip")
        target = campaign.work_items(kinds=("nominal",))[0].key
        plan = FaultPlan(
            state_dir=str(tmp_path / "faults"),
            worker_crash_keys=(target,),
            worker_crash_limit=2,
        )
        with injected(plan):
            results = campaign.run(
                workers=2, clamp_to_cpus=False, kinds=("nominal",)
            )
        assert [f.key for f in results.failures] == [target]
        failure = results.failures[0]
        assert failure.classification == "worker_crash"
        assert failure.stage == "worker"
        assert failure.attempts == 2
        survivors = {record.key: strip_wall(record) for record in results.records}
        assert set(survivors) == set(fault_free_records) - {target}
        for key, record in survivors.items():
            assert record == fault_free_records[key]


class TestBatchQuarantine:
    """Failure isolation inside the batched solver tier.

    A whole campaign chunk is solved jointly in batched mode, so the
    fault-injection contract tightens: a fault hitting one item of the
    batch must quarantine exactly that item (its batch slot counts as
    attempt 0), while the surviving batch mates keep their jointly-solved
    records bit-identical to the scalar oracle.
    """

    def _campaign(self, solver, **overrides):
        from repro.technology import n10

        defaults = dict(
            doe=StudyDOE(array_sizes=(16,)),
            scenarios=scenario_grid(operations=("read_snm",)),
            solver=solver,
        )
        defaults.update(overrides)
        return SimulationCampaign(n10(), **defaults)

    def test_fault_in_batch_quarantines_only_that_item(self):
        oracle = self._campaign("scalar").run()
        assert not oracle.failures
        scalar_records = {r.key: strip_wall(r) for r in oracle.records}

        campaign = self._campaign("batched", failure_policy="skip")
        items = campaign.work_items()
        assert len(items) >= 4  # nominal + the three paper options, one chunk
        target = next(item.key for item in items if item.kind == "corner")
        with injected(FaultPlan(solver_fail_keys=(target,), solver_fail_attempts=99)):
            results = campaign.run()

        assert [f.key for f in results.failures] == [target]
        failure = results.failures[0]
        assert failure.classification == "injected"
        assert failure.attempts == 1  # the batch slot was the only attempt
        survivors = {r.key: strip_wall(r) for r in results.records}
        assert set(survivors) == set(scalar_records) - {target}
        for key, record in survivors.items():
            assert record == scalar_records[key]
        # The survivors really were solved jointly, minus the quarantined
        # item: the batch shrank by one.
        for record in results.records:
            assert record.solver == "batched"
            assert record.batch_size == len(items) - 1

    def test_transient_fault_in_batch_recovers_via_scalar_retry(self):
        oracle = self._campaign("scalar").run()
        scalar_records = {r.key: strip_wall(r) for r in oracle.records}

        campaign = self._campaign(
            "batched", failure_policy="retry", max_retries=2, retry_backoff_s=0.001
        )
        target = campaign.work_items()[0].key
        # The fault fires on the batch attempt (attempt 0) only; the item
        # drops to the scalar retry ladder and attempt 1 re-runs clean.
        with injected(FaultPlan(solver_fail_keys=(target,), solver_fail_attempts=1)):
            results = campaign.run()
        assert not results.failures
        produced = {r.key: strip_wall(r) for r in results.records}
        assert produced == scalar_records
        by_key = {r.key: r for r in results.records}
        assert by_key[target].solver == "scalar"  # rescued off-batch
        survivors = [r for r in results.records if r.key != target]
        assert survivors and all(r.solver == "batched" for r in survivors)


class TestInjectedSolverFault:
    def test_is_a_convergence_error_with_marker(self):
        from repro.circuit.dc import ConvergenceError

        error = InjectedSolverFault("synthetic")
        assert isinstance(error, ConvergenceError)
        assert error.failure_classification == "injected"
