"""Tests of waveform measurements and SPICE netlist I/O."""

import numpy as np
import pytest

from repro.circuit.elements import DC, Capacitor, CurrentSource, PiecewiseLinear, Pulse, Resistor, VoltageSource
from repro.circuit.mosfet import MOSFET
from repro.circuit.netlist import Circuit
from repro.circuit.spice_io import SpiceFormatError, read_spice, write_spice
from repro.circuit.waveform import MeasurementError, TransientResult
from repro.technology.transistors import default_n10_nmos


def ramp_result():
    times = np.linspace(0.0, 1e-9, 101)
    falling = 0.7 - 0.7 * times / 1e-9          # 0.7 V -> 0 V
    constant = np.full_like(times, 0.7)
    return TransientResult(times_s=times, voltages={"bl": falling, "blb": constant})


class TestTransientResult:
    def test_nodes_and_end_time(self):
        result = ramp_result()
        assert set(result.nodes) == {"bl", "blb"}
        assert result.end_time_s == pytest.approx(1e-9)

    def test_voltage_at_interpolates(self):
        assert ramp_result().voltage_at("bl", 0.5e-9) == pytest.approx(0.35)

    def test_falling_crossing_time(self):
        crossing = ramp_result().crossing_time_s("bl", 0.35, direction="falling")
        assert crossing == pytest.approx(0.5e-9, rel=1e-6)

    def test_rising_crossing_absent(self):
        assert ramp_result().crossing_time_s("bl", 0.35, direction="rising") is None

    def test_differential_crossing(self):
        # |bl - blb| = 0.7 t / 1ns; reaches 0.07 at t = 0.1 ns.
        crossing = ramp_result().differential_crossing_time_s("bl", "blb", 0.07)
        assert crossing == pytest.approx(0.1e-9, rel=1e-6)

    def test_differential_crossing_never_reached(self):
        result = ramp_result()
        assert result.differential_crossing_time_s("blb", "blb", 0.07) is None

    def test_delay_between(self):
        times = np.linspace(0.0, 1e-9, 101)
        wl = np.where(times > 0.2e-9, 0.7, 0.0)
        bl = np.maximum(0.7 - 0.7 * (times - 0.3e-9) / 0.5e-9, 0.0)
        bl = np.where(times < 0.3e-9, 0.7, bl)
        result = TransientResult(times_s=times, voltages={"wl": wl, "bl": bl})
        delay = result.delay_between("wl", 0.35, "bl", 0.35)
        assert delay is not None and delay > 0.0

    def test_unknown_node_raises(self):
        with pytest.raises(MeasurementError):
            ramp_result().voltage("nonexistent")

    def test_bad_direction_rejected(self):
        with pytest.raises(MeasurementError):
            ramp_result().crossing_time_s("bl", 0.35, direction="sideways")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(MeasurementError):
            TransientResult(times_s=np.array([0.0, 1.0]), voltages={"a": np.array([0.0])})

    def test_sample_on_new_grid(self):
        sampled = ramp_result().sample("bl", [0.0, 0.5e-9, 1e-9])
        assert sampled[1] == pytest.approx(0.35)

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(MeasurementError):
            ramp_result().differential_crossing_time_s("bl", "blb", 0.0)


class TestSpiceIO:
    def build_circuit(self):
        circuit = Circuit("rc with devices")
        circuit.add(VoltageSource.dc("vdd", "vdd", "0", 0.7))
        circuit.add(
            VoltageSource("vwl", "wl", "0", PiecewiseLinear(points=((0.0, 0.0), (1e-12, 0.7))))
        )
        circuit.add(CurrentSource("ileak", "vdd", "0", DC(1e-9)))
        circuit.add(Resistor("rbl", "bl", "mid", 123.4))
        circuit.add(Capacitor("cbl", "mid", "0", 2.5e-15, initial_voltage_v=0.7))
        circuit.add(MOSFET("mpg", "bl", "wl", "q", default_n10_nmos(), nfins=2))
        return circuit

    def test_write_contains_all_cards(self):
        text = write_spice(self.build_circuit())
        assert "Rrbl bl mid 123.4" in text
        assert "Ccbl mid 0 2.5e-15 IC=0.7" in text
        assert "Vvdd vdd 0 DC 0.7" in text
        assert "PWL(" in text
        assert "Mmpg bl wl q q nmos nfins=2" in text
        assert text.strip().endswith(".end")

    def test_write_to_file(self, tmp_path):
        path = tmp_path / "deck.sp"
        write_spice(self.build_circuit(), path)
        assert path.read_text().startswith("* rc with devices")

    def test_pulse_waveform_formatting(self):
        circuit = Circuit("pulse")
        circuit.add(VoltageSource("vp", "a", "0", Pulse(initial=0.0, pulsed=0.7)))
        circuit.add(Resistor("r", "a", "0", 100.0))
        assert "PULSE(" in write_spice(circuit)

    def test_round_trip_rc_network(self):
        circuit = Circuit("rc")
        circuit.add(VoltageSource.dc("vin", "in", "0", 0.7))
        circuit.add(Resistor("r1", "in", "out", 1000.0))
        circuit.add(Capacitor("c1", "out", "0", 1e-15))
        recovered = read_spice(write_spice(circuit))
        assert len(recovered) == 3
        assert recovered.element("r1").resistance_ohm == pytest.approx(1000.0)
        assert recovered.element("c1").capacitance_f == pytest.approx(1e-15)
        assert recovered.element("vin").value_at(0.0) == pytest.approx(0.7)

    def test_engineering_suffixes_parsed(self):
        deck = "* t\nRr1 a 0 1k\nCc1 a 0 2.5f\nVv1 a 0 DC 0.7\n.end\n"
        circuit = read_spice(deck)
        assert circuit.element("r1").resistance_ohm == pytest.approx(1000.0)
        assert circuit.element("c1").capacitance_f == pytest.approx(2.5e-15)

    def test_mosfet_cards_rejected_on_read(self):
        deck = "Mm1 d g s s nmos nfins=1\n.end\n"
        with pytest.raises(SpiceFormatError):
            read_spice(deck)

    def test_unsupported_card_rejected(self):
        with pytest.raises(SpiceFormatError):
            read_spice("Xsub a b mysub\n.end\n")

    def test_malformed_resistor_rejected(self):
        with pytest.raises(SpiceFormatError):
            read_spice("Rr1 a 0\n.end\n")

    def test_comments_and_dot_cards_ignored(self):
        deck = "* comment\n.option reltol=1e-4\nRr1 a 0 50\n.end\n"
        assert len(read_spice(deck)) == 1
