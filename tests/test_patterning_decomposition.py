"""Tests of mask decomposition (cyclic and graph colouring)."""

import pytest

from repro.layout.wire import NetRole, uniform_track_pattern
from repro.patterning.base import PatterningError
from repro.patterning.decomposition import (
    DecompositionReport,
    apply_assignment,
    build_conflict_graph,
    cyclic_assignment,
    graph_coloring_assignment,
    mask_labels,
    verify_assignment,
)


def dense_pattern(n_tracks=6, pitch=48.0, width=24.0):
    return uniform_track_pattern(
        nets=[f"N{i}" for i in range(n_tracks)],
        pitch_nm=pitch,
        width_nm=width,
        wire_length_nm=1000.0,
    )


class TestMaskLabels:
    def test_three_masks(self):
        assert mask_labels(3) == ("A", "B", "C")

    def test_many_masks_fall_back_to_numbered(self):
        labels = mask_labels(6)
        assert len(labels) == 6
        assert labels[0] == "M0"

    def test_zero_masks_rejected(self):
        with pytest.raises(PatterningError):
            mask_labels(0)


class TestCyclicAssignment:
    def test_three_mask_cycle(self):
        assignment = cyclic_assignment(dense_pattern(6), 3)
        assert assignment["N0"] == "A"
        assert assignment["N1"] == "B"
        assert assignment["N2"] == "C"
        assert assignment["N3"] == "A"

    def test_neighbours_never_share_a_mask_for_k_ge_2(self):
        for n_masks in (2, 3):
            assignment = cyclic_assignment(dense_pattern(8), n_masks)
            nets = [f"N{i}" for i in range(8)]
            for left, right in zip(nets, nets[1:]):
                assert assignment[left] != assignment[right]

    def test_same_mask_pitch_is_multiplied(self):
        pattern = dense_pattern(6)
        assignment = cyclic_assignment(pattern, 3)
        report = DecompositionReport.from_pattern(pattern, assignment, 3)
        # Same-mask neighbours are 3 pitches apart: space = 3*48 - 24.
        assert report.min_same_mask_space_nm == pytest.approx(3 * 48.0 - 24.0)


class TestConflictGraph:
    def test_adjacent_tracks_conflict(self):
        graph = build_conflict_graph(dense_pattern(4), same_mask_min_space_nm=40.0)
        assert graph.has_edge("N0", "N1")
        assert not graph.has_edge("N0", "N2")

    def test_wide_limit_creates_more_conflicts(self):
        graph = build_conflict_graph(dense_pattern(4), same_mask_min_space_nm=80.0)
        assert graph.has_edge("N0", "N2")

    def test_nonpositive_limit_rejected(self):
        with pytest.raises(PatterningError):
            build_conflict_graph(dense_pattern(4), same_mask_min_space_nm=0.0)


class TestGraphColoring:
    def test_two_colorable_with_adjacent_conflicts_only(self):
        assignment = graph_coloring_assignment(
            dense_pattern(6), n_masks=2, same_mask_min_space_nm=40.0
        )
        assert set(assignment.values()) <= {"A", "B"}
        assert not verify_assignment(dense_pattern(6), assignment, 40.0)

    def test_three_masks_needed_when_second_neighbours_conflict(self):
        pattern = dense_pattern(6)
        with pytest.raises(PatterningError):
            graph_coloring_assignment(pattern, n_masks=2, same_mask_min_space_nm=80.0)
        assignment = graph_coloring_assignment(pattern, n_masks=3, same_mask_min_space_nm=80.0)
        assert len(set(assignment.values())) == 3
        assert not verify_assignment(pattern, assignment, 80.0)

    def test_leftmost_track_gets_mask_a(self):
        assignment = graph_coloring_assignment(
            dense_pattern(6), n_masks=3, same_mask_min_space_nm=80.0
        )
        assert assignment["N0"] == "A"


class TestVerifyAndApply:
    def test_verify_detects_violation(self):
        pattern = dense_pattern(3)
        bad_assignment = {"N0": "A", "N1": "A", "N2": "B"}
        violations = verify_assignment(pattern, bad_assignment, same_mask_min_space_nm=40.0)
        assert ("N0", "N1", pytest.approx(24.0)) in [
            (a, b, pytest.approx(space)) for a, b, space in violations
        ]

    def test_apply_assignment_sets_masks(self):
        pattern = dense_pattern(3)
        assignment = cyclic_assignment(pattern, 3)
        decomposed = apply_assignment(pattern, assignment)
        assert [track.mask for track in decomposed] == ["A", "B", "C"]

    def test_apply_assignment_rejects_missing_nets(self):
        pattern = dense_pattern(3)
        with pytest.raises(PatterningError):
            apply_assignment(pattern, {"N0": "A"})

    def test_report_tracks_per_mask(self):
        pattern = dense_pattern(6)
        assignment = cyclic_assignment(pattern, 3)
        report = DecompositionReport.from_pattern(pattern, assignment, 3)
        assert report.tracks_per_mask == {"A": 2, "B": 2, "C": 2}
