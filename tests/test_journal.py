"""Tests of the durable job journal (WAL) and queue crash recovery.

The acceptance bar of the durability layer: every submission journaled
before dispatch, torn tails tolerated, replay returns exactly the
unfinished submissions, and a queue restarted over the same journal
(plus cache) completes every journaled job — byte-identically, because
completed work re-serves from the content-addressed cache.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api import ResultSet
from repro.core.spec import ArraySpec, ExecutionSpec, ExperimentSpec
from repro.service.cache import ResultCache
from repro.service.journal import JobJournal
from repro.service.queue import ExperimentQueue, JobState


def campaign_spec(**overrides) -> ExperimentSpec:
    return ExperimentSpec(
        kind="campaign", array=ArraySpec(sizes=(16,)), **overrides
    )


def tiny_result(spec: ExperimentSpec, value: float = 1.0) -> ResultSet:
    return ResultSet(
        spec=spec,
        records=[{"record": "stub", "value": value}],
        meta={"stub": True},
    )


def wait_until(predicate, timeout_s=5.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() >= deadline:
            return False
        time.sleep(interval_s)
    return True


class TestJobJournal:
    def test_submitted_then_terminal_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        spec = campaign_spec()
        token = journal.record_submitted(spec.fingerprint(), spec)
        outstanding = journal.replay()
        assert [entry.token for entry in outstanding] == [token]
        assert outstanding[0].fingerprint == spec.fingerprint()
        assert ExperimentSpec.from_dict(outstanding[0].spec) == spec
        journal.record_terminal(token, "done")
        assert journal.replay() == []

    def test_events_are_fsynced_json_lines(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        spec = campaign_spec()
        token = journal.record_submitted(spec.fingerprint(), spec)
        journal.record_terminal(token, "failed", error="boom")
        lines = [
            json.loads(line)
            for line in (tmp_path / "journal.jsonl").read_text().splitlines()
        ]
        assert [line["event"] for line in lines] == ["submitted", "terminal"]
        assert lines[1]["state"] == "failed"
        assert lines[1]["error"] == "boom"

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        spec = campaign_spec()
        journal.record_submitted(spec.fingerprint(), spec)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "submitted", "token": "dead-')  # kill -9 here
        outstanding = journal.replay()
        assert len(outstanding) == 1
        assert journal.skipped_lines == 1

    def test_replay_survives_reopening(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        spec = campaign_spec()
        JobJournal(path).record_submitted(spec.fingerprint(), spec)
        # A brand-new instance (a restarted process) sees the obligation.
        assert JobJournal(path).outstanding_count() == 1

    def test_compact_drops_finished_pairs_atomically(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        done = campaign_spec()
        open_spec = campaign_spec(execution=ExecutionSpec(seed=7))
        token = journal.record_submitted(done.fingerprint(), done)
        journal.record_terminal(token, "done")
        keep = journal.record_submitted(open_spec.fingerprint(), open_spec)
        assert journal.compact() == 2
        outstanding = journal.replay()
        assert [entry.token for entry in outstanding] == [keep]
        # Idempotent.
        assert journal.compact() == 0

    def test_missing_file_is_empty(self, tmp_path):
        journal = JobJournal(tmp_path / "never-written.jsonl")
        assert journal.replay() == []
        assert journal.compact() == 0
        stats = journal.stats_dict()
        assert stats["outstanding"] == 0


class TestQueueDurability:
    def test_submissions_journal_before_dispatch_and_settle_terminal(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        started = threading.Event()
        release = threading.Event()

        def slow_runner(spec):
            started.set()
            release.wait(5.0)
            return tiny_result(spec)

        with ExperimentQueue(workers=1, runner=slow_runner, journal=journal) as queue:
            job = queue.submit(campaign_spec())
            assert job.journal_token is not None
            assert started.wait(5.0)
            # Mid-flight: the obligation is durable.
            assert journal.outstanding_count() == 1
            release.set()
            queue.result(job.id, timeout=5.0)
            assert wait_until(lambda: journal.outstanding_count() == 0)

    def test_recover_resubmits_unfinished_jobs(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        spec = campaign_spec()
        # A dead process journaled a submission and never finished it.
        JobJournal(path).record_submitted(spec.fingerprint(), spec)

        seen = []

        def runner(spec):
            seen.append(spec.fingerprint())
            return tiny_result(spec)

        with ExperimentQueue(
            workers=1, runner=runner, journal=JobJournal(path)
        ) as queue:
            assert queue.recover() == 1
            assert wait_until(lambda: queue.stats()["completed"] == 1)
        assert seen == [spec.fingerprint()]
        # The obligation was handed off and the WAL compacted.
        assert JobJournal(path).outstanding_count() == 0

    def test_recover_serves_completed_jobs_from_cache_byte_identically(
        self, tmp_path
    ):
        path = tmp_path / "journal.jsonl"
        spec = campaign_spec()
        cache = ResultCache(tmp_path / "cache")
        reference = tiny_result(spec, value=1.0 / 3.0)
        cache.put(spec, reference)
        # Journaled, computed, cached — then killed before the terminal
        # event was appended.
        JobJournal(path).record_submitted(spec.fingerprint(), spec)

        def forbidden(spec):  # pragma: no cover - the cache must hit
            raise AssertionError("recovery recomputed a cached job")

        with ExperimentQueue(
            workers=1, runner=forbidden, cache=cache, journal=JobJournal(path)
        ) as queue:
            assert queue.recover() == 1
            jobs = queue.jobs()
            assert jobs[0]["state"] == JobState.DONE
            assert jobs[0]["cached"] is True
            replayed = queue.result(jobs[0]["id"], timeout=1.0)
        assert replayed.to_json() == ResultSet.from_dict(reference.to_dict()).to_json()

    def test_recover_marks_unreplayable_specs_terminal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        spec = campaign_spec()
        token = journal.record_submitted(spec.fingerprint(), spec)
        # Corrupt the journaled document (schema drift, hand editing...).
        text = path.read_text()
        path.write_text(text.replace('"kind":"campaign"', '"kind":"bogus"'))
        with ExperimentQueue(workers=1, runner=tiny_result, journal=JobJournal(path)) as queue:
            assert queue.recover() == 0
            assert queue.stats()["recovered"] == 0
        final = JobJournal(path)
        assert final.outstanding_count() == 0
        assert token not in [entry.token for entry in final.replay()]

    def test_recover_without_journal_is_a_noop(self):
        with ExperimentQueue(workers=1, runner=tiny_result) as queue:
            assert queue.recover() == 0

    def test_cancelled_jobs_settle_their_journal_obligation(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        release = threading.Event()

        def slow_runner(spec):
            release.wait(5.0)
            return tiny_result(spec)

        with ExperimentQueue(workers=1, runner=slow_runner, journal=journal) as queue:
            first = queue.submit(campaign_spec())
            # Coalesced twin: cancelling it must settle its own token.
            second = queue.submit(campaign_spec())
            assert queue.cancel(second.id) is True
            assert wait_until(lambda: journal.outstanding_count() == 1)
            release.set()
            queue.result(first.id, timeout=5.0)
            assert wait_until(lambda: journal.outstanding_count() == 0)


class TestJobDeadlines:
    def test_runaway_job_fails_at_the_deadline(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        release = threading.Event()

        def runaway(spec):
            release.wait(10.0)
            return tiny_result(spec)

        queue = ExperimentQueue(
            workers=1, runner=runaway, journal=journal, job_timeout_s=0.2
        )
        try:
            job = queue.submit(campaign_spec())
            assert wait_until(
                lambda: queue.status(job.id)["state"] == JobState.FAILED, timeout_s=5.0
            )
            status = queue.status(job.id)
            assert "deadline exceeded" in status["error"]
            stats = queue.stats()
            assert stats["timeouts"] == 1
            # The deadline settles the journal too.
            assert journal.outstanding_count() == 0
        finally:
            release.set()
            queue.shutdown(wait=True)

    def test_fast_job_cancels_its_deadline_timer(self):
        queue = ExperimentQueue(workers=1, runner=tiny_result, job_timeout_s=30.0)
        try:
            job = queue.submit(campaign_spec())
            queue.result(job.id, timeout=5.0)
            assert wait_until(lambda: not queue._timers)
        finally:
            queue.shutdown(wait=True)

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            ExperimentQueue(workers=1, job_timeout_s=0.0)


class TestDrain:
    def test_drain_waits_for_inflight_work(self):
        release = threading.Event()

        def slow_runner(spec):
            release.wait(5.0)
            return tiny_result(spec)

        queue = ExperimentQueue(workers=1, runner=slow_runner)
        try:
            queue.submit(campaign_spec())
            assert queue.drain(timeout_s=0.05) is False
            release.set()
            assert queue.drain(timeout_s=5.0) is True
        finally:
            queue.shutdown(wait=True)

    def test_drain_on_idle_queue_returns_immediately(self):
        with ExperimentQueue(workers=1, runner=tiny_result) as queue:
            assert queue.drain(timeout_s=0.0) is True
