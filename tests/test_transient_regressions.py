"""Regression tests for the transient-solver step-budget semantics and the
Jacobian-template structure reuse.

The step-budget fixes guard two campaign-blocking bugs: a simulation that
reaches ``t_stop`` (or its stop condition) exactly on the ``max_steps``-th
accepted step must not raise, and rejected (non-converged, retried) steps
must not consume the budget.
"""

import numpy as np
import pytest

from repro.circuit.dc import ConvergenceError
from repro.circuit.elements import Capacitor, Resistor, VoltageSource
from repro.circuit.mna import CachedFactorSolver, JacobianTemplate, MNAAssembler
from repro.circuit.netlist import Circuit
from repro.circuit.transient import TransientOptions, TransientSolver


def rc_circuit(resistance_ohm: float = 1e4, capacitance_f: float = 1e-15) -> Circuit:
    circuit = Circuit("rc")
    circuit.add(VoltageSource.dc("vin", "in", "0", 1.0))
    circuit.add(Resistor("r1", "in", "out", resistance_ohm))
    circuit.add(Capacitor("c1", "out", "0", capacitance_f))
    return circuit


def fixed_step_options(dt: float, n_steps: int, max_steps: int) -> TransientOptions:
    """Options that force exactly ``n_steps`` equal steps to ``t_stop``."""
    return TransientOptions(
        t_stop_s=n_steps * dt,
        dt_initial_s=dt,
        dt_min_s=dt,
        dt_max_s=dt,
        max_steps=max_steps,
        record_nodes=["out"],
    )


#: A power-of-two step keeps every fixed-step sum below exact: ``k * DT``
#: and ``t_stop - k * DT`` are representable, so the step counts asserted
#: here cannot wobble with floating-point accumulation.
DT = 2.0 ** -40


class TestStepBudget:
    def test_completion_exactly_at_max_steps_does_not_raise(self):
        options = fixed_step_options(DT, n_steps=10, max_steps=10)
        result = TransientSolver(rc_circuit(), options=options).run()
        assert result.stop_reason == "tstop"
        assert len(result.times_s) == 11            # t=0 plus 10 accepted steps
        assert result.times_s[-1] == options.t_stop_s

    def test_stop_condition_on_last_budgeted_step_does_not_raise(self):
        options = fixed_step_options(DT, n_steps=20, max_steps=5)
        result = TransientSolver(rc_circuit(), options=options).run(
            stop_condition=lambda t, v: t >= 5 * DT
        )
        assert result.stop_reason == "stop-condition"
        assert len(result.times_s) == 6

    def test_budget_exhaustion_before_t_stop_still_raises(self):
        options = fixed_step_options(DT, n_steps=20, max_steps=10)
        with pytest.raises(ConvergenceError, match="accepted steps"):
            TransientSolver(rc_circuit(), options=options).run()

    def test_rejected_steps_do_not_consume_the_budget(self, monkeypatch):
        options = TransientOptions(
            t_stop_s=10 * DT,
            dt_initial_s=DT,
            dt_min_s=DT / 2.0,
            dt_max_s=DT,
            dt_shrink=0.999,                        # rejections barely shrink dt
            max_steps=14,
            record_nodes=["out"],
        )
        solver = TransientSolver(rc_circuit(), options=options)
        true_step = type(solver)._newton_step
        failures = {"remaining": 8}

        def flaky_step(self, x_prev, time_s, dt_s, x_guess):
            if failures["remaining"] > 0:
                failures["remaining"] -= 1
                return None
            return true_step(self, x_prev, time_s, dt_s, x_guess)

        monkeypatch.setattr(type(solver), "_newton_step", flaky_step)
        # 8 rejections plus ~11 accepted steps complete the window; if
        # rejections consumed the budget (8 + 14 > 14) the run would abort
        # a third of the way through.
        result = solver.run()
        assert result.stop_reason == "tstop"
        assert failures["remaining"] == 0
        assert result.times_s[-1] == pytest.approx(options.t_stop_s)


class TestJacobianStructureReuse:
    def test_same_topology_reuses_structure_and_matches_fresh_build(self):
        base = MNAAssembler(rc_circuit(1e4, 1e-15))
        donor = JacobianTemplate(base)
        varied = MNAAssembler(rc_circuit(2.3e4, 1.7e-15))
        reused = JacobianTemplate(varied, like=donor)
        fresh = JacobianTemplate(varied)
        assert reused.structure_reused
        assert not fresh.structure_reused
        np.testing.assert_array_equal(reused.indices, fresh.indices)
        np.testing.assert_array_equal(reused.indptr, fresh.indptr)
        np.testing.assert_array_equal(reused.g_data, fresh.g_data)
        np.testing.assert_array_equal(reused.c_data, fresh.c_data)
        np.testing.assert_array_equal(reused.nl_positions, fresh.nl_positions)

    def test_mismatched_topology_falls_back_to_full_build(self):
        donor = JacobianTemplate(MNAAssembler(rc_circuit()))
        other = Circuit("bigger")
        other.add(VoltageSource.dc("vin", "in", "0", 1.0))
        other.add(Resistor("r1", "in", "mid", 1e4))
        other.add(Resistor("r2", "mid", "out", 1e4))
        other.add(Capacitor("c1", "out", "0", 1e-15))
        template = JacobianTemplate(MNAAssembler(other), like=donor)
        assert not template.structure_reused
        reference = JacobianTemplate(MNAAssembler(other))
        np.testing.assert_array_equal(template.indices, reference.indices)
        np.testing.assert_array_equal(template.g_data, reference.g_data)

    def test_transient_results_identical_with_donated_structure(self):
        options = TransientOptions(t_stop_s=2e-11, record_nodes=["out"])
        donor_solver = TransientSolver(rc_circuit(1e4, 1e-15), options=options)
        donor_solver.run()
        varied = rc_circuit(3e4, 2e-15)
        plain = TransientSolver(varied, options=options).run()
        donated = TransientSolver(
            varied,
            options=options,
            jacobian_like=donor_solver.solver_cache.template,
        ).run()
        np.testing.assert_array_equal(plain.times_s, donated.times_s)
        np.testing.assert_array_equal(plain.voltages["out"], donated.voltages["out"])

    def test_cached_factor_solver_accepts_donor(self):
        assembler_a = MNAAssembler(rc_circuit(1e4, 1e-15))
        solver_a = CachedFactorSolver(assembler_a)
        assembler_b = MNAAssembler(rc_circuit(5e4, 4e-15))
        solver_b = CachedFactorSolver(assembler_b, like=solver_a.template)
        assert solver_b.template.structure_reused
        stamp = assembler_b.nonlinear_stamp(np.zeros(assembler_b.size))
        rhs = np.ones(assembler_b.size)
        expected = CachedFactorSolver(assembler_b).solve(1e13, stamp, rhs)
        np.testing.assert_array_equal(solver_b.solve(1e13, stamp, rhs), expected)
