"""Tests of the butterfly-curve static-noise-margin analyzer."""

import numpy as np
import pytest

from repro.sram.margins import (
    ButterflyCurves,
    MarginAnalysisError,
    SRAMMarginAnalyzer,
)
from repro.sram.read_path import ReadPathSimulator

from tests.conftest import SADP_WORST_CORNER


@pytest.fixture(scope="module")
def analyzer(node):
    return SRAMMarginAnalyzer(node)


class TestButterfly:
    def test_vtc_is_full_swing_and_monotone(self, analyzer):
        curves = analyzer.butterfly(16, mode="hold")
        vdd = 0.7
        assert curves.qb_of_q[0] == pytest.approx(vdd, abs=0.02)
        assert curves.qb_of_q[-1] == pytest.approx(0.0, abs=0.02)
        assert np.all(np.diff(curves.qb_of_q) <= 1e-6)
        assert np.all(np.diff(curves.q_of_qb) <= 1e-6)

    def test_largest_square_on_ideal_curves(self):
        # Two ideal step VTCs switching at vdd/2: each lobe admits a square
        # of side vdd/2 (the analytic optimum for a rail-to-rail step).
        u = np.linspace(0.0, 1.0, 201)
        step = np.where(u < 0.5, 1.0, 0.0)
        curves = ButterflyCurves(mode="hold", input_v=u, qb_of_q=step, q_of_qb=step)
        lobe1, lobe2 = curves.lobe_sides_v()
        assert lobe1 == pytest.approx(0.5, abs=0.02)
        assert lobe2 == pytest.approx(0.5, abs=0.02)

    def test_coincident_curves_have_no_lobes(self):
        u = np.linspace(0.0, 1.0, 101)
        line = 1.0 - u
        curves = ButterflyCurves(mode="hold", input_v=u, qb_of_q=line, q_of_qb=line)
        assert curves.snm_v() == pytest.approx(0.0, abs=1e-9)


class TestMeasurements:
    def test_hold_snm_is_positive_and_bounded(self, analyzer, node):
        measurement = analyzer.measure_hold_snm(64)
        vdd = node.operating_conditions.vdd_v
        assert 0.0 < measurement.snm_v < vdd / 2.0
        assert measurement.mode == "hold"

    def test_read_snm_is_below_hold_snm(self, analyzer):
        hold = analyzer.measure_hold_snm(64)
        read = analyzer.measure_read_snm(64)
        assert 0.0 < read.snm_v < hold.snm_v

    def test_nominal_lobes_are_nearly_symmetric(self, analyzer):
        measurement = analyzer.measure_hold_snm(64)
        assert measurement.lobe1_v == pytest.approx(measurement.lobe2_v, rel=0.05)

    def test_nominal_measurements_memoized(self, analyzer):
        assert analyzer.measure_hold_snm(64) is analyzer.measure_hold_snm(64)

    def test_hold_snm_degrades_monotonically_with_growing_variation(self, analyzer):
        """The acceptance pin: hold SNM must fall monotonically as the
        patterning-induced rail distortion grows.

        The rail response has a shallow non-monotone shoulder below ~2x
        (mild source degeneration first linearises the VTC transition);
        from there on the supply/ground droop compresses the lobes
        strictly, which is the regime this test pins.
        """
        nominal = analyzer.measure_hold_snm(64)
        degraded = [
            analyzer.measure_with_variation(64, vss_rvar=scale, mode="hold").snm_v
            for scale in (4.0, 8.0, 16.0)
        ]
        assert all(value > 0.0 for value in degraded)
        assert all(value < nominal.snm_v for value in degraded)
        assert degraded[0] > degraded[1] > degraded[2]

    def test_patterning_corner_moves_the_margins(self, analyzer, sadp_option):
        nominal = analyzer.measure_read_snm(16)
        varied = analyzer.measure_with_patterning(
            16, sadp_option, SADP_WORST_CORNER, mode="read"
        )
        assert varied.snm_v != nominal.snm_v
        assert abs(varied.degradation_percent_vs(nominal)) < 20.0

    def test_invalid_mode_rejected(self, analyzer):
        with pytest.raises(MarginAnalysisError, match="mode"):
            analyzer.measure_nominal(16, mode="standby")


class TestGeometrySharing:
    def test_shared_geometry_donor(self, node):
        donor = ReadPathSimulator(node)
        analyzer = SRAMMarginAnalyzer(node, geometry=donor)
        assert analyzer.geometry is donor
        analyzer.measure_hold_snm(16)
        assert 16 in donor._layout_cache

    def test_mismatched_donor_rejected(self, node):
        donor = ReadPathSimulator(node, n_bitline_pairs=4)
        with pytest.raises(MarginAnalysisError, match="geometry donor"):
            SRAMMarginAnalyzer(node, geometry=donor)
