"""Tests of wires, tracks and track patterns."""

import pytest

from repro.layout.geometry import Rect
from repro.layout.wire import (
    NetRole,
    Track,
    TrackPattern,
    Wire,
    WireError,
    uniform_track_pattern,
)


class TestNetRole:
    def test_bitline_pair_classification(self):
        assert NetRole.BITLINE.is_bitline_pair
        assert NetRole.BITLINE_BAR.is_bitline_pair
        assert not NetRole.VSS.is_bitline_pair

    def test_supply_classification(self):
        assert NetRole.VDD.is_supply
        assert NetRole.VSS.is_supply
        assert not NetRole.BITLINE.is_supply


class TestWire:
    def test_length_and_width(self):
        wire = Wire(net="BL", layer="metal1", rect=Rect(0.0, 0.0, 1000.0, 30.0))
        assert wire.length_nm == 1000.0
        assert wire.width_nm == 30.0
        assert wire.is_horizontal

    def test_vertical_wire(self):
        wire = Wire(net="WL", layer="metal2", rect=Rect(0.0, 0.0, 24.0, 500.0))
        assert not wire.is_horizontal
        assert wire.length_nm == 500.0

    def test_rejects_empty_net(self):
        with pytest.raises(WireError):
            Wire(net="", layer="metal1", rect=Rect(0.0, 0.0, 1.0, 1.0))

    def test_rejects_zero_area(self):
        with pytest.raises(WireError):
            Wire(net="BL", layer="metal1", rect=Rect(0.0, 0.0, 0.0, 1.0))


class TestTrack:
    def test_edges(self):
        track = Track(net="BL", center_nm=50.0, width_nm=30.0)
        assert track.left_edge_nm == 35.0
        assert track.right_edge_nm == 65.0
        assert track.extent.length == 30.0

    def test_shift_preserves_width(self):
        track = Track(net="BL", center_nm=50.0, width_nm=30.0).shifted(-8.0)
        assert track.center_nm == 42.0
        assert track.width_nm == 30.0

    def test_widen_preserves_center(self):
        track = Track(net="BL", center_nm=50.0, width_nm=30.0).widened(3.0)
        assert track.center_nm == 50.0
        assert track.width_nm == 33.0

    def test_widen_cannot_erase_track(self):
        with pytest.raises(WireError):
            Track(net="BL", center_nm=50.0, width_nm=30.0).widened(-30.0)

    def test_with_edges(self):
        track = Track(net="BL", center_nm=50.0, width_nm=30.0).with_edges(40.0, 70.0)
        assert track.center_nm == pytest.approx(55.0)
        assert track.width_nm == pytest.approx(30.0)

    def test_with_edges_rejects_inverted(self):
        with pytest.raises(WireError):
            Track(net="BL", center_nm=50.0, width_nm=30.0).with_edges(70.0, 40.0)

    def test_with_mask(self):
        assert Track(net="BL", center_nm=0.0, width_nm=10.0).with_mask("A").mask == "A"

    def test_rejects_nonpositive_width(self):
        with pytest.raises(WireError):
            Track(net="BL", center_nm=0.0, width_nm=0.0)


class TestTrackPattern:
    def make_pattern(self):
        return uniform_track_pattern(
            nets=["VSS", "BL", "VDD", "BLB"],
            pitch_nm=48.0,
            width_nm=24.0,
            wire_length_nm=1000.0,
            roles=[NetRole.VSS, NetRole.BITLINE, NetRole.VDD, NetRole.BITLINE_BAR],
        )

    def test_tracks_are_sorted_by_center(self):
        pattern = TrackPattern(
            [
                Track("B", center_nm=100.0, width_nm=10.0),
                Track("A", center_nm=0.0, width_nm=10.0),
            ],
            wire_length_nm=100.0,
        )
        assert pattern.nets == ["A", "B"]

    def test_spaces_and_pitches(self):
        pattern = self.make_pattern()
        assert pattern.pitches() == [48.0, 48.0, 48.0]
        assert pattern.spaces() == [24.0, 24.0, 24.0]
        assert pattern.min_space() == 24.0

    def test_index_and_track_lookup(self):
        pattern = self.make_pattern()
        assert pattern.index_of("VDD") == 2
        assert pattern.track_for("BL").role is NetRole.BITLINE
        with pytest.raises(KeyError):
            pattern.index_of("nonexistent")

    def test_roles_lookup(self):
        pattern = self.make_pattern()
        assert [track.net for track in pattern.tracks_with_role(NetRole.BITLINE)] == ["BL"]

    def test_neighbors(self):
        pattern = self.make_pattern()
        left, right = pattern.neighbors_of(0)
        assert left is None and right.net == "BL"
        left, right = pattern.neighbors_of(3)
        assert left.net == "VDD" and right is None

    def test_overlapping_tracks_rejected(self):
        with pytest.raises(WireError):
            TrackPattern(
                [
                    Track("A", center_nm=0.0, width_nm=30.0),
                    Track("B", center_nm=10.0, width_nm=30.0),
                ],
                wire_length_nm=100.0,
            )

    def test_empty_pattern_rejected(self):
        with pytest.raises(WireError):
            TrackPattern([], wire_length_nm=100.0)

    def test_replace_track(self):
        pattern = self.make_pattern()
        modified = pattern.replace_track(1, pattern[1].widened(4.0))
        assert modified.track_for("BL").width_nm == 28.0
        assert pattern.track_for("BL").width_nm == 24.0

    def test_translated(self):
        pattern = self.make_pattern().translated(10.0)
        assert pattern[0].center_nm == 10.0

    def test_tiled_net_naming_and_period(self):
        pattern = self.make_pattern().tiled(copies=3, period_nm=200.0)
        assert len(pattern) == 12
        assert "BL" in pattern.nets
        assert "BL@1" in pattern.nets and "BL@2" in pattern.nets
        assert pattern.track_for("BL@1").center_nm == pattern.track_for("BL").center_nm + 200.0

    def test_tiled_rejects_bad_arguments(self):
        pattern = self.make_pattern()
        with pytest.raises(WireError):
            pattern.tiled(copies=0, period_nm=200.0)
        with pytest.raises(WireError):
            pattern.tiled(copies=2, period_nm=0.0)

    def test_as_wires(self):
        pattern = self.make_pattern()
        wires = pattern.as_wires(layer="metal1")
        assert len(wires) == 4
        assert all(wire.rect.width == 1000.0 for wire in wires)
        assert wires[1].net == "BL"
        assert wires[1].rect.height == pytest.approx(24.0)

    def test_with_wire_length(self):
        pattern = self.make_pattern().with_wire_length(2000.0)
        assert pattern.wire_length_nm == 2000.0

    def test_summary_keys(self):
        summary = self.make_pattern().summary()
        assert {"tracks", "nets", "wire_length_nm", "min_space_nm", "extent_nm"} <= set(summary)


class TestUniformTrackPattern:
    def test_rejects_width_wider_than_pitch(self):
        with pytest.raises(WireError):
            uniform_track_pattern(["A", "B"], pitch_nm=48.0, width_nm=48.0, wire_length_nm=10.0)

    def test_rejects_mismatched_roles(self):
        with pytest.raises(WireError):
            uniform_track_pattern(
                ["A", "B"], pitch_nm=48.0, width_nm=24.0, wire_length_nm=10.0, roles=[NetRole.VSS]
            )
