"""Tests of the geometry primitives."""

import pytest

from repro.layout.geometry import (
    GeometryError,
    Interval,
    Point,
    Polygon,
    Rect,
    bounding_box_of,
)


class TestPoint:
    def test_translation(self):
        assert Point(1.0, 2.0).translated(3.0, -1.0) == Point(4.0, 1.0)

    def test_distance(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)


class TestInterval:
    def test_length_and_center(self):
        interval = Interval(2.0, 6.0)
        assert interval.length == 4.0
        assert interval.center == 4.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(GeometryError):
            Interval(5.0, 1.0)

    def test_contains_with_tolerance(self):
        interval = Interval(0.0, 1.0)
        assert interval.contains(1.0)
        assert not interval.contains(1.01)
        assert interval.contains(1.01, tolerance=0.02)

    def test_overlap_and_intersection(self):
        a = Interval(0.0, 5.0)
        b = Interval(3.0, 8.0)
        assert a.overlaps(b)
        assert a.intersection(b) == Interval(3.0, 5.0)
        assert a.intersection(Interval(6.0, 7.0)) is None

    def test_gap_to(self):
        assert Interval(0.0, 1.0).gap_to(Interval(3.0, 4.0)) == pytest.approx(2.0)
        assert Interval(3.0, 4.0).gap_to(Interval(0.0, 1.0)) == pytest.approx(2.0)
        assert Interval(0.0, 2.0).gap_to(Interval(1.0, 3.0)) == 0.0

    def test_shift_and_grow(self):
        assert Interval(0.0, 2.0).shifted(1.0) == Interval(1.0, 3.0)
        assert Interval(0.0, 2.0).grown(0.5) == Interval(-0.5, 2.5)

    def test_grow_cannot_invert(self):
        with pytest.raises(GeometryError):
            Interval(0.0, 1.0).grown(-1.0)


class TestRect:
    def test_from_center(self):
        rect = Rect.from_center(5.0, 5.0, 4.0, 2.0)
        assert rect == Rect(3.0, 4.0, 7.0, 6.0)

    def test_from_points_normalises_order(self):
        rect = Rect.from_points(Point(4.0, 1.0), Point(1.0, 3.0))
        assert rect == Rect(1.0, 1.0, 4.0, 3.0)

    def test_dimensions_and_area(self):
        rect = Rect(0.0, 0.0, 4.0, 2.0)
        assert rect.width == 4.0
        assert rect.height == 2.0
        assert rect.area == 8.0
        assert rect.center == Point(2.0, 1.0)

    def test_rejects_inverted_rect(self):
        with pytest.raises(GeometryError):
            Rect(1.0, 0.0, 0.0, 2.0)

    def test_intersection(self):
        a = Rect(0.0, 0.0, 4.0, 4.0)
        b = Rect(2.0, 2.0, 6.0, 6.0)
        assert a.intersects(b)
        assert a.intersection(b) == Rect(2.0, 2.0, 4.0, 4.0)
        assert a.intersection(Rect(5.0, 5.0, 6.0, 6.0)) is None

    def test_grown_and_translated(self):
        rect = Rect(1.0, 1.0, 3.0, 3.0)
        assert rect.grown(1.0) == Rect(0.0, 0.0, 4.0, 4.0)
        assert rect.translated(1.0, -1.0) == Rect(2.0, 0.0, 4.0, 2.0)

    def test_contains_point(self):
        rect = Rect(0.0, 0.0, 2.0, 2.0)
        assert rect.contains_point(Point(1.0, 1.0))
        assert rect.contains_point(Point(2.0, 2.0))
        assert not rect.contains_point(Point(2.1, 1.0))

    def test_union_bbox(self):
        assert Rect(0.0, 0.0, 1.0, 1.0).union_bbox(Rect(2.0, 2.0, 3.0, 3.0)) == Rect(0.0, 0.0, 3.0, 3.0)

    def test_corners_count(self):
        assert len(Rect(0.0, 0.0, 1.0, 1.0).corners()) == 4

    def test_intervals(self):
        rect = Rect(0.0, 1.0, 4.0, 3.0)
        assert rect.x_interval == Interval(0.0, 4.0)
        assert rect.y_interval == Interval(1.0, 3.0)


class TestPolygon:
    def test_area_of_rectangle_polygon(self):
        polygon = Polygon.from_rect(Rect(0.0, 0.0, 4.0, 2.0))
        assert polygon.area == pytest.approx(8.0)

    def test_area_of_triangle(self):
        polygon = Polygon.from_xy([(0.0, 0.0), (4.0, 0.0), (0.0, 3.0)])
        assert polygon.area == pytest.approx(6.0)

    def test_perimeter(self):
        polygon = Polygon.from_rect(Rect(0.0, 0.0, 3.0, 4.0))
        assert polygon.perimeter == pytest.approx(14.0)

    def test_bounding_box(self):
        polygon = Polygon.from_xy([(0.0, 0.0), (4.0, 1.0), (2.0, 5.0)])
        assert polygon.bounding_box() == Rect(0.0, 0.0, 4.0, 5.0)

    def test_translation(self):
        polygon = Polygon.from_xy([(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]).translated(2.0, 3.0)
        assert polygon.vertices[0] == Point(2.0, 3.0)

    def test_needs_three_vertices(self):
        with pytest.raises(GeometryError):
            Polygon.from_xy([(0.0, 0.0), (1.0, 1.0)])


class TestBoundingBoxOf:
    def test_multiple_rects(self):
        rects = [Rect(0.0, 0.0, 1.0, 1.0), Rect(-1.0, 2.0, 0.5, 3.0)]
        assert bounding_box_of(rects) == Rect(-1.0, 0.0, 1.0, 3.0)

    def test_empty_collection_rejected(self):
        with pytest.raises(GeometryError):
            bounding_box_of([])
