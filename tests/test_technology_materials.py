"""Tests of the BEOL material models."""

import math

import pytest

from repro.technology.materials import (
    AIR_GAP,
    COPPER,
    EPSILON_0_F_PER_NM,
    LOW_K,
    N10_MATERIALS,
    SIO2,
    TUNGSTEN,
    BarrierLiner,
    Conductor,
    Dielectric,
    MaterialError,
    MaterialSystem,
)


class TestConductor:
    def test_copper_bulk_resistivity_in_expected_range(self):
        assert 15.0 < COPPER.bulk_resistivity_ohm_nm < 18.0

    def test_effective_resistivity_exceeds_bulk_for_narrow_wires(self):
        rho = COPPER.effective_resistivity(width_nm=20.0, thickness_nm=40.0)
        assert rho > COPPER.bulk_resistivity_ohm_nm

    def test_effective_resistivity_approaches_bulk_for_wide_wires(self):
        rho_wide = COPPER.effective_resistivity(width_nm=10_000.0, thickness_nm=10_000.0)
        assert rho_wide == pytest.approx(COPPER.bulk_resistivity_ohm_nm, rel=0.02)

    def test_effective_resistivity_monotonically_decreases_with_width(self):
        widths = [15.0, 20.0, 30.0, 60.0, 120.0]
        rhos = [COPPER.effective_resistivity(w, 42.0) for w in widths]
        assert all(earlier >= later for earlier, later in zip(rhos, rhos[1:]))

    def test_no_size_effect_when_mean_free_path_is_zero(self):
        ideal = Conductor(name="ideal", bulk_resistivity_ohm_nm=10.0, mean_free_path_nm=0.0)
        assert ideal.effective_resistivity(5.0, 5.0) == 10.0

    def test_tungsten_more_resistive_than_copper(self):
        assert TUNGSTEN.bulk_resistivity_ohm_nm > COPPER.bulk_resistivity_ohm_nm

    def test_rejects_nonpositive_resistivity(self):
        with pytest.raises(MaterialError):
            Conductor(name="bad", bulk_resistivity_ohm_nm=0.0)

    def test_rejects_negative_mean_free_path(self):
        with pytest.raises(MaterialError):
            Conductor(name="bad", bulk_resistivity_ohm_nm=10.0, mean_free_path_nm=-1.0)

    def test_rejects_specularity_outside_unit_interval(self):
        with pytest.raises(MaterialError):
            Conductor(name="bad", bulk_resistivity_ohm_nm=10.0, specularity=1.5)

    def test_rejects_reflection_coefficient_of_one(self):
        with pytest.raises(MaterialError):
            Conductor(name="bad", bulk_resistivity_ohm_nm=10.0, reflection_coefficient=1.0)

    def test_rejects_degenerate_cross_section(self):
        with pytest.raises(MaterialError):
            COPPER.effective_resistivity(width_nm=0.0, thickness_nm=10.0)


class TestDielectric:
    def test_low_k_below_sio2(self):
        assert LOW_K.relative_permittivity < SIO2.relative_permittivity

    def test_air_gap_is_unity(self):
        assert AIR_GAP.relative_permittivity == 1.0

    def test_permittivity_conversion(self):
        assert SIO2.permittivity_f_per_nm == pytest.approx(3.9 * EPSILON_0_F_PER_NM)

    def test_rejects_sub_unity_permittivity(self):
        with pytest.raises(MaterialError):
            Dielectric(name="bad", relative_permittivity=0.5)


class TestBarrierLiner:
    def test_default_barrier_is_nonconductive(self):
        assert not BarrierLiner().conductive

    def test_rejects_negative_thickness(self):
        with pytest.raises(MaterialError):
            BarrierLiner(thickness_nm=-0.1)

    def test_rejects_nonpositive_resistivity(self):
        with pytest.raises(MaterialError):
            BarrierLiner(resistivity_ohm_nm=0.0)


class TestMaterialSystem:
    def test_default_system_uses_copper_and_low_k(self):
        assert N10_MATERIALS.conductor.name == "Cu"
        assert N10_MATERIALS.intra_layer_dielectric.name == "low-k"

    def test_permittivity_helpers_match_dielectrics(self):
        system = MaterialSystem()
        assert system.line_to_line_permittivity() == pytest.approx(
            system.intra_layer_dielectric.permittivity_f_per_nm
        )
        assert system.layer_to_layer_permittivity() == pytest.approx(
            system.inter_layer_dielectric.permittivity_f_per_nm
        )

    def test_mixed_dielectric_system(self):
        system = MaterialSystem(intra_layer_dielectric=AIR_GAP, inter_layer_dielectric=SIO2)
        assert system.line_to_line_permittivity() < system.layer_to_layer_permittivity()
