"""Tests of the metal-stack description."""

import pytest

from repro.technology.metal_stack import (
    MetalLayer,
    MetalStack,
    Orientation,
    PatterningClass,
    StackError,
    default_n10_metal_stack,
)


def make_layer(name="metal1", pitch=48.0, width=24.0, space=24.0, **kwargs):
    return MetalLayer(
        name=name,
        pitch_nm=pitch,
        min_width_nm=width,
        min_space_nm=space,
        thickness_nm=kwargs.pop("thickness_nm", 42.0),
        **kwargs,
    )


class TestMetalLayer:
    def test_aspect_ratio(self):
        layer = make_layer()
        assert layer.aspect_ratio == pytest.approx(42.0 / 24.0)

    def test_half_pitch(self):
        assert make_layer().half_pitch_nm == pytest.approx(24.0)

    def test_pitch_must_equal_width_plus_space(self):
        with pytest.raises(StackError):
            make_layer(pitch=50.0, width=24.0, space=24.0)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(StackError):
            make_layer(width=0.0, space=48.0)

    def test_rejects_extreme_taper(self):
        with pytest.raises(StackError):
            make_layer(tapering_angle_deg=60.0)

    def test_rejects_negative_dishing(self):
        with pytest.raises(StackError):
            make_layer(cmp_dishing_nm=-1.0)

    def test_with_updates_returns_modified_copy(self):
        layer = make_layer()
        thicker = layer.with_updates(thickness_nm=50.0)
        assert thicker.thickness_nm == 50.0
        assert layer.thickness_nm == 42.0
        assert thicker.name == layer.name


class TestMetalStack:
    def test_default_stack_has_metal1_to_metal3(self):
        stack = default_n10_metal_stack()
        assert stack.names == ["metal1", "metal2", "metal3"]

    def test_metal1_is_horizontal_metal2_vertical(self):
        stack = default_n10_metal_stack()
        assert stack.layer("metal1").orientation is Orientation.HORIZONTAL
        assert stack.layer("metal2").orientation is Orientation.VERTICAL

    def test_metal1_pitch_requires_multiple_patterning(self):
        # 48 nm pitch (24 nm half pitch) is well below the ~80 nm single
        # 193i exposure limit, so the layer must allow MP or EUV.
        layer = default_n10_metal_stack().layer("metal1")
        assert layer.pitch_nm <= 64.0
        assert layer.patterning_class in (
            PatterningClass.ANY,
            PatterningClass.DOUBLE,
            PatterningClass.TRIPLE,
        )

    def test_layer_lookup_raises_for_unknown_name(self):
        stack = default_n10_metal_stack()
        with pytest.raises(KeyError):
            stack.layer("metal9")

    def test_above_and_below(self):
        stack = default_n10_metal_stack()
        assert stack.below("metal1") is None
        assert stack.above("metal1").name == "metal2"
        assert stack.below("metal2").name == "metal1"
        assert stack.above("metal3") is None

    def test_replace_layer_preserves_order(self):
        stack = default_n10_metal_stack()
        modified = stack.replace_layer(
            "metal1", stack.layer("metal1").with_updates(thickness_nm=50.0)
        )
        assert modified.names == stack.names
        assert modified.layer("metal1").thickness_nm == 50.0
        assert stack.layer("metal1").thickness_nm != 50.0

    def test_duplicate_layer_names_rejected(self):
        layer = make_layer()
        with pytest.raises(StackError):
            MetalStack.from_layers([layer, layer])

    def test_empty_stack_rejected(self):
        with pytest.raises(StackError):
            MetalStack.from_layers([])

    def test_iteration_and_len(self):
        stack = default_n10_metal_stack()
        assert len(stack) == 3
        assert [layer.name for layer in stack] == stack.names

    def test_as_dict_round_trip(self):
        stack = default_n10_metal_stack()
        mapping = stack.as_dict()
        assert set(mapping) == set(stack.names)
        assert mapping["metal1"] is stack.layer("metal1")
