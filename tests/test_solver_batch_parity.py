"""Parity of the batched circuit-solver tier against the scalar oracle.

The batched tier (repro.circuit.batch) stacks same-topology Newton and
transient work from many campaign items into jointly-vectorized solves.
Its contract is parity by construction: every record must match the
scalar one-item-at-a-time path bit-for-bit (``rtol <= 1e-12`` with zero
atol, which in practice means exact equality — the two tiers share the
elementwise numerics).  Covered here:

- DC-sweep lanes (the SNM butterfly hot path) at batch sizes 1/3/17/64,
  including a rescue-ladder-in-lockstep batch (starved Newton budget)
  and the explicit scalar fallback under an active rescue context;
- transient lanes (read and write measurements) through the
  prepare/finish entry points;
- the full campaign across all four operations and every paper
  patterning option, batched vs scalar, record for record.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.circuit.batch import (
    SweepLaneSpec,
    batch_dc_sweep,
    run_lane_scalar,
    solve_prepared,
)
from repro.circuit.dc import NewtonOptions, solver_rescue
from repro.circuit.mna import reset_solver_stats, solver_stats
from repro.core.campaign import SimulationCampaign, scenario_grid
from repro.core.operations import OperationSimulators
from repro.core.study import StudyDOE
from repro.technology import n10

RTOL = 1e-12

#: Batch sizes from the issue: a singleton, a couple of odd sizes that
#: exercise ragged bucket shapes, and one full-width batch.
BATCH_SIZES = (1, 3, 17, 64)

OPERATIONS = ("read", "write", "hold_snm", "read_snm")


@pytest.fixture(scope="module")
def node():
    return n10()


@pytest.fixture(scope="module")
def sims(node):
    return OperationSimulators(node, n_bitline_pairs=4, max_segments=64)


def _butterfly_lanes(sims, count):
    """``count`` butterfly sweep lanes cycling over mode and cell count."""
    pool = []
    for n_cells, mode in ((16, "hold"), (16, "read"), (64, "hold"), (64, "read")):
        pool.extend(sims.margins._prepare_butterfly(n_cells, mode=mode).lanes)
    return [pool[i % len(pool)] for i in range(count)]


def _assert_sweep_equal(batched, scalar):
    assert batched.source_name == scalar.source_name
    assert batched.iterations_total == scalar.iterations_total
    np.testing.assert_allclose(
        np.asarray(batched.values), np.asarray(scalar.values), rtol=RTOL, atol=0.0
    )
    assert set(batched.voltages) == set(scalar.voltages)
    for name in scalar.voltages:
        np.testing.assert_allclose(
            batched.voltages[name], scalar.voltages[name], rtol=RTOL, atol=0.0
        )


class TestSweepLaneParity:
    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_butterfly_sweeps_match_scalar(self, sims, size):
        lanes = _butterfly_lanes(sims, size)
        batched = batch_dc_sweep(lanes)
        for lane, outcome in zip(lanes, batched):
            _assert_sweep_equal(outcome, run_lane_scalar(lane))

    def test_rescue_ladder_in_lockstep(self, sims):
        # A starved Newton budget forces sweep points through the rescue
        # ladder inside the batch; the scalar path is starved identically,
        # so the escalation schedule — and therefore every voltage — must
        # still agree bit for bit.
        starved = NewtonOptions(max_iterations=4, abs_tolerance_a=1e-8)
        lanes = [
            replace(lane, options=starved) for lane in _butterfly_lanes(sims, 6)
        ]
        batched = batch_dc_sweep(lanes)
        for lane, outcome in zip(lanes, batched):
            _assert_sweep_equal(outcome, run_lane_scalar(lane))

    def test_active_rescue_context_falls_back_to_scalar(self, sims):
        lanes = _butterfly_lanes(sims, 3)
        reset_solver_stats()
        with solver_rescue(2, seed=7):
            batched = batch_dc_sweep(lanes)
            scalars = [run_lane_scalar(lane) for lane in lanes]
        assert solver_stats().scalar_fallbacks >= len(lanes)
        for outcome, scalar in zip(batched, scalars):
            _assert_sweep_equal(outcome, scalar)


class TestPreparedMeasurementParity:
    @pytest.mark.parametrize("operation", OPERATIONS)
    def test_prepared_batch_matches_scalar_run(self, node, operation):
        # Two independent simulator bundles so neither tier sees the
        # other's memo caches or donated Jacobian templates.
        scalar_sims = OperationSimulators(node, n_bitline_pairs=4)
        batched_sims = OperationSimulators(node, n_bitline_pairs=4)

        def prepare(sims):
            if operation == "read":
                return [
                    sims.read.prepare_nominal(16, stored_value=sv) for sv in (0, 1)
                ]
            if operation == "write":
                return [
                    sims.write.prepare_nominal(16, write_value=wv) for wv in (0, 1)
                ]
            mode = "hold" if operation == "hold_snm" else "read"
            return [
                sims.margins.prepare_nominal(n, mode=mode) for n in (16, 64)
            ]

        scalar_results = [work.run_scalar() for work in prepare(scalar_sims)]
        batched_results = solve_prepared(prepare(batched_sims))
        assert len(batched_results) == len(scalar_results)
        for batched, scalar in zip(batched_results, scalar_results):
            assert not isinstance(batched, BaseException)
            assert batched == scalar

    def test_memo_hit_prepares_zero_lanes(self, node):
        sims = OperationSimulators(node, n_bitline_pairs=4)
        first = sims.read.prepare_nominal(16, stored_value=0)
        assert first.lanes
        measurement = first.run_scalar()
        hit = sims.read.prepare_nominal(16, stored_value=0)
        assert not hit.lanes
        (cached,) = solve_prepared([hit])
        assert cached == measurement


class TestCampaignParity:
    @pytest.mark.parametrize("size", (16, 64))
    def test_all_operations_and_options_match_scalar(self, node, size):
        doe = StudyDOE(array_sizes=(size,))
        scenarios = scenario_grid(operations=OPERATIONS)
        scalar = SimulationCampaign(
            node, doe=doe, scenarios=scenarios, solver="scalar"
        ).run()
        batched = SimulationCampaign(
            node, doe=doe, scenarios=scenarios, solver="batched"
        ).run()
        assert not scalar.failures and not batched.failures
        scalar_by_key = {r.key: r for r in scalar.records}
        assert set(scalar_by_key) == {r.key: r for r in batched.records}.keys()
        # Every paper option appears as a corner record.
        assert {r.option_name for r in batched.records if r.kind == "corner"} >= {
            "LELELE",
            "SADP",
            "EUV",
        }
        for record in batched.records:
            assert replace(record, wall_s=0.0) == replace(
                scalar_by_key[record.key], wall_s=0.0
            )

    def test_batched_records_carry_provenance(self, node):
        campaign = SimulationCampaign(
            node,
            doe=StudyDOE(array_sizes=(16,)),
            scenarios=scenario_grid(operations=("read_snm",)),
            solver="batched",
        )
        results = campaign.run()
        assert results.records
        for record in results.records:
            assert record.solver == "batched"
            assert record.batch_size >= 1
            assert record.batch_stats.get("batch_ticks", 0) > 0
        assert campaign.last_run_stats.get("batch_lane_iterations", 0) > 0

    def test_singleton_batch(self, node):
        doe = StudyDOE(array_sizes=(16,))
        scenarios = scenario_grid(operations=("write",))
        scalar = SimulationCampaign(
            node, doe=doe, scenarios=scenarios, solver="scalar"
        ).run(kinds=("nominal",))
        batched = SimulationCampaign(
            node, doe=doe, scenarios=scenarios, solver="batched"
        ).run(kinds=("nominal",))
        (a,) = scalar.records
        (b,) = batched.records
        assert b.batch_size == 1
        assert replace(a, wall_s=0.0) == replace(b, wall_s=0.0)
