"""Tests of the table formatters and figure exporters."""

import pytest

from repro.core.results import (
    FormulaVsSimulationTdRow,
    FormulaVsSimulationTdpRow,
    LayoutDistortionRecord,
    MonteCarloTdpRecord,
    TdpSigmaRow,
    TrackDistortion,
    WorstCaseRCRow,
    WorstCaseTdRow,
)
from repro.reporting.figures import (
    ascii_bar_chart,
    figure2_ascii,
    figure2_csv,
    figure3_csv,
    figure4_ascii,
    figure4_csv,
    figure5_ascii,
    figure5_csv,
    overlay_sweep_csv,
)
from repro.reporting.tables import (
    ReportingError,
    format_csv,
    format_figure4,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    render_table,
)
from repro.variability.statistics import Histogram, SummaryStatistics


def sample_table1():
    return [
        WorstCaseRCRow("LELELE", {"cd:A": 3.0, "ol:B": -8.0}, 53.7, -13.2, -17.6),
        WorstCaseRCRow("SADP", {"cd:core": -3.0, "spacer": -1.5}, 8.3, -23.4, 26.8),
        WorstCaseRCRow("EUV", {"cd:euv": 3.0}, 9.6, -13.2, -17.6),
    ]


def sample_figure4():
    return [
        WorstCaseTdRow("10x16", 16, 5.4, {"LELELE": 23.0, "SADP": 3.6, "EUV": 3.9}),
        WorstCaseTdRow("10x64", 64, 21.5, {"LELELE": 24.6, "SADP": 4.6, "EUV": 3.6}),
    ]


def sample_mc_record():
    samples = tuple(float(x) for x in range(-5, 6))
    return MonteCarloTdpRecord(
        option_name="LELELE",
        overlay_three_sigma_nm=8.0,
        n_wordlines=64,
        n_samples=len(samples),
        tdp_percent_samples=samples,
        summary=SummaryStatistics.from_samples(samples),
        histogram=Histogram.from_samples(samples, bins=5),
    )


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(["a", "bbb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "-+-" in lines[2]
        assert len(lines) == 5

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ReportingError):
            render_table(["a", "b"], [["1"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ReportingError):
            render_table([], [])


class TestTableFormatters:
    def test_table1_mentions_every_option_and_sign(self):
        text = format_table1(sample_table1())
        assert "LELELE" in text and "SADP" in text and "EUV" in text
        assert "+53.70%" in text
        assert "-23.40%" in text

    def test_figure4_columns(self):
        text = format_figure4(sample_figure4())
        assert "Nominal td (ps)" in text
        assert "tdp LELELE (%)" in text
        assert "10x64" in text

    def test_table2(self):
        rows = [FormulaVsSimulationTdRow("10x16", 16, 5.4e-12, 5.7e-12)]
        text = format_table2(rows)
        assert "5.40E-12" in text
        assert "0.95x" in text

    def test_table3(self):
        rows = [
            FormulaVsSimulationTdpRow("simulation", "10x16", 16, {"LELELE": 23.0, "SADP": 3.6}),
            FormulaVsSimulationTdpRow("formula", "10x16", 16, {"LELELE": 25.8, "SADP": 3.9}),
        ]
        text = format_table3(rows)
        assert "simulation" in text and "formula" in text
        assert "+25.80" in text

    def test_table4(self):
        rows = [
            TdpSigmaRow("10x64", "LELELE", 8.0, 2.05),
            TdpSigmaRow("10x64", "SADP", None, 0.85),
        ]
        text = format_table4(rows)
        assert "LELELE 8nm OL" in text
        assert "SADP" in text
        assert "2.050" in text

    def test_empty_rows_rejected(self):
        with pytest.raises(ReportingError):
            format_figure4([])
        with pytest.raises(ReportingError):
            format_table3([])

    def test_format_csv(self):
        text = format_csv(["a", "b"], [[1, 2], [3, 4]])
        assert text.splitlines() == ["a,b", "1,2", "3,4"]


class TestFigureExporters:
    def test_ascii_bar_chart(self):
        chart = ascii_bar_chart(["LE3", "SADP"], [20.0, 4.0], unit="%")
        assert "LE3" in chart and "#" in chart

    def test_ascii_bar_chart_validation(self):
        with pytest.raises(ReportingError):
            ascii_bar_chart(["a"], [])
        with pytest.raises(ReportingError):
            ascii_bar_chart(["a", "b"], [1.0])

    def test_figure2_outputs(self):
        record = LayoutDistortionRecord(
            option_name="LELELE",
            corner_parameters={"cd:A": 3.0},
            tracks=(
                TrackDistortion("VSS", "A", 0.0, 24.0, 0.0, 27.0),
                TrackDistortion("BL", "B", 48.0, 78.0, 40.0, 73.0),
            ),
        )
        ascii_view = figure2_ascii(record)
        assert "LELELE" in ascii_view and "drawn" in ascii_view and "printed" in ascii_view
        csv_view = figure2_csv([record])
        assert "width_change_nm" in csv_view.splitlines()[0]
        assert len(csv_view.splitlines()) == 3

    def test_figure3_csv(self):
        text = figure3_csv([{"label": "10x16", "n_wordlines": 16}, {"label": "10x64", "n_wordlines": 64}])
        assert text.splitlines()[0] == "label,n_wordlines"
        assert "10x64,64" in text

    def test_figure3_empty_rejected(self):
        with pytest.raises(ReportingError):
            figure3_csv([])

    def test_figure4_outputs(self):
        csv_view = figure4_csv(sample_figure4())
        assert "tdp_LELELE_percent" in csv_view.splitlines()[0]
        ascii_view = figure4_ascii(sample_figure4())
        assert "10x16" in ascii_view and "#" in ascii_view

    def test_figure5_outputs(self):
        record = sample_mc_record()
        ascii_view = figure5_ascii(record)
        assert "LELELE 8nm OL" in ascii_view
        csv_view = figure5_csv([record])
        assert csv_view.splitlines()[0] == "option,tdp_percent_bin_center,count"
        assert len(csv_view.splitlines()) == 1 + 5

    def test_overlay_sweep_csv(self):
        text = overlay_sweep_csv([(3.0, 1.0), (8.0, 2.0)])
        assert "overlay_3sigma_nm" in text.splitlines()[0]
        assert len(text.splitlines()) == 3


class TestResultContainers:
    def test_worst_case_row_ratios(self):
        row = sample_table1()[0]
        assert row.cvar == pytest.approx(1.537)
        assert row.rvar == pytest.approx(0.868)
        assert row.vss_rvar == pytest.approx(0.824)

    def test_track_distortion_metrics(self):
        track = TrackDistortion("BL", "B", 48.0, 78.0, 40.0, 73.0)
        assert track.width_change_nm == pytest.approx(3.0)
        assert track.center_shift_nm == pytest.approx(-6.5)

    def test_layout_record_lookup(self):
        record = LayoutDistortionRecord("EUV", {}, (TrackDistortion("BL", None, 0, 1, 0, 1),))
        assert record.track_for("BL").net == "BL"
        with pytest.raises(KeyError):
            record.track_for("VDD")

    def test_worst_case_td_row_lookup(self):
        row = sample_figure4()[0]
        assert row.tdp_percent("SADP") == pytest.approx(3.6)
        with pytest.raises(KeyError):
            row.tdp_percent("SAQP")

    def test_mc_record_label_and_sigma(self):
        record = sample_mc_record()
        assert record.label == "LELELE 8nm OL"
        assert record.sigma_percent == record.summary.std
