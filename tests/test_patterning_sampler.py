"""Tests of Monte-Carlo parameter sampling and corner enumeration."""

import numpy as np
import pytest

from repro.patterning import euv, le3, sadp
from repro.patterning.base import PatterningError
from repro.patterning.sampler import ParameterSampler, enumerate_worst_case_corners


class TestParameterSampler:
    def test_parameter_names_match_option(self, node):
        sampler = ParameterSampler(le3(), node.variations, seed=1)
        assert sampler.parameter_names == ["cd:A", "cd:B", "cd:C", "ol:B", "ol:C"]

    def test_seeded_draws_are_reproducible(self, node):
        first = ParameterSampler(le3(), node.variations, seed=42).draw_many(10)
        second = ParameterSampler(le3(), node.variations, seed=42).draw_many(10)
        for a, b in zip(first, second):
            assert a.values == b.values

    def test_different_seeds_differ(self, node):
        a = ParameterSampler(le3(), node.variations, seed=1).draw(0)
        b = ParameterSampler(le3(), node.variations, seed=2).draw(0)
        assert a.values != b.values

    def test_sample_statistics_match_budgets(self, node):
        sampler = ParameterSampler(le3(), node.variations, seed=7)
        matrix = sampler.draw_matrix(4000)
        names = sampler.parameter_names
        overlay_column = matrix[:, names.index("ol:B")]
        cd_column = matrix[:, names.index("cd:A")]
        assert np.std(overlay_column) == pytest.approx(8.0 / 3.0, rel=0.1)
        assert np.std(cd_column) == pytest.approx(1.0, rel=0.1)
        assert abs(np.mean(overlay_column)) < 0.2

    def test_truncation_limits_samples(self, node):
        sampler = ParameterSampler(
            le3(), node.variations, seed=3, truncate_at_three_sigma=True
        )
        matrix = sampler.draw_matrix(2000)
        names = sampler.parameter_names
        overlay = matrix[:, names.index("ol:C")]
        assert np.max(np.abs(overlay)) <= 8.0 + 1e-12

    def test_sadp_and_euv_samplers(self, node):
        assert ParameterSampler(sadp(), node.variations, seed=1).parameter_names == [
            "cd:core",
            "spacer",
        ]
        assert ParameterSampler(euv(), node.variations, seed=1).parameter_names == ["cd:euv"]

    def test_draw_many_rejects_nonpositive_count(self, node):
        with pytest.raises(PatterningError):
            ParameterSampler(le3(), node.variations, seed=1).draw_many(0)

    def test_iterator_protocol(self, node):
        sampler = ParameterSampler(euv(), node.variations, seed=5)
        iterator = iter(sampler)
        first = next(iterator)
        second = next(iterator)
        assert first.index == 0 and second.index == 1


class TestWorstCaseCorners:
    def test_le3_has_32_corners(self, node):
        corners = enumerate_worst_case_corners(le3(), node.variations)
        assert len(corners) == 2**5

    def test_sadp_has_4_corners(self, node):
        assert len(enumerate_worst_case_corners(sadp(), node.variations)) == 4

    def test_euv_has_2_corners(self, node):
        assert len(enumerate_worst_case_corners(euv(), node.variations)) == 2

    def test_corner_values_match_budgets(self, node):
        corners = enumerate_worst_case_corners(euv(), node.variations)
        values = sorted(corner.as_dict()["cd:euv"] for corner in corners)
        assert values == [-3.0, 3.0]

    def test_include_nominal_adds_centre_point(self, node):
        corners = enumerate_worst_case_corners(euv(), node.variations, include_nominal=True)
        assert len(corners) == 3
        assert any(corner.as_dict()["cd:euv"] == 0.0 for corner in corners)

    def test_paper_worst_corner_is_among_le3_corners(self, node):
        corners = enumerate_worst_case_corners(le3(), node.variations)
        target = {"cd:A": 3.0, "cd:B": 3.0, "cd:C": 3.0, "ol:B": -8.0, "ol:C": 8.0}
        assert any(corner.as_dict() == target for corner in corners)
