"""Tests of distributions, statistics, the Monte-Carlo engine and the DOE."""

import numpy as np
import pytest

from repro.variability.distributions import (
    CornerDistribution,
    DistributionError,
    NormalDistribution,
    TruncatedNormalDistribution,
)
from repro.variability.doe import DOEError, DOEPoint, StudyDOE, paper_doe, reduced_doe
from repro.variability.montecarlo import MonteCarloEngine, MonteCarloError
from repro.variability.statistics import (
    Histogram,
    StatisticsError,
    SummaryStatistics,
    correlation,
    standard_deviation,
)


class TestDistributions:
    def test_normal_from_three_sigma(self):
        dist = NormalDistribution.from_three_sigma(3.0)
        assert dist.sigma == pytest.approx(1.0)
        assert dist.std() == pytest.approx(1.0)

    def test_normal_sampling_statistics(self):
        rng = np.random.default_rng(0)
        samples = NormalDistribution(mu=2.0, sigma=0.5).sample(rng, size=5000)
        assert np.mean(samples) == pytest.approx(2.0, abs=0.05)
        assert np.std(samples) == pytest.approx(0.5, rel=0.1)

    def test_zero_sigma_normal_is_deterministic(self):
        rng = np.random.default_rng(0)
        assert NormalDistribution(mu=1.0, sigma=0.0).sample(rng) == 1.0

    def test_truncated_normal_respects_bounds(self):
        rng = np.random.default_rng(1)
        dist = TruncatedNormalDistribution(mu=0.0, sigma=1.0, n_sigma=2.0)
        samples = dist.sample(rng, size=3000)
        assert np.max(np.abs(samples)) <= 2.0 + 1e-12

    def test_truncated_normal_std_below_untruncated(self):
        assert TruncatedNormalDistribution(sigma=1.0, n_sigma=3.0).std() < 1.0

    def test_corner_distribution_two_points(self):
        rng = np.random.default_rng(2)
        samples = CornerDistribution(excursion=3.0).sample(rng, size=100)
        assert set(np.unique(samples)) <= {-3.0, 3.0}
        assert CornerDistribution(excursion=3.0).std() == 3.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DistributionError):
            NormalDistribution(sigma=-1.0)
        with pytest.raises(DistributionError):
            NormalDistribution.from_three_sigma(-3.0)
        with pytest.raises(DistributionError):
            TruncatedNormalDistribution(n_sigma=0.0)
        with pytest.raises(DistributionError):
            CornerDistribution(excursion=-1.0)


class TestLogPdf:
    def test_normal_closed_form(self):
        dist = NormalDistribution(mu=2.0, sigma=0.5)
        x = 2.7
        z = (x - 2.0) / 0.5
        expected = -0.5 * z * z - np.log(0.5) - 0.5 * np.log(2.0 * np.pi)
        assert dist.logpdf(x) == pytest.approx(expected, rel=1e-12)

    def test_normal_standard_at_origin(self):
        # The standard normal's density peak: 1/sqrt(2*pi).
        assert NormalDistribution().logpdf(0.0) == pytest.approx(
            -0.5 * np.log(2.0 * np.pi), rel=1e-12
        )

    def test_scalar_in_scalar_out_array_in_array_out(self):
        dist = NormalDistribution(sigma=1.0)
        assert isinstance(dist.logpdf(0.5), float)
        out = dist.logpdf(np.array([0.0, 1.0, 2.0]))
        assert isinstance(out, np.ndarray) and out.shape == (3,)

    def test_degenerate_normal_has_no_density(self):
        with pytest.raises(DistributionError):
            NormalDistribution(sigma=0.0).logpdf(0.0)

    def test_truncated_renormalisation(self):
        # Inside the support the truncated density is the parent normal's
        # divided by the kept mass erf(a/sqrt(2)).
        import math

        dist = TruncatedNormalDistribution(mu=1.0, sigma=2.0, n_sigma=3.0)
        parent = NormalDistribution(mu=1.0, sigma=2.0)
        log_mass = math.log(math.erf(3.0 / math.sqrt(2.0)))
        for x in (1.0, -3.0, 6.9):
            assert dist.logpdf(x) == pytest.approx(
                parent.logpdf(x) - log_mass, rel=1e-12
            )

    def test_truncated_zero_outside_support(self):
        dist = TruncatedNormalDistribution(mu=0.0, sigma=1.0, n_sigma=2.0)
        assert dist.logpdf(2.5) == -np.inf
        assert dist.logpdf(-2.5) == -np.inf
        assert np.isfinite(dist.logpdf(1.999))

    def test_truncated_density_integrates_to_one(self):
        dist = TruncatedNormalDistribution(mu=0.0, sigma=1.0, n_sigma=3.0)
        grid = np.linspace(-3.0, 3.0, 20001)
        total = np.trapezoid(np.exp(dist.logpdf(grid)), grid)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_corner_log_mass(self):
        dist = CornerDistribution(excursion=3.0, mu=1.0)
        assert dist.logpdf(4.0) == pytest.approx(np.log(0.5))
        assert dist.logpdf(-2.0) == pytest.approx(np.log(0.5))
        assert dist.logpdf(0.0) == -np.inf

    def test_corner_tolerates_round_off(self):
        dist = CornerDistribution(excursion=3.0)
        assert np.isfinite(dist.logpdf(3.0 * (1.0 + 1e-12)))


class TestShifted:
    def test_normal_shift_keeps_spread(self):
        dist = NormalDistribution(mu=2.0, sigma=0.5).shifted(7.0)
        assert dist.mean() == 7.0
        assert dist.std() == 0.5

    def test_truncated_shift_moves_support(self):
        rng = np.random.default_rng(7)
        dist = TruncatedNormalDistribution(mu=0.0, sigma=1.0, n_sigma=2.0).shifted(10.0)
        samples = dist.sample(rng, size=2000)
        assert np.max(np.abs(samples - 10.0)) <= 2.0 + 1e-12
        assert dist.n_sigma == 2.0

    def test_corner_shift_moves_both_points(self):
        rng = np.random.default_rng(8)
        dist = CornerDistribution(excursion=3.0).shifted(5.0)
        samples = dist.sample(rng, size=100)
        assert set(np.unique(samples)) <= {2.0, 8.0}

    def test_shift_preserves_density_shape(self):
        # logpdf at mu + delta is invariant under the shift.
        base = NormalDistribution(mu=0.0, sigma=1.3)
        moved = base.shifted(4.0)
        assert moved.logpdf(4.0 + 0.7) == pytest.approx(base.logpdf(0.7), rel=1e-12)


class TestStatistics:
    def test_summary_statistics(self):
        summary = SummaryStatistics.from_samples([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.mean == pytest.approx(3.0)
        assert summary.median == pytest.approx(3.0)
        assert summary.count == 5
        assert summary.minimum == 1.0 and summary.maximum == 5.0
        assert summary.spread == 4.0

    def test_std_is_sample_std(self):
        assert standard_deviation([1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_three_sigma_interval(self):
        summary = SummaryStatistics.from_samples([0.0, 1.0, 2.0])
        low, high = summary.three_sigma_interval()
        assert low < summary.mean < high

    def test_empty_samples_rejected(self):
        with pytest.raises(StatisticsError):
            SummaryStatistics.from_samples([])

    def test_tail_percentiles_on_small_samples(self):
        # With fewer than 100 samples the 1st/99th percentiles interpolate
        # between order statistics and stay inside the sampled range.
        summary = SummaryStatistics.from_samples([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.minimum <= summary.percentile_1 <= summary.percentile_99 <= summary.maximum
        assert summary.percentile_1 == pytest.approx(np.percentile([1, 2, 3, 4, 5], 1.0))
        assert summary.percentile_99 == pytest.approx(np.percentile([1, 2, 3, 4, 5], 99.0))

    def test_tail_percentiles_single_sample(self):
        summary = SummaryStatistics.from_samples([7.0])
        assert summary.percentile_1 == 7.0
        assert summary.percentile_99 == 7.0
        assert summary.std == 0.0

    def test_tail_percentiles_bracket_bulk(self):
        rng = np.random.default_rng(13)
        samples = rng.normal(0.0, 1.0, size=41).tolist()
        summary = SummaryStatistics.from_samples(samples)
        assert summary.percentile_1 < summary.median < summary.percentile_99

    def test_non_finite_samples_rejected(self):
        with pytest.raises(StatisticsError):
            SummaryStatistics.from_samples([1.0, float("nan")])

    def test_histogram_totals(self):
        histogram = Histogram.from_samples([1.0, 1.1, 2.0, 3.0], bins=4)
        assert sum(histogram.counts) == 4
        assert histogram.total == 4
        assert len(histogram.bin_centers) == 4
        assert sum(histogram.densities) == pytest.approx(1.0)

    def test_histogram_mode(self):
        samples = [0.0] * 10 + [5.0]
        histogram = Histogram.from_samples(samples, bins=5)
        assert histogram.mode_bin_center() < 2.0

    def test_histogram_ascii_rows(self):
        rows = Histogram.from_samples([1.0, 2.0, 3.0], bins=3).ascii_rows(width=10)
        assert len(rows) == 3
        assert all("|" in row for row in rows)

    def test_correlation_perfectly_linear(self):
        assert correlation([1.0, 2.0, 3.0], [2.0, 4.0, 6.0]) == pytest.approx(1.0)
        assert correlation([1.0, 2.0, 3.0], [-1.0, -2.0, -3.0]) == pytest.approx(-1.0)

    def test_correlation_validation(self):
        with pytest.raises(StatisticsError):
            correlation([1.0], [1.0])
        with pytest.raises(StatisticsError):
            correlation([1.0, 2.0], [1.0, 2.0, 3.0])
        with pytest.raises(StatisticsError):
            correlation([1.0, 1.0], [1.0, 2.0])


class TestMonteCarloEngine:
    def make_engine(self, seed=3):
        return MonteCarloEngine(
            parameter_distributions={
                "x": NormalDistribution(sigma=1.0),
                "y": NormalDistribution(sigma=2.0),
            },
            model=lambda p: p["x"] + p["y"],
            seed=seed,
        )

    def test_run_produces_requested_samples(self):
        run = self.make_engine().run(100)
        assert len(run) == 100
        assert len(run.results()) == 100

    def test_seeded_runs_reproducible(self):
        first = self.make_engine(seed=5).run(50).values(lambda r: r)
        second = self.make_engine(seed=5).run(50).values(lambda r: r)
        assert first == second

    def test_summary_std_matches_theory(self):
        run = self.make_engine().run(4000)
        summary = run.summary(lambda r: r)
        assert summary.std == pytest.approx(np.sqrt(5.0), rel=0.1)

    def test_parameter_values_recorded(self):
        run = self.make_engine().run(10)
        assert len(run.parameter_values("x")) == 10

    def test_histogram_from_run(self):
        histogram = self.make_engine().run(200).histogram(lambda r: r, bins=10)
        assert sum(histogram.counts) == 200

    def test_run_until_stops_between_bounds(self):
        run = self.make_engine().run_until(lambda r: r, relative_std_error=0.05, min_samples=50, max_samples=2000)
        assert 50 <= len(run) <= 2000

    def test_run_until_stops_at_max_samples_exactly(self):
        # An unreachable precision target must stop at max_samples on the
        # nose, even when max_samples is not a multiple of the batch size.
        run = self.make_engine().run_until(
            lambda r: r,
            relative_std_error=0.001,
            min_samples=10,
            max_samples=157,
            batch=100,
        )
        assert len(run) == 157

    def test_run_until_estimator_independent_of_batch_size(self):
        # Batch size controls only how often convergence is checked; with a
        # fixed seed the same samples are drawn in the same order, so
        # stopping at the cap yields identical runs for any batch.
        runs = [
            self.make_engine(seed=9).run_until(
                lambda r: r,
                relative_std_error=0.0001,
                min_samples=10,
                max_samples=300,
                batch=batch,
            )
            for batch in (1, 7, 100, 300)
        ]
        reference = runs[0].values(lambda r: r)
        for run in runs[1:]:
            assert len(run) == 300
            assert run.values(lambda r: r) == reference

    def test_run_until_can_stop_mid_batch_budget(self):
        # min_samples below batch still honours the convergence check at
        # the first batch boundary, never overshooting max_samples.
        run = self.make_engine().run_until(
            lambda r: r,
            relative_std_error=0.5,
            min_samples=2,
            max_samples=50,
            batch=100,
        )
        assert len(run) <= 50

    def test_invalid_configuration_rejected(self):
        with pytest.raises(MonteCarloError):
            MonteCarloEngine({}, lambda p: 0.0)
        with pytest.raises(MonteCarloError):
            self.make_engine().run(0)
        with pytest.raises(MonteCarloError):
            self.make_engine().run_until(lambda r: r, relative_std_error=2.0)


class TestDOE:
    def test_paper_doe_grid(self):
        doe = paper_doe()
        assert doe.array_sizes == (16, 64, 256, 1024)
        assert doe.option_names == ("LELELE", "SADP", "EUV")
        assert doe.n_bitline_pairs == 10
        assert len(doe.worst_case_points()) == 12

    def test_monte_carlo_points_sweep_overlay_for_le3_only(self):
        points = paper_doe().monte_carlo_points()
        le3_points = [p for p in points if p.option_name == "LELELE"]
        sadp_points = [p for p in points if p.option_name == "SADP"]
        assert len(le3_points) == 4
        assert len(sadp_points) == 1
        assert {p.overlay_three_sigma_nm for p in le3_points} == {3.0, 5.0, 7.0, 8.0}
        assert sadp_points[0].overlay_three_sigma_nm is None

    def test_point_labels(self):
        point = DOEPoint(n_wordlines=64, option_name="LELELE", overlay_three_sigma_nm=8.0)
        assert point.array_label == "10x64"
        assert "OL8nm" in point.label

    def test_reduced_doe_caps_sizes(self):
        assert reduced_doe(max_wordlines=64).array_sizes == (16, 64)

    def test_iteration_yields_worst_case_points(self):
        assert len(list(paper_doe())) == 12

    def test_validation(self):
        with pytest.raises(DOEError):
            StudyDOE(array_sizes=())
        with pytest.raises(DOEError):
            StudyDOE(array_sizes=(0,))
        with pytest.raises(DOEError):
            StudyDOE(overlay_budgets_nm=(0.0,))
        with pytest.raises(DOEError):
            paper_doe().monte_carlo_points(n_wordlines=0)
