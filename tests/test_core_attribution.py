"""Tests of the variance-attribution extension."""

import pytest

from repro.core.attribution import (
    AttributionError,
    VarianceAttribution,
    attribute_from_variations,
)
from repro.core.montecarlo import MonteCarloTdpStudy
from repro.extraction.lpe import RCVariation
from repro.variability.doe import DOEPoint, StudyDOE


def synthetic_variations(count=200, c_slope=0.02, r_slope=0.0, seed=5):
    """Variations whose Cvar depends only on parameter 'x' (linear)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    variations = []
    for _ in range(count):
        x = float(rng.normal(0.0, 1.0))
        y = float(rng.normal(0.0, 1.0))
        variations.append(
            RCVariation(
                net="BL",
                option_name="TEST",
                rvar=1.0 + r_slope * y,
                cvar=1.0 + c_slope * x,
                parameters={"x": x, "y": y},
            )
        )
    return variations


@pytest.fixture(scope="module")
def attribution(node, analytical_model):
    study = MonteCarloTdpStudy(
        node,
        doe=StudyDOE(array_sizes=(64,), overlay_budgets_nm=(3.0, 8.0)),
        model=analytical_model,
        n_samples=250,
        seed=17,
    )
    return VarianceAttribution(study)


class TestAttributeFromVariations:
    def test_single_driver_takes_all_variance(self, analytical_model):
        result = attribute_from_variations(
            synthetic_variations(), analytical_model, n_wordlines=64, option_name="TEST"
        )
        assert result.dominant_parameter() == "x"
        assert result.share_of("x") > 0.95
        assert result.share_of("y") < 0.05

    def test_explained_fraction_close_to_one_for_additive_response(self, analytical_model):
        result = attribute_from_variations(
            synthetic_variations(), analytical_model, n_wordlines=64, option_name="TEST"
        )
        assert result.explained_fraction == pytest.approx(1.0, abs=0.1)

    def test_contributions_sorted_descending(self, analytical_model):
        result = attribute_from_variations(
            synthetic_variations(), analytical_model, n_wordlines=64, option_name="TEST"
        )
        shares = [contribution.variance_share for contribution in result.contributions]
        assert shares == sorted(shares, reverse=True)

    def test_unknown_parameter_lookup_raises(self, analytical_model):
        result = attribute_from_variations(
            synthetic_variations(), analytical_model, n_wordlines=64, option_name="TEST"
        )
        with pytest.raises(AttributionError):
            result.share_of("nonexistent")

    def test_too_few_samples_rejected(self, analytical_model):
        with pytest.raises(AttributionError):
            attribute_from_variations(
                synthetic_variations(count=5), analytical_model, n_wordlines=64, option_name="TEST"
            )


class TestVarianceAttributionOnStudy:
    def test_le3_overlay_dominates_at_loose_budget(self, attribution):
        result = attribution.attribute(
            DOEPoint(n_wordlines=64, option_name="LELELE", overlay_three_sigma_nm=8.0)
        )
        overlay_share = result.grouped_share("ol:")
        cd_share = result.grouped_share("cd:")
        assert overlay_share > cd_share
        assert result.dominant_parameter().startswith("ol:")
        assert result.total_sigma_percent > 0.0

    def test_overlay_share_shrinks_with_tighter_budget(self, attribution):
        split = attribution.overlay_versus_cd(n_wordlines=64)
        overlay_loose, _cd_loose = split[8.0]
        overlay_tight, _cd_tight = split[3.0]
        assert overlay_tight < overlay_loose

    def test_sadp_attribution_covers_core_and_spacer(self, attribution):
        result = attribution.attribute(DOEPoint(n_wordlines=64, option_name="SADP"))
        parameters = {contribution.parameter for contribution in result.contributions}
        assert parameters == {"cd:core", "spacer"}
        assert 0.0 <= result.explained_fraction <= 1.5

    def test_euv_single_parameter_explains_everything(self, attribution):
        result = attribution.attribute(DOEPoint(n_wordlines=64, option_name="EUV"))
        assert result.dominant_parameter() == "cd:euv"
        assert result.share_of("cd:euv") > 0.9
