"""Tests of the SRAM cell and array layout generators and the layer map."""

import pytest

from repro.layout.array import (
    PAPER_ARRAY_SIZES,
    PAPER_BITLINE_PAIRS,
    ArrayDimensions,
    ArrayLayoutError,
    generate_array_layout,
    paper_doe_layouts,
)
from repro.layout.layers import Layer, LayerError, LayerMap, LayerPurpose, default_layer_map
from repro.layout.sram_cell import (
    CellLayoutError,
    SRAMCellTemplate,
    TrackSpec,
    default_cell_template,
    generate_cell_layout,
)
from repro.layout.wire import NetRole


class TestLayerMap:
    def test_default_map_has_routing_layers(self):
        layer_map = default_layer_map()
        assert "metal1" in layer_map
        assert "metal2" in layer_map
        assert "via1" in layer_map

    def test_lookup_by_gds_pair(self):
        layer_map = default_layer_map()
        metal1 = layer_map.by_name("metal1")
        assert layer_map.by_gds(metal1.gds_layer, metal1.gds_datatype).name == "metal1"

    def test_unknown_layer_raises(self):
        with pytest.raises(LayerError):
            default_layer_map().by_name("metal42")
        with pytest.raises(LayerError):
            default_layer_map().by_gds(999)

    def test_duplicate_names_rejected(self):
        layer_map = LayerMap([Layer("m1", gds_layer=1)])
        with pytest.raises(LayerError):
            layer_map.add(Layer("m1", gds_layer=2))

    def test_metals_filter(self):
        metal_names = {layer.name for layer in default_layer_map().metals()}
        assert {"metal1", "metal2", "metal3"} <= metal_names

    def test_rejects_empty_name_and_negative_numbers(self):
        with pytest.raises(LayerError):
            Layer("", gds_layer=1)
        with pytest.raises(LayerError):
            Layer("x", gds_layer=-1)


class TestCellTemplate:
    def test_default_track_order_is_vss_bl_vdd_blb(self):
        template = default_cell_template()
        assert [spec.net for spec in template.track_specs] == ["VSS", "BL", "VDD", "BLB"]

    def test_bitline_drawn_above_minimum_width(self):
        template = default_cell_template()
        widths = {spec.net: spec.width_nm for spec in template.track_specs}
        assert widths["BL"] > widths["VSS"]
        assert widths["BLB"] == widths["BL"]

    def test_cell_height_is_sum_of_widths_and_spaces(self):
        template = default_cell_template()
        expected = sum(spec.width_nm for spec in template.track_specs) + (
            template.track_space_nm * len(template.track_specs)
        )
        assert template.cell_height_nm == pytest.approx(expected)

    def test_track_centers_are_increasing(self):
        centers = default_cell_template().track_centers_nm()
        assert all(later > earlier for earlier, later in zip(centers, centers[1:]))

    def test_node_derived_template_respects_min_space(self, node):
        template = default_cell_template(node)
        assert template.track_space_nm == pytest.approx(node.bitline_metal.min_space_nm)

    def test_template_requires_bitline_pair(self):
        with pytest.raises(CellLayoutError):
            SRAMCellTemplate(track_specs=(TrackSpec("VSS", NetRole.VSS, 24.0),))

    def test_template_rejects_nonpositive_dimensions(self):
        with pytest.raises(CellLayoutError):
            default_cell_template().__class__(
                track_specs=default_cell_template().track_specs, track_space_nm=0.0
            )


class TestCellLayout:
    def test_pattern_has_four_tracks(self, cell_layout):
        assert len(cell_layout.metal1_pattern) == 4

    def test_bitline_tracks_resolvable(self, cell_layout):
        assert cell_layout.bitline_track.net == "BL"
        assert cell_layout.bitline_bar_track.net == "BLB"

    def test_minimum_spacing_between_tracks(self, cell_layout, node):
        assert min(cell_layout.metal1_pattern.spaces()) == pytest.approx(
            node.bitline_metal.min_space_nm
        )

    def test_wires_include_wordline(self, cell_layout):
        roles = {wire.role for wire in cell_layout.wires}
        assert NetRole.WORDLINE in roles

    def test_boundary_covers_cell(self, cell_layout):
        boundary = cell_layout.boundary()
        assert boundary.width == pytest.approx(cell_layout.cell_length_nm)
        assert boundary.height == pytest.approx(cell_layout.cell_height_nm)

    def test_generation_without_node_uses_defaults(self):
        layout = generate_cell_layout()
        assert len(layout.metal1_pattern) == 4
        assert layout.cell_length_nm == pytest.approx(240.0)


class TestArrayDimensions:
    def test_paper_label_format(self):
        assert ArrayDimensions(n_wordlines=64).label == "10x64"

    def test_cell_count(self):
        assert ArrayDimensions(n_wordlines=16, n_bitline_pairs=10).n_cells == 160

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ArrayLayoutError):
            ArrayDimensions(n_wordlines=0)
        with pytest.raises(ArrayLayoutError):
            ArrayDimensions(n_wordlines=16, n_bitline_pairs=0)


class TestArrayLayout:
    def test_bitline_length_scales_with_wordlines(self, array16, array64):
        assert array64.bitline_length_nm == pytest.approx(4.0 * array16.bitline_length_nm)

    def test_track_count_is_four_per_pair(self, array64):
        assert len(array64.metal1_pattern) == 4 * PAPER_BITLINE_PAIRS

    def test_central_pair_nets_exist_in_pattern(self, array64):
        bl, blb = array64.central_pair_nets()
        assert bl in array64.metal1_pattern.nets
        assert blb in array64.metal1_pattern.nets

    def test_central_pair_is_away_from_edges(self, array64):
        bl, _ = array64.central_pair_nets()
        index = array64.metal1_pattern.index_of(bl)
        assert 4 <= index <= len(array64.metal1_pattern) - 5

    def test_wires_contain_one_wordline_per_row(self, array16):
        wordlines = [wire for wire in array16.wires() if wire.role is NetRole.WORDLINE]
        assert len(wordlines) == 16

    def test_summary(self, array64):
        summary = array64.summary()
        assert summary["label"] == "10x64"
        assert summary["n_wordlines"] == 64

    def test_paper_doe_layouts_cover_all_sizes(self, node):
        layouts = paper_doe_layouts(node=node, sizes=(16, 64))
        assert set(layouts) == {"10x16", "10x64"}

    def test_paper_constants(self):
        assert PAPER_ARRAY_SIZES == (16, 64, 256, 1024)
        assert PAPER_BITLINE_PAIRS == 10

    def test_boundary_is_positive(self, array16):
        boundary = array16.boundary()
        assert boundary.area > 0.0
