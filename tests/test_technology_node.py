"""Tests of the top-level technology-node description."""

import pytest

from repro.technology.node import NodeError, OperatingConditions, TechnologyNode, n10


class TestOperatingConditions:
    def test_paper_defaults(self):
        conditions = OperatingConditions()
        assert conditions.vdd_v == pytest.approx(0.7)
        assert conditions.sense_amp_sensitivity_v == pytest.approx(0.07)

    def test_wordline_and_precharge_default_to_vdd(self):
        conditions = OperatingConditions()
        assert conditions.effective_wordline_voltage_v == pytest.approx(0.7)
        assert conditions.effective_precharge_voltage_v == pytest.approx(0.7)

    def test_discharge_fraction_is_ten_percent(self):
        assert OperatingConditions().discharge_fraction == pytest.approx(0.1)

    def test_explicit_wordline_voltage_wins(self):
        conditions = OperatingConditions(wordline_voltage_v=0.8)
        assert conditions.effective_wordline_voltage_v == pytest.approx(0.8)

    def test_sensitivity_must_be_below_vdd(self):
        with pytest.raises(NodeError):
            OperatingConditions(vdd_v=0.7, sense_amp_sensitivity_v=0.8)

    def test_rejects_nonpositive_vdd(self):
        with pytest.raises(NodeError):
            OperatingConditions(vdd_v=0.0)


class TestTechnologyNode:
    def test_n10_defaults(self):
        node = n10()
        assert node.name == "imec-N10"
        assert node.bitline_layer == "metal1"
        assert node.wordline_layer == "metal2"

    def test_n10_overlay_override(self):
        node = n10(overlay_three_sigma_nm=3.0)
        assert node.variations.litho_etch.overlay.three_sigma_nm == pytest.approx(3.0)

    def test_bitline_metal_accessor(self):
        node = n10()
        assert node.bitline_metal.name == "metal1"
        assert node.wordline_metal.name == "metal2"

    def test_with_variations_returns_copy(self):
        node = n10()
        modified = node.with_variations(node.variations.for_overlay(5.0))
        assert modified.variations.litho_etch.overlay.three_sigma_nm == 5.0
        assert node.variations.litho_etch.overlay.three_sigma_nm == 8.0

    def test_with_operating_conditions_returns_copy(self):
        node = n10()
        modified = node.with_operating_conditions(OperatingConditions(vdd_v=0.8, sense_amp_sensitivity_v=0.07))
        assert modified.operating_conditions.vdd_v == pytest.approx(0.8)
        assert node.operating_conditions.vdd_v == pytest.approx(0.7)

    def test_unknown_bitline_layer_rejected(self):
        node = n10()
        with pytest.raises(NodeError):
            TechnologyNode(
                name="bad",
                metal_stack=node.metal_stack,
                sram_devices=node.sram_devices,
                bitline_layer="metal9",
            )

    def test_unknown_wordline_layer_rejected(self):
        node = n10()
        with pytest.raises(NodeError):
            TechnologyNode(
                name="bad",
                metal_stack=node.metal_stack,
                sram_devices=node.sram_devices,
                wordline_layer="metal9",
            )

    def test_nonpositive_cell_dimensions_rejected(self):
        node = n10()
        with pytest.raises(NodeError):
            TechnologyNode(
                name="bad",
                metal_stack=node.metal_stack,
                sram_devices=node.sram_devices,
                sram_cell_width_nm=0.0,
            )
