"""Robustness and failure-injection tests.

The studies run thousands of automatically generated corners and samples,
so the library must fail *loudly and informatively* when a corner produces
impossible geometry or a simulation cannot complete — silent garbage would
poison a whole Monte-Carlo run.  These tests inject such failures on
purpose and check the reported errors.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit.dc import ConvergenceError
from repro.circuit.elements import Capacitor, Resistor, VoltageSource
from repro.circuit.netlist import Circuit
from repro.circuit.transient import TransientOptions, TransientSolver
from repro.extraction.field import CrossSectionExtractor, ExtractionError
from repro.layout.gds import dumps_gdt, library_from_wires, loads_gdt
from repro.layout.geometry import Rect
from repro.layout.wire import NetRole, Wire, WireError
from repro.patterning import le3, sadp
from repro.patterning.base import PatterningError
from repro.sram.read_path import ReadPathSimulator, ReadSimulationError


class TestPatterningFailureModes:
    def test_huge_overlay_creates_overlapping_tracks(self, array64):
        """A 30 nm overlay (≫ pitch/2) must be rejected, not silently extracted."""
        printed = None
        with pytest.raises((WireError, PatterningError)):
            printed = le3().apply(array64.metal1_pattern, {"ol:B": -30.0})
            # If printing itself survived, the overlap must be caught here.
            raise WireError(str(printed.printed.spaces()))

    def test_negative_cd_larger_than_width_rejected(self, array64):
        with pytest.raises(WireError):
            le3().apply(array64.metal1_pattern, {"cd:A": -60.0})

    def test_sadp_pinch_off_message_names_the_track(self, array64):
        with pytest.raises(PatterningError) as excinfo:
            sadp().apply(array64.metal1_pattern, {"cd:core": 45.0, "spacer": 3.0})
        assert "pinches off" in str(excinfo.value)

    def test_extractor_reports_touching_tracks(self, node, array64):
        """If a printed pattern squeezes a gap to zero the extractor refuses."""
        pattern = array64.metal1_pattern
        # Manually construct a pattern where two tracks touch.
        squeezed = pattern.replace_track(
            1, pattern[1].shifted(-(pattern.spaces()[0]))
        )
        extractor = CrossSectionExtractor(node.bitline_metal)
        with pytest.raises((ExtractionError, WireError)):
            extractor.extract(squeezed)


class TestSimulationFailureModes:
    def test_transient_step_limit_raises(self, node):
        """An absurdly small step budget must fail with a clear error."""
        simulator = ReadPathSimulator(
            node,
            transient_options=TransientOptions(max_steps=5, dt_max_s=1e-15, dt_initial_s=1e-15),
        )
        with pytest.raises(ConvergenceError):
            simulator.measure_nominal(16)

    def test_transient_min_step_failure_raises(self):
        """A circuit that can never converge reports the failing time point."""
        circuit = Circuit("inconsistent")
        # Two ideal voltage sources fighting across a tiny resistor converge,
        # so instead force failure via an impossible step-size window.
        circuit.add(VoltageSource.dc("v1", "a", "0", 1.0))
        circuit.add(Resistor("r1", "a", "b", 1.0))
        circuit.add(Capacitor("c1", "b", "0", 1e-15))
        options = TransientOptions(
            t_stop_s=1e-9, dt_initial_s=1e-13, dt_max_s=1e-12, max_steps=3
        )
        with pytest.raises(ConvergenceError):
            TransientSolver(circuit, options=options).run()

    def test_read_simulation_error_is_informative(self, node):
        """When the sense threshold can never be reached the harness says so."""
        conditions = node.operating_conditions
        # A word line driven far below the pass-gate threshold never opens
        # the cell, so the bit line cannot discharge and the sense threshold
        # is never reached within the simulation window.
        from repro.technology.node import OperatingConditions

        impossible = node.with_operating_conditions(
            OperatingConditions(vdd_v=0.7, sense_amp_sensitivity_v=0.07, wordline_voltage_v=0.05)
        )
        simulator = ReadPathSimulator(impossible)
        with pytest.raises(ReadSimulationError) as excinfo:
            simulator.measure_nominal(16)
        assert "sense threshold" in str(excinfo.value)
        # The original node is untouched by the experiment.
        assert conditions.sense_amp_sensitivity_v == pytest.approx(0.07)

    def test_invalid_strap_interval_rejected(self, node):
        with pytest.raises(ReadSimulationError):
            ReadPathSimulator(node, vss_strap_interval_cells=0)


class TestSerializationRoundTripProperties:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-1e5, max_value=1e5),
                st.floats(min_value=-1e5, max_value=1e5),
                st.floats(min_value=0.5, max_value=5e3),
                st.floats(min_value=0.5, max_value=5e3),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_gdt_round_trip_preserves_every_rectangle(self, rect_specs):
        wires = [
            Wire(
                net=f"N{i}",
                layer="metal1",
                rect=Rect(x, y, x + w, y + h),
                role=NetRole.OTHER,
            )
            for i, (x, y, w, h) in enumerate(rect_specs)
        ]
        library = library_from_wires("prop_cell", wires)
        recovered = loads_gdt(dumps_gdt(library))
        recovered_wires = {wire.net: wire for wire in recovered.cell("prop_cell").wires}
        assert len(recovered_wires) == len(wires)
        for wire in wires:
            match = recovered_wires[wire.net]
            assert match.rect.x_min == pytest.approx(wire.rect.x_min, abs=2e-3)
            assert match.rect.y_max == pytest.approx(wire.rect.y_max, abs=2e-3)
            assert match.layer == wire.layer
