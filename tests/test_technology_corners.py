"""Tests of the variation-assumption containers and corner enumeration."""

import pytest

from repro.technology.corners import (
    CornerError,
    GaussianSpec,
    LithoEtchAssumptions,
    SADPAssumptions,
    VariationAssumptions,
    enumerate_corner_points,
    paper_assumptions,
)


class TestGaussianSpec:
    def test_sigma_is_one_third_of_budget(self):
        assert GaussianSpec(3.0).sigma_nm == pytest.approx(1.0)

    def test_corner_values(self):
        assert GaussianSpec(3.0).corner_values() == (-3.0, 0.0, 3.0)

    def test_zero_budget_is_allowed(self):
        assert GaussianSpec(0.0).sigma_nm == 0.0

    def test_negative_budget_rejected(self):
        with pytest.raises(CornerError):
            GaussianSpec(-1.0)


class TestPaperAssumptions:
    def test_cd_budgets_are_three_nm(self):
        assumptions = paper_assumptions()
        assert assumptions.litho_etch.cd.three_sigma_nm == 3.0
        assert assumptions.sadp.core_cd.three_sigma_nm == 3.0
        assert assumptions.euv.cd.three_sigma_nm == 3.0

    def test_spacer_budget_is_one_and_a_half_nm(self):
        assert paper_assumptions().sadp.spacer.three_sigma_nm == 1.5

    def test_default_overlay_is_eight_nm(self):
        assert paper_assumptions().litho_etch.overlay.three_sigma_nm == 8.0

    def test_overlay_sweep_is_three_to_eight(self):
        assert paper_assumptions().le3_overlay_sweep_nm == (3.0, 5.0, 7.0, 8.0)

    def test_masks_aligned_to_first(self):
        assert paper_assumptions().litho_etch.masks_aligned_to_first

    def test_bitlines_are_spacer_defined(self):
        assert paper_assumptions().sadp.spacer_defined_lines

    def test_for_overlay_returns_modified_copy(self):
        assumptions = paper_assumptions()
        tightened = assumptions.for_overlay(3.0)
        assert tightened.litho_etch.overlay.three_sigma_nm == 3.0
        assert assumptions.litho_etch.overlay.three_sigma_nm == 8.0
        # Non-overlay fields unchanged.
        assert tightened.sadp == assumptions.sadp

    def test_empty_overlay_sweep_rejected(self):
        with pytest.raises(CornerError):
            VariationAssumptions(le3_overlay_sweep_nm=())

    def test_negative_overlay_sweep_rejected(self):
        with pytest.raises(CornerError):
            VariationAssumptions(le3_overlay_sweep_nm=(3.0, -1.0))


class TestCornerEnumeration:
    def test_two_parameters_give_four_corners(self):
        specs = {"a": GaussianSpec(1.0), "b": GaussianSpec(2.0)}
        corners = enumerate_corner_points(specs)
        assert len(corners) == 4
        values = {tuple(sorted(corner.as_dict().items())) for corner in corners}
        assert (("a", 1.0), ("b", 2.0)) in values
        assert (("a", -1.0), ("b", -2.0)) in values

    def test_include_nominal_gives_three_to_the_n(self):
        specs = {"a": GaussianSpec(1.0), "b": GaussianSpec(2.0)}
        corners = enumerate_corner_points(specs, include_nominal=True)
        assert len(corners) == 9

    def test_labels_encode_signs(self):
        corners = enumerate_corner_points({"cd:A": GaussianSpec(3.0)})
        labels = sorted(corner.label for corner in corners)
        assert labels == ["cd:A=+3s", "cd:A=-3s"]

    def test_corner_point_length(self):
        corners = enumerate_corner_points({"a": GaussianSpec(1.0), "b": GaussianSpec(1.0)})
        assert all(len(corner) == 2 for corner in corners)

    def test_empty_specs_rejected(self):
        with pytest.raises(CornerError):
            enumerate_corner_points({})

    def test_enumeration_is_deterministic(self):
        specs = {"b": GaussianSpec(1.0), "a": GaussianSpec(2.0)}
        first = [corner.label for corner in enumerate_corner_points(specs)]
        second = [corner.label for corner in enumerate_corner_points(specs)]
        assert first == second
