"""Tests of the read-time yield / spec-compliance analysis."""

import pytest

from repro.core.montecarlo import MonteCarloTdpStudy
from repro.core.results import MonteCarloTdpRecord
from repro.core.yield_analysis import (
    ReadTimeYieldAnalysis,
    YieldAnalysisError,
    array_yield_from_column_probability,
    violation_probability,
)
from repro.variability.doe import StudyDOE
from repro.variability.statistics import Histogram, SummaryStatistics


def record_from_samples(samples, label="LELELE", overlay=8.0):
    return MonteCarloTdpRecord(
        option_name=label,
        overlay_three_sigma_nm=overlay,
        n_wordlines=64,
        n_samples=len(samples),
        tdp_percent_samples=tuple(samples),
        summary=SummaryStatistics.from_samples(samples),
        histogram=Histogram.from_samples(samples, bins=10),
    )


@pytest.fixture(scope="module")
def yield_analysis(node, analytical_model):
    study = MonteCarloTdpStudy(
        node,
        doe=StudyDOE(array_sizes=(64,), overlay_budgets_nm=(3.0, 8.0)),
        model=analytical_model,
        n_samples=200,
        seed=11,
    )
    return ReadTimeYieldAnalysis(study)


class TestViolationProbability:
    def test_empirical_fraction(self):
        record = record_from_samples([float(x) for x in range(-10, 10)])  # -10..9
        estimate = violation_probability(record, budget_percent=4.5)
        assert estimate.empirical_probability == pytest.approx(5 / 20)

    def test_gaussian_tail_used_below_resolution(self):
        # All samples well below the budget: empirical is 0, Gaussian gives a
        # tiny but nonzero tail that becomes the working estimate.
        record = record_from_samples([0.0, 0.5, -0.5, 0.2, -0.2] * 10)
        estimate = violation_probability(record, budget_percent=10.0)
        assert estimate.empirical_probability == 0.0
        assert 0.0 < estimate.gaussian_probability < 1e-3
        assert estimate.probability == estimate.gaussian_probability

    def test_empirical_preferred_when_resolvable(self):
        record = record_from_samples([0.0] * 50 + [20.0] * 50)
        estimate = violation_probability(record, budget_percent=10.0)
        assert estimate.probability == pytest.approx(0.5)

    def test_ppm_conversion(self):
        record = record_from_samples([0.0] * 95 + [20.0] * 5)
        estimate = violation_probability(record, budget_percent=10.0)
        assert estimate.probability == pytest.approx(0.05)
        assert estimate.parts_per_million == pytest.approx(50_000.0)

    def test_budget_must_be_positive(self):
        record = record_from_samples([0.0, 1.0, 2.0])
        with pytest.raises(YieldAnalysisError):
            violation_probability(record, budget_percent=0.0)

    def test_method_labels_the_working_estimate(self):
        resolvable = violation_probability(
            record_from_samples([0.0] * 50 + [20.0] * 50), budget_percent=10.0
        )
        assert resolvable.method == "empirical"
        tail = violation_probability(
            record_from_samples([0.0, 0.5, -0.5, 0.2, -0.2] * 10), budget_percent=10.0
        )
        assert tail.method == "gaussian_tail"

    def test_beyond_sampled_range_flag(self):
        samples = [0.0, 0.5, -0.5, 0.2, -0.2] * 10
        beyond = violation_probability(record_from_samples(samples), budget_percent=10.0)
        assert beyond.method == "gaussian_tail"
        assert beyond.sample_max == pytest.approx(0.5)
        assert beyond.beyond_sampled_range

        # A budget inside the sampled range that the empirical fraction still
        # cannot resolve (only one sample above it) is interpolation, not
        # extrapolation.
        inside = violation_probability(
            record_from_samples([0.0] * 99 + [5.0]), budget_percent=4.0
        )
        assert inside.method == "gaussian_tail"
        assert not inside.beyond_sampled_range

        # The empirical estimate is never flagged.
        empirical = violation_probability(
            record_from_samples([0.0] * 50 + [20.0] * 50), budget_percent=10.0
        )
        assert not empirical.beyond_sampled_range

    def test_flag_reaches_record_and_text_table(self):
        from repro.core.yield_analysis import ComplianceRow
        from repro.reporting.tables import format_compliance

        estimate = violation_probability(
            record_from_samples([0.0, 0.5, -0.5, 0.2, -0.2] * 10), budget_percent=10.0
        )
        row = ComplianceRow(
            option_name="LELELE",
            overlay_three_sigma_nm=8.0,
            budget_percent=10.0,
            violation=estimate,
            column_yield=1.0 - estimate.probability,
            array_yield=1.0 - estimate.probability,
        )
        record = row.to_record()
        assert record["method"] == "gaussian_tail"
        assert record["beyond_sampled_range"] is True

        class _Requirement:
            achievable = False
            option_name = "LELELE"
            target_ppm = 100.0

        text = format_compliance([row], _Requirement())
        assert "gaussian_tail [extrapolated]" in text
        assert "beyond the largest" in text


class TestArrayYield:
    def test_perfect_columns_give_unit_yield(self):
        assert array_yield_from_column_probability(0.0, 128) == 1.0

    def test_independent_columns_multiply(self):
        assert array_yield_from_column_probability(0.01, 2) == pytest.approx(0.99**2)

    def test_words_multiply_exposure(self):
        assert array_yield_from_column_probability(0.01, 10, n_words=10) == pytest.approx(0.99**100)

    def test_validation(self):
        with pytest.raises(YieldAnalysisError):
            array_yield_from_column_probability(1.5, 10)
        with pytest.raises(YieldAnalysisError):
            array_yield_from_column_probability(0.1, 0)


class TestReadTimeYieldAnalysis:
    def test_compliance_table_covers_all_points(self, yield_analysis):
        rows = yield_analysis.compliance_table(budget_percent=10.0)
        labels = {row.label for row in rows}
        assert "SADP" in labels and "EUV" in labels
        assert any(label.startswith("LELELE") for label in labels)
        for row in rows:
            assert 0.0 <= row.violation.probability <= 1.0
            assert 0.0 <= row.array_yield <= row.column_yield <= 1.0

    def test_looser_budget_never_hurts_yield(self, yield_analysis):
        tight = {row.label: row.array_yield for row in yield_analysis.compliance_table(5.0)}
        loose = {row.label: row.array_yield for row in yield_analysis.compliance_table(15.0)}
        for label, tight_yield in tight.items():
            assert loose[label] >= tight_yield - 1e-12

    def test_le3_worse_than_sadp_at_same_budget(self, yield_analysis):
        rows = {row.label: row for row in yield_analysis.compliance_table(6.0)}
        assert rows["LELELE 8nm OL"].violation.probability >= rows["SADP"].violation.probability

    def test_overlay_requirement_monotone_in_target(self, yield_analysis):
        strict = yield_analysis.required_overlay_for_target(budget_percent=6.0, target_ppm=1.0)
        relaxed = yield_analysis.required_overlay_for_target(budget_percent=6.0, target_ppm=1e5)
        if strict.achievable and relaxed.achievable:
            assert relaxed.required_overlay_nm >= strict.required_overlay_nm
        assert set(strict.achieved_ppm_by_overlay) == {3.0, 8.0}

    def test_overlay_requirement_unachievable_for_impossible_target(self, yield_analysis):
        requirement = yield_analysis.required_overlay_for_target(
            budget_percent=0.001, target_ppm=1e-6
        )
        assert not requirement.achievable

    def test_budget_sweep_monotone(self, yield_analysis):
        pairs = yield_analysis.budget_sweep(
            budgets_percent=(2.0, 5.0, 10.0), option_name="SADP"
        )
        probabilities = [probability for _budget, probability in pairs]
        assert all(later <= earlier for earlier, later in zip(probabilities, probabilities[1:]))

    def test_budget_sweep_requires_budgets(self, yield_analysis):
        with pytest.raises(YieldAnalysisError):
            yield_analysis.budget_sweep(budgets_percent=(), option_name="SADP")

    def test_ppm_target_validation(self, yield_analysis):
        with pytest.raises(YieldAnalysisError):
            yield_analysis.required_overlay_for_target(budget_percent=10.0, target_ppm=0.0)

    def test_record_caching(self, yield_analysis):
        yield_analysis.compliance_table(budget_percent=10.0)
        first = dict(yield_analysis._record_cache)
        yield_analysis.compliance_table(budget_percent=12.0)
        for label, record in first.items():
            assert yield_analysis._record_cache[label] is record
