"""Tests of circuit elements, waveforms and the netlist container."""

import pytest

from repro.circuit.elements import (
    DC,
    Capacitor,
    CurrentSource,
    ElementError,
    PiecewiseLinear,
    Pulse,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit, NetlistError, is_ground


class TestWaveforms:
    def test_dc_is_constant(self):
        assert DC(0.7).value_at(0.0) == 0.7
        assert DC(0.7).value_at(1e-9) == 0.7

    def test_pwl_interpolates(self):
        wave = PiecewiseLinear(points=((0.0, 0.0), (1e-9, 1.0)))
        assert wave.value_at(-1e-9) == 0.0
        assert wave.value_at(0.5e-9) == pytest.approx(0.5)
        assert wave.value_at(2e-9) == 1.0

    def test_pwl_holds_last_value(self):
        wave = PiecewiseLinear(points=((0.0, 0.0), (1e-9, 0.7), (2e-9, 0.7)))
        assert wave.value_at(5e-9) == pytest.approx(0.7)

    def test_pwl_rejects_unordered_times(self):
        with pytest.raises(ElementError):
            PiecewiseLinear(points=((1e-9, 0.0), (0.0, 1.0)))

    def test_pulse_shape(self):
        pulse = Pulse(initial=0.0, pulsed=1.0, delay_s=1e-9, rise_s=1e-10, fall_s=1e-10, width_s=1e-9)
        assert pulse.value_at(0.0) == 0.0
        assert pulse.value_at(1.05e-9) == pytest.approx(0.5)
        assert pulse.value_at(1.5e-9) == 1.0
        assert pulse.value_at(2.15e-9) == pytest.approx(0.5)
        assert pulse.value_at(3e-9) == 0.0

    def test_pulse_repeats_with_period(self):
        pulse = Pulse(initial=0.0, pulsed=1.0, rise_s=1e-12, fall_s=1e-12, width_s=1e-9, period_s=4e-9)
        assert pulse.value_at(0.5e-9) == 1.0
        assert pulse.value_at(4.5e-9) == 1.0
        assert pulse.value_at(2.5e-9) == 0.0

    def test_pulse_rejects_negative_times(self):
        with pytest.raises(ElementError):
            Pulse(initial=0.0, pulsed=1.0, rise_s=-1.0)


class TestElements:
    def test_resistor_conductance(self):
        assert Resistor("r1", "a", "b", 1000.0).conductance_s == pytest.approx(1e-3)

    def test_resistor_rejects_nonpositive_value(self):
        with pytest.raises(ElementError):
            Resistor("r1", "a", "b", 0.0)

    def test_capacitor_rejects_negative_value(self):
        with pytest.raises(ElementError):
            Capacitor("c1", "a", "b", -1e-15)

    def test_two_terminal_rejects_identical_nodes(self):
        with pytest.raises(ElementError):
            Resistor("r1", "a", "a", 100.0)

    def test_voltage_source_dc_factory(self):
        source = VoltageSource.dc("vdd", "vdd", "0", 0.7)
        assert source.value_at(0.0) == 0.7

    def test_current_source_dc_factory(self):
        source = CurrentSource.dc("i1", "a", "0", 1e-6)
        assert source.value_at(1.0) == 1e-6

    def test_element_name_required(self):
        with pytest.raises(ElementError):
            Resistor("", "a", "b", 100.0)


class TestCircuit:
    def build(self):
        circuit = Circuit("divider")
        circuit.add(VoltageSource.dc("vin", "in", "0", 1.0))
        circuit.add(Resistor("r1", "in", "mid", 1000.0))
        circuit.add(Resistor("r2", "mid", "0", 1000.0))
        return circuit

    def test_ground_aliases(self):
        assert is_ground("0")
        assert is_ground("gnd")
        assert not is_ground("vss_cell")

    def test_nodes_exclude_ground(self):
        assert set(self.build().nodes()) == {"in", "mid"}

    def test_duplicate_element_names_rejected(self):
        circuit = self.build()
        with pytest.raises(NetlistError):
            circuit.add(Resistor("r1", "a", "b", 10.0))

    def test_element_lookup(self):
        circuit = self.build()
        assert circuit.element("r1").resistance_ohm == 1000.0
        with pytest.raises(NetlistError):
            circuit.element("rX")
        assert "r2" in circuit
        assert len(circuit) == 3

    def test_elements_of_type(self):
        circuit = self.build()
        assert len(circuit.elements_of_type(Resistor)) == 2
        assert len(circuit.elements_of_type(VoltageSource)) == 1

    def test_connected_elements(self):
        circuit = self.build()
        names = {element.name for element in circuit.connected_elements("mid")}
        assert names == {"r1", "r2"}

    def test_validate_passes_for_wellformed_circuit(self):
        self.build().validate()

    def test_validate_rejects_empty_circuit(self):
        with pytest.raises(NetlistError):
            Circuit("empty").validate()

    def test_validate_rejects_floating_node(self):
        circuit = Circuit("floating")
        circuit.add(VoltageSource.dc("vin", "in", "0", 1.0))
        circuit.add(Resistor("r1", "in", "dangling", 100.0))
        with pytest.raises(NetlistError):
            circuit.validate()

    def test_validate_rejects_circuit_without_ground(self):
        circuit = Circuit("no-ground")
        circuit.add(Resistor("r1", "a", "b", 100.0))
        circuit.add(Resistor("r2", "b", "a", 100.0))
        with pytest.raises(NetlistError):
            circuit.validate()

    def test_summary_counts(self):
        summary = self.build().summary()
        assert summary["Resistor"] == 2
        assert summary["VoltageSource"] == 1
        assert summary["nodes"] == 2

    def test_total_capacitance_on_node(self):
        circuit = self.build()
        circuit.add(Capacitor("c1", "mid", "0", 2e-15))
        circuit.add(Capacitor("c2", "mid", "in", 3e-15))
        assert circuit.total_capacitance_on("mid") == pytest.approx(5e-15)
