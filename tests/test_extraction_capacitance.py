"""Tests of the capacitance models."""

import pytest

from repro.extraction.capacitance import (
    CapacitanceComponents,
    CapacitanceError,
    NeighborGeometry,
    fringe_shielding_factor,
    isolated_wire_capacitance_per_nm,
    parallel_plate_capacitance_f,
    sakurai_tamaru_coupling,
    sakurai_tamaru_ground,
    wire_capacitance_per_nm,
)
from repro.extraction.profiles import profile_for_layer
from repro.technology.materials import EPSILON_0_F_PER_NM, LOW_K
from repro.technology.metal_stack import default_n10_metal_stack

EPS = LOW_K.permittivity_f_per_nm


@pytest.fixture(scope="module")
def metal1():
    return default_n10_metal_stack().layer("metal1")


class TestClosedForms:
    def test_ground_capacitance_exceeds_plate_only(self):
        total = sakurai_tamaru_ground(30.0, 42.0, 40.0, EPS)
        plate = EPS * 1.15 * 30.0 / 40.0
        assert total > plate

    def test_ground_capacitance_increases_with_width(self):
        narrow = sakurai_tamaru_ground(24.0, 42.0, 40.0, EPS)
        wide = sakurai_tamaru_ground(30.0, 42.0, 40.0, EPS)
        assert wide > narrow

    def test_ground_capacitance_decreases_with_height(self):
        close = sakurai_tamaru_ground(30.0, 42.0, 30.0, EPS)
        far = sakurai_tamaru_ground(30.0, 42.0, 60.0, EPS)
        assert close > far

    def test_coupling_grows_superlinearly_as_space_shrinks(self):
        """The (s/h)^-1.34 law: halving the space more than doubles the coupling."""
        at_24 = sakurai_tamaru_coupling(30.0, 42.0, 40.0, 24.0, EPS)
        at_12 = sakurai_tamaru_coupling(30.0, 42.0, 40.0, 12.0, EPS)
        assert at_12 > 2.0 * at_24

    def test_coupling_increases_with_thickness(self):
        thin = sakurai_tamaru_coupling(30.0, 30.0, 40.0, 24.0, EPS)
        thick = sakurai_tamaru_coupling(30.0, 50.0, 40.0, 24.0, EPS)
        assert thick > thin

    def test_coupling_rejects_nonpositive_space(self):
        with pytest.raises(CapacitanceError):
            sakurai_tamaru_coupling(30.0, 42.0, 40.0, 0.0, EPS)

    def test_ground_rejects_nonpositive_dimensions(self):
        with pytest.raises(CapacitanceError):
            sakurai_tamaru_ground(0.0, 42.0, 40.0, EPS)

    def test_shielding_factor_bounds(self):
        tight = fringe_shielding_factor(5.0, 40.0)
        loose = fringe_shielding_factor(400.0, 40.0)
        assert 0.0 < tight < loose <= 1.0

    def test_parallel_plate(self):
        cap = parallel_plate_capacitance_f(100.0, 10.0, EPSILON_0_F_PER_NM)
        assert cap == pytest.approx(EPSILON_0_F_PER_NM * 10.0)

    def test_parallel_plate_rejects_bad_distance(self):
        with pytest.raises(CapacitanceError):
            parallel_plate_capacitance_f(100.0, 0.0, EPSILON_0_F_PER_NM)


class TestCapacitanceComponents:
    def make(self):
        return CapacitanceComponents(
            ground_below=2.0e-19, ground_above=1.5e-19, coupling_left=1.0e-19, coupling_right=1.2e-19
        )

    def test_totals(self):
        components = self.make()
        assert components.ground_total == pytest.approx(3.5e-19)
        assert components.coupling_total == pytest.approx(2.2e-19)
        assert components.total == pytest.approx(5.7e-19)

    def test_coupling_fraction(self):
        assert self.make().coupling_fraction() == pytest.approx(2.2 / 5.7, rel=1e-6)

    def test_scaled(self):
        doubled = self.make().scaled(2.0)
        assert doubled.total == pytest.approx(2.0 * self.make().total)

    def test_as_dict_keys(self):
        assert set(self.make().as_dict()) == {
            "ground_below", "ground_above", "coupling_left", "coupling_right", "total",
        }


class TestWireCapacitance:
    def test_isolated_wire_has_no_coupling(self, metal1):
        components = isolated_wire_capacitance_per_nm(metal1, 30.0)
        assert components.coupling_total == 0.0
        assert components.ground_total > 0.0

    def test_neighbours_add_coupling_and_shield_fringe(self, metal1):
        profile = profile_for_layer(metal1, 30.0)
        neighbor = NeighborGeometry(space_nm=24.0, thickness_nm=profile.thickness_nm)
        dense = wire_capacitance_per_nm(profile, metal1, neighbor, neighbor)
        isolated = wire_capacitance_per_nm(profile, metal1, None, None)
        assert dense.coupling_total > 0.0
        assert dense.ground_total < isolated.ground_total

    def test_dense_pattern_coupling_fraction_is_substantial(self, metal1):
        profile = profile_for_layer(metal1, 30.0)
        neighbor = NeighborGeometry(space_nm=24.0, thickness_nm=profile.thickness_nm)
        dense = wire_capacitance_per_nm(profile, metal1, neighbor, neighbor)
        assert 0.3 < dense.coupling_fraction() < 0.8

    def test_asymmetric_neighbours(self, metal1):
        profile = profile_for_layer(metal1, 30.0)
        close = NeighborGeometry(space_nm=13.0, thickness_nm=profile.thickness_nm)
        far = NeighborGeometry(space_nm=35.0, thickness_nm=profile.thickness_nm)
        components = wire_capacitance_per_nm(profile, metal1, close, far)
        assert components.coupling_left > components.coupling_right

    def test_per_cell_bitline_capacitance_in_expected_range(self, metal1):
        """A 240 nm bit-line segment at 48 nm pitch carries a few tens of aF."""
        profile = profile_for_layer(metal1, 30.0)
        neighbor = NeighborGeometry(space_nm=24.0, thickness_nm=profile.thickness_nm)
        per_nm = wire_capacitance_per_nm(profile, metal1, neighbor, neighbor)
        per_cell_af = per_nm.total * 240.0 * 1e18
        assert 15.0 < per_cell_af < 90.0

    def test_neighbor_geometry_validation(self):
        with pytest.raises(CapacitanceError):
            NeighborGeometry(space_nm=0.0, thickness_nm=42.0)
        with pytest.raises(CapacitanceError):
            NeighborGeometry(space_nm=24.0, thickness_nm=0.0)
