"""Tests of solver-error classification and the typed ItemFailure record.

The acceptance bar: the real solver failure modes — transient step-budget
exhaustion, step-size underflow, DC non-convergence — classify into the
stable category strings that drive retry decisions and partial-result
reporting, and the ItemFailure record round-trips losslessly through its
dict/record forms.
"""

from __future__ import annotations

import time

import pytest

from repro.circuit.dc import (
    ConvergenceError,
    NewtonOptions,
    dc_operating_point,
    rescue_level,
    solver_rescue,
)
from repro.circuit.elements import Capacitor, CurrentSource, Resistor, VoltageSource
from repro.circuit.mna import MNAError
from repro.circuit.mosfet import MOSFET
from repro.circuit.netlist import Circuit
from repro.circuit.transient import TransientOptions, run_transient
from repro.core.failures import (
    FAILURE_POLICIES,
    ItemFailure,
    ItemTimeoutError,
    classify_error,
    item_deadline,
)
from repro.testing import InjectedSolverFault
from repro.technology.transistors import default_n10_nmos


def rc_circuit(resistance=1000.0, capacitance=1e-12, v0=1.0):
    circuit = Circuit("rc-decay")
    circuit.add(Resistor("r", "node", "0", resistance))
    circuit.add(Capacitor("c", "node", "0", capacitance, initial_voltage_v=v0))
    circuit.add(CurrentSource.dc("ibias", "node", "0", 0.0))
    return circuit


def nmos_circuit(vdd=0.7):
    """A nonlinear circuit: resistor-loaded NMOS, needs Newton to solve."""
    circuit = Circuit("nmos-load")
    circuit.add(VoltageSource.dc("vdd", "vdd", "0", vdd))
    circuit.add(Resistor("rload", "vdd", "drain", 10e3))
    circuit.add(VoltageSource.dc("vg", "gate", "0", vdd))
    circuit.add(MOSFET("m1", "drain", "gate", "0", default_n10_nmos()))
    return circuit


class TestClassifyRealSolverErrors:
    def test_step_budget_exhaustion_classifies(self):
        tau = 1e-9
        options = TransientOptions(
            t_stop_s=10 * tau,
            dt_initial_s=tau / 1000,
            dt_max_s=tau / 1000,
            max_steps=5,
        )
        with pytest.raises(ConvergenceError) as excinfo:
            run_transient(rc_circuit(), options=options)
        assert classify_error(excinfo.value) == "step_budget"

    def test_dc_rescue_ladder_exhaustion_classifies(self):
        # One Newton iteration per ladder stage cannot solve a nonlinear
        # circuit; the final error is the DC fold's exhaustion message.
        with pytest.raises(ConvergenceError) as excinfo:
            dc_operating_point(
                nmos_circuit(), options=NewtonOptions(max_iterations=1)
            )
        assert "DC operating point" in str(excinfo.value)
        assert classify_error(excinfo.value) == "dc_convergence"

    def test_singular_messages_and_mna_errors_classify(self):
        singular = ConvergenceError(
            "DC operating point did not converge after a singular Jacobian "
            "was encountered (last max residual 1.0e-03 A)"
        )
        assert classify_error(singular) == "singular_jacobian"
        assert classify_error(MNAError("unknown node 'x'")) == "singular_jacobian"

    def test_step_underflow_and_generic_convergence(self):
        underflow = ConvergenceError(
            "transient step size fell below the minimum step size 1e-18 s"
        )
        assert classify_error(underflow) == "step_underflow"
        assert classify_error(ConvergenceError("Newton stalled")) == "convergence"

    def test_timeout_injected_and_unexpected(self):
        assert classify_error(ItemTimeoutError("deadline")) == "timeout"
        assert classify_error(InjectedSolverFault("synthetic")) == "injected"
        assert classify_error(ZeroDivisionError("x/0")) == "unexpected"


class TestItemDeadline:
    def test_deadline_interrupts_overrun(self):
        with pytest.raises(ItemTimeoutError):
            with item_deadline(0.05):
                time.sleep(2.0)

    def test_no_timeout_is_a_noop(self):
        with item_deadline(None):
            pass
        with item_deadline(0.0):
            pass

    def test_fast_body_passes_and_alarm_is_cleared(self):
        with item_deadline(5.0):
            pass
        time.sleep(0.01)  # a leaked alarm would fire here


class TestSolverRescue:
    def test_rescue_level_defaults_to_zero_and_nests(self):
        assert rescue_level() == 0
        with solver_rescue(2, seed=7):
            assert rescue_level() == 2
            with solver_rescue(3, seed=7):
                assert rescue_level() == 3
            assert rescue_level() == 2
        assert rescue_level() == 0

    def test_rescue_level_zero_is_bit_identical(self):
        result = dc_operating_point(nmos_circuit())
        with solver_rescue(0, seed=123):
            rescued = dc_operating_point(nmos_circuit())
        assert rescued.voltages == result.voltages


class TestItemFailure:
    def test_round_trip(self):
        failure = ItemFailure(
            key="n16-nominal-read",
            classification="step_budget",
            error_type="ConvergenceError",
            message="transient exceeded 5 accepted steps",
            attempts=3,
            stage="solver",
        )
        assert ItemFailure.from_dict(failure.to_dict()) == failure
        record = failure.to_record()
        assert record["record"] == "failure"
        assert record["key"] == failure.key
        assert record["classification"] == "step_budget"

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            ItemFailure.from_dict({"key": "k", "bogus": 1})

    def test_from_exception_classifies_and_truncates(self):
        error = ConvergenceError("x" * 2000 + " accepted steps")
        failure = ItemFailure.from_exception("item", error, attempts=2)
        assert failure.error_type == "ConvergenceError"
        assert failure.attempts == 2
        assert len(failure.message) == 500

    def test_policy_vocabulary_is_stable(self):
        assert FAILURE_POLICIES == ("fail_fast", "skip", "retry")
