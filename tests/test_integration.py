"""End-to-end integration tests.

These walk the complete pipeline the way a user of the library would —
layout → patterning → extraction → circuit → td → study → report — and
check the cross-module contracts plus the paper's headline qualitative
results on a reduced grid.
"""

import pytest

from repro import MultiPatterningSRAMStudy, n10
from repro.circuit.spice_io import write_spice
from repro.core import OptionComparison, model_from_technology
from repro.core.worst_case import WorstCaseStudy
from repro.extraction import ParameterizedLPE
from repro.layout import generate_array_layout, library_from_wires, loads_gdt, dumps_gdt
from repro.patterning import le3, paper_options
from repro.reporting import (
    figure4_csv,
    figure5_csv,
    format_figure4,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
)
from repro.sram import ReadPathSimulator
from repro.variability.doe import StudyDOE


@pytest.fixture(scope="module")
def small_study(node):
    return MultiPatterningSRAMStudy(
        node,
        doe=StudyDOE(array_sizes=(16, 64), overlay_budgets_nm=(3.0, 8.0)),
        monte_carlo_samples=100,
        seed=99,
    )


@pytest.fixture(scope="module")
def report(small_study):
    return small_study.run()


class TestFullPipeline:
    def test_layout_to_td_pipeline_by_hand(self, node):
        """Drive every stage manually, the way the examples do."""
        layout = generate_array_layout(16, node=node)
        option = le3()
        printed = option.apply(layout.metal1_pattern, {"cd:A": 3.0, "ol:B": -8.0})
        lpe = ParameterizedLPE(node)
        nominal = lpe.extract_pattern(layout.metal1_pattern)
        distorted = lpe.extract_pattern(printed.printed)
        bl_net, _ = layout.central_pair_nets()
        assert distorted[bl_net].capacitance_total_f != nominal[bl_net].capacitance_total_f

        simulator = ReadPathSimulator(node)
        nominal_td = simulator.measure_nominal(16)
        varied_td = simulator.measure_with_patterning(16, option, {"cd:A": 3.0, "ol:B": -8.0})
        assert varied_td.td_s != nominal_td.td_s

    def test_report_is_complete(self, report):
        assert report.is_complete()

    def test_headline_result_le3_worst_case_penalty(self, report):
        """Paper abstract: LE3 worst-case read-time penalty ~20%, others <3%."""
        for row in report.figure4:
            assert 10.0 < row.tdp_percent("LELELE") < 40.0
            assert abs(row.tdp_percent("SADP")) < 10.0
            assert abs(row.tdp_percent("EUV")) < 10.0

    def test_headline_result_sigma_ratio(self, report):
        """Paper abstract: LE3 tdp sigma up to ~2x the other options."""
        by_label = {row.label: row.sigma_percent for row in report.table4}
        assert by_label["LELELE 8nm OL"] > 1.5 * by_label["SADP"]
        assert by_label["LELELE 3nm OL"] < by_label["LELELE 8nm OL"]

    def test_verdict_matches_paper_conclusion(self, small_study, report):
        verdict = small_study.verdict(report)
        assert verdict.recommended_option == "SADP"
        assert verdict.overlay_requirement is not None

    def test_formula_validation_rows_cover_grid(self, report):
        assert {row.array_label for row in report.table2} == {"10x16", "10x64"}
        assert {row.method for row in report.table3} == {"simulation", "formula"}

    def test_every_report_section_formats(self, report):
        assert "Table I" in format_table1(report.table1)
        assert "Fig. 4" in format_figure4(report.figure4)
        assert "Table II" in format_table2(report.table2)
        assert "Table III" in format_table3(report.table3)
        assert "Table IV" in format_table4(report.table4)
        assert figure4_csv(report.figure4).count("\n") == len(report.figure4)
        assert figure5_csv(report.figure5)

    def test_layouts_round_trip_through_gdt(self, node):
        layout = generate_array_layout(16, node=node)
        library = library_from_wires("array16", layout.wires(), layer_map=layout.layer_map)
        recovered = loads_gdt(dumps_gdt(library), layer_map=layout.layer_map)
        assert len(recovered.cell("array16").wires) == len(layout.wires())

    def test_read_circuit_exports_to_spice(self, node):
        simulator = ReadPathSimulator(node)
        column = simulator.column_parasitics(16)
        read_circuit = simulator.build_circuit(16, column)
        deck = write_spice(read_circuit.circuit)
        assert deck.count("\nR") >= 16          # ladder resistors
        assert deck.count("\nM") == 9           # 6 cell + 3 precharge devices
        assert ".end" in deck

    def test_all_paper_options_share_the_interface(self, node, array64):
        lpe = ParameterizedLPE(node)
        bl_net, _ = array64.central_pair_nets()
        for option in paper_options():
            specs = option.parameter_specs(node.variations)
            assert specs
            nominal = option.nominal_result(array64.metal1_pattern)
            assert len(nominal.printed) == len(array64.metal1_pattern)
            variation = lpe.rc_variation(array64.metal1_pattern, option, {}, bl_net)
            assert variation.cvar == pytest.approx(1.0, abs=1e-9)


class TestOverlayBudgetScenario:
    def test_tight_overlay_node_reduces_le3_worst_case(self, node):
        """Re-running the worst-case study at a 3 nm OL budget shrinks the LE3 impact."""
        loose_study = WorstCaseStudy(node, doe=StudyDOE(array_sizes=(16,)))
        tight_node = n10(overlay_three_sigma_nm=3.0)
        tight_study = WorstCaseStudy(tight_node, doe=StudyDOE(array_sizes=(16,)))
        loose = loose_study.find_worst_corner("LELELE").delta_cbl_percent
        tight = tight_study.find_worst_corner("LELELE").delta_cbl_percent
        assert tight < loose
        assert tight < 0.6 * loose

    def test_model_consistency_between_studies(self, node):
        """The analytical model built standalone matches the study's own."""
        study = MultiPatterningSRAMStudy(node, doe=StudyDOE(array_sizes=(16,)), monte_carlo_samples=10)
        standalone = model_from_technology(node)
        assert study.analytical_model.rbl_per_cell_ohm == pytest.approx(standalone.rbl_per_cell_ohm)
        assert study.analytical_model.td_nominal_s(64) == pytest.approx(standalone.td_nominal_s(64))
