"""Tests of the simulation campaign engine.

The heart of the suite is the parity pin: the campaign-produced Fig. 4 /
Table II / Table III rows must match the sequential
``WorstCaseStudy.figure4`` / ``FormulaValidation.table2/table3`` numbers
at ``rtol <= 1e-12``, with one worker and with two — everything downstream
of the corner search is a deterministic function of the work item, so the
engine may cache and parallelise freely but never drift.
"""

import json

import pytest

from repro.core.analytical import model_from_technology
from repro.core.campaign import (
    CampaignError,
    CampaignScenario,
    CampaignStore,
    CampaignWorkerState,
    SimulationCampaign,
    scenario_grid,
)
from repro.core.validation import FormulaValidation
from repro.core.worst_case import WorstCaseStudy
from repro.sram.read_path import ReadPathSimulator
from repro.variability.doe import StudyDOE

RTOL = 1e-12
SIZES = (16, 64)


@pytest.fixture(scope="module")
def doe():
    return StudyDOE(array_sizes=SIZES)


@pytest.fixture(scope="module")
def sequential_rows(node, doe, analytical_model):
    """The sequential oracle: Fig. 4 / Table II / Table III rows."""
    worst_case = WorstCaseStudy(node, doe=doe)
    simulator = ReadPathSimulator(node)
    validation = FormulaValidation(
        node,
        doe=doe,
        model=analytical_model,
        simulator=simulator,
        worst_case=worst_case,
    )
    return {
        "figure4": worst_case.figure4(simulator=simulator),
        "table2": validation.table2(),
        "table3": validation.table3(),
    }


def assert_rows_match(sequential, campaign):
    assert len(sequential) == len(campaign)
    for expected, actual in zip(sequential, campaign):
        assert expected.array_label == actual.array_label
        if hasattr(expected, "nominal_td_ps"):
            assert actual.nominal_td_ps == pytest.approx(
                expected.nominal_td_ps, rel=RTOL
            )
        if hasattr(expected, "simulation_td_s"):
            assert actual.simulation_td_s == pytest.approx(
                expected.simulation_td_s, rel=RTOL
            )
            assert actual.formula_td_s == pytest.approx(expected.formula_td_s, rel=RTOL)
        if hasattr(expected, "tdp_percent_by_option"):
            if hasattr(expected, "method"):
                assert expected.method == actual.method
            for name, value in expected.tdp_percent_by_option.items():
                assert actual.tdp_percent_by_option[name] == pytest.approx(
                    value, rel=RTOL, abs=1e-12
                )


class TestCampaignParity:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_rows_match_sequential_path(
        self, node, doe, analytical_model, sequential_rows, workers
    ):
        campaign = SimulationCampaign(node, doe=doe)
        # clamp_to_cpus=False: exercise the real process pool even on
        # single-core CI runners.
        results = campaign.run(workers=workers, clamp_to_cpus=False)
        assert_rows_match(sequential_rows["figure4"], campaign.figure4_rows(results))
        assert_rows_match(
            sequential_rows["table2"], campaign.table2_rows(results, analytical_model)
        )
        assert_rows_match(
            sequential_rows["table3"], campaign.table3_rows(results, analytical_model)
        )

    def test_parallel_records_equal_serial_records(self, node, doe):
        serial = SimulationCampaign(node, doe=doe).run()
        parallel = SimulationCampaign(node, doe=doe).run(
            workers=2, clamp_to_cpus=False
        )
        for a, b in zip(serial, parallel):
            assert a.key == b.key
            assert a.td_s == b.td_s                 # bit-identical, not just close
            assert a.seed == b.seed


class TestWorkItems:
    def test_paper_campaign_work_list_shape(self, node, doe):
        campaign = SimulationCampaign(node, doe=doe)
        items = campaign.work_items()
        # One nominal per size plus one corner per (size, option).
        assert len(items) == len(SIZES) * (1 + len(doe.option_names))
        assert len({item.key for item in items}) == len(items)

    def test_nominals_deduplicated_across_overlay_scenarios(self, node):
        scenarios = scenario_grid(overlay_budgets_nm=(3.0, 8.0))
        campaign = SimulationCampaign(
            node, doe=StudyDOE(array_sizes=(16,)), scenarios=scenarios
        )
        items = campaign.work_items()
        nominals = [item for item in items if item.kind == "nominal"]
        # Overlay only moves corners; both scenarios share one nominal.
        assert len(nominals) == 1
        assert len(items) == 1 + 2 * 3

    def test_item_seeds_follow_crc32_scheme(self, node, doe):
        import zlib

        campaign = SimulationCampaign(node, doe=doe, seed=7)
        for item in campaign.work_items():
            expected = zlib.crc32(f"7/{item.key}".encode()) % (2 ** 31)
            assert item.seed == expected

    def test_scenario_validation(self):
        with pytest.raises(CampaignError):
            CampaignScenario(label="bad label")
        with pytest.raises(CampaignError):
            CampaignScenario(stored_value=2)
        with pytest.raises(CampaignError):
            CampaignScenario(method="gear2")
        with pytest.raises(CampaignError):
            CampaignScenario(vss_strap_interval_cells=0)

    def test_duplicate_scenario_labels_rejected(self, node):
        with pytest.raises(CampaignError, match="unique"):
            SimulationCampaign(
                node,
                scenarios=(CampaignScenario(), CampaignScenario(method="trapezoidal")),
            )


class TestScenarioAxes:
    def test_stored_value_changes_the_simulation(self, node):
        doe = StudyDOE(array_sizes=(16,))
        scenarios = scenario_grid(stored_values=(0, 1))
        campaign = SimulationCampaign(node, doe=doe, scenarios=scenarios)
        results = campaign.run()
        sv0 = results.nominal("sv0-strap256-be", 16)
        sv1 = results.nominal("sv1-strap256-be", 16)
        assert sv0.td_s != sv1.td_s
        assert sv0.td_s == pytest.approx(sv1.td_s, rel=0.2)

    def test_trapezoidal_scenario_close_to_backward_euler(self, node):
        doe = StudyDOE(array_sizes=(16,))
        scenarios = scenario_grid(methods=("backward-euler", "trapezoidal"))
        campaign = SimulationCampaign(node, doe=doe, scenarios=scenarios)
        results = campaign.run()
        be = results.nominal("sv0-strap256-be", 16)
        trap = results.nominal("sv0-strap256-trap", 16)
        assert trap.method == "trapezoidal"
        assert trap.td_s == pytest.approx(be.td_s, rel=0.1)

    def test_overlay_sweep_moves_le3_corner_only(self, node):
        doe = StudyDOE(array_sizes=(16,))
        scenarios = scenario_grid(overlay_budgets_nm=(3.0, 8.0))
        campaign = SimulationCampaign(node, doe=doe, scenarios=scenarios)
        results = campaign.run()
        le3_tight = results.corner("ol3nm", "LELELE", 16)
        le3_loose = results.corner("ol8nm", "LELELE", 16)
        assert le3_tight.td_s < le3_loose.td_s
        euv_tight = results.corner("ol3nm", "EUV", 16)
        euv_loose = results.corner("ol8nm", "EUV", 16)
        assert euv_tight.td_s == euv_loose.td_s

    def test_scenario_grid_labels(self):
        labels = [s.label for s in scenario_grid(
            overlay_budgets_nm=(None, 5.0), methods=("backward-euler", "trapezoidal")
        )]
        assert labels == ["paper", "trap", "ol5nm", "ol5nm-trap"]


class TestStoreAndResume:
    def test_store_round_trip_and_resume_skips_work(self, node, tmp_path, monkeypatch):
        doe = StudyDOE(array_sizes=(16,))
        first = SimulationCampaign(node, doe=doe, store_dir=tmp_path / "store")
        results = first.run()
        files = sorted((tmp_path / "store" / "items").glob("*.json"))
        assert len(files) == len(results)

        # A fresh campaign over the same store must not simulate anything.
        def boom(self, item):  # pragma: no cover - failing path
            raise AssertionError("resume re-simulated a completed item")

        monkeypatch.setattr(CampaignWorkerState, "run_item", boom)
        resumed = SimulationCampaign(node, doe=doe, store_dir=tmp_path / "store")
        replay = resumed.run()
        assert [r.td_s for r in replay] == [r.td_s for r in results]
        assert [r.key for r in replay] == [r.key for r in results]

    def test_partial_store_resumes_only_missing_items(self, node, tmp_path):
        doe = StudyDOE(array_sizes=(16,))
        campaign = SimulationCampaign(node, doe=doe, store_dir=tmp_path / "store")
        results = campaign.run()
        # Drop one record from the store and rerun: only that item recomputes.
        victim = (tmp_path / "store" / "items" / f"{results.records[-1].key}.json")
        victim.unlink()
        again = SimulationCampaign(node, doe=doe, store_dir=tmp_path / "store")
        replay = again.run()
        assert [r.td_s for r in replay] == [r.td_s for r in results]
        assert victim.exists()

    def test_legacy_store_without_operation_fields_resumes(self, node, tmp_path, monkeypatch):
        """A store written before the operation axis (no operation/value/
        unit in records, no 'operation' in the scenario signature) must
        resume cleanly as a read campaign."""
        doe = StudyDOE(array_sizes=(16,))
        store_dir = tmp_path / "store"
        results = SimulationCampaign(node, doe=doe, store_dir=store_dir).run()

        # Rewrite the store the way the pre-operation-axis code did.
        meta_path = store_dir / "campaign.json"
        meta = json.loads(meta_path.read_text())
        for scenario in meta["signature"]["scenarios"]:
            del scenario["operation"]
        meta_path.write_text(json.dumps(meta))
        for item in (store_dir / "items").glob("*.json"):
            payload = json.loads(item.read_text())
            for field in ("operation", "value", "unit"):
                del payload[field]
            item.write_text(json.dumps(payload))

        monkeypatch.setattr(
            CampaignWorkerState,
            "run_item",
            lambda self, item: pytest.fail("legacy resume re-simulated an item"),
        )
        resumed = SimulationCampaign(node, doe=doe, store_dir=store_dir)
        replay = resumed.run()
        assert [r.td_s for r in replay] == [r.td_s for r in results]
        for record in replay:
            assert record.operation == "read"
            assert record.value == record.td_s
        corner = next(r for r in replay if r.kind == "corner")
        assert replay.penalty_percent_for(corner) is not None

    def test_signature_mismatch_rejected(self, node, tmp_path):
        doe = StudyDOE(array_sizes=(16,))
        SimulationCampaign(node, doe=doe, store_dir=tmp_path / "store").run()
        other = SimulationCampaign(
            node, doe=StudyDOE(array_sizes=(16, 64)), store_dir=tmp_path / "store"
        )
        with pytest.raises(CampaignError, match="different campaign"):
            other.run()

    def test_store_metadata_is_json(self, node, tmp_path):
        doe = StudyDOE(array_sizes=(16,))
        SimulationCampaign(node, doe=doe, store_dir=tmp_path / "store").run()
        meta = json.loads((tmp_path / "store" / "campaign.json").read_text())
        assert meta["format"] == "repro-campaign-store-v1"
        assert meta["signature"]["array_sizes"] == [16]

    def test_failure_mid_campaign_keeps_finished_chunks(
        self, node, tmp_path, monkeypatch
    ):
        doe = StudyDOE(array_sizes=(16, 64))
        campaign = SimulationCampaign(node, doe=doe, store_dir=tmp_path / "store")
        true_run_item = CampaignWorkerState.run_item
        true_prepare_item = CampaignWorkerState.prepare_item

        # Inject at both tier entry points (the scalar tier runs items,
        # the batched tier prepares them) so the checkpoint contract
        # holds regardless of the campaign's solver.
        def failing_run_item(self, item):
            if item.n_wordlines == 16:               # the second (smaller) chunk
                raise RuntimeError("injected mid-campaign failure")
            return true_run_item(self, item)

        def failing_prepare_item(self, item):
            if item.n_wordlines == 16:
                raise RuntimeError("injected mid-campaign failure")
            return true_prepare_item(self, item)

        monkeypatch.setattr(CampaignWorkerState, "run_item", failing_run_item)
        monkeypatch.setattr(CampaignWorkerState, "prepare_item", failing_prepare_item)
        with pytest.raises(RuntimeError, match="injected"):
            campaign.run()
        # The chunk that finished before the failure is checkpointed...
        saved = {p.stem for p in (tmp_path / "store" / "items").glob("*.json")}
        assert any(key.startswith("n64-") for key in saved)
        assert not any(key.startswith("n16-") for key in saved)
        # ...and a rerun only simulates the unfinished items.
        monkeypatch.setattr(CampaignWorkerState, "run_item", true_run_item)
        monkeypatch.setattr(CampaignWorkerState, "prepare_item", true_prepare_item)
        resumed = SimulationCampaign(node, doe=doe, store_dir=tmp_path / "store")
        assert len(resumed.run()) == 8

    def test_nominal_only_run_skips_corner_search(self, node, monkeypatch):
        doe = StudyDOE(array_sizes=(16,))
        campaign = SimulationCampaign(node, doe=doe)
        monkeypatch.setattr(
            WorstCaseStudy,
            "find_worst_corner",
            lambda self, name: pytest.fail("nominal-only run searched corners"),
        )
        results = campaign.run(kinds=("nominal",))
        assert len(results) == 1
        assert results.records[0].kind == "nominal"

    def test_unknown_kind_rejected(self, node):
        campaign = SimulationCampaign(node, doe=StudyDOE(array_sizes=(16,)))
        with pytest.raises(CampaignError, match="unknown item kinds"):
            campaign.work_items(kinds=("bogus",))

    def test_nominal_records_are_overlay_neutral(self, node):
        scenarios = scenario_grid(overlay_budgets_nm=(3.0, 8.0))
        campaign = SimulationCampaign(
            node, doe=StudyDOE(array_sizes=(16,)), scenarios=scenarios
        )
        results = campaign.run()
        nominal = results.nominal("sv0-strap256-be", 16)
        # Overlay only moves corners: the shared nominal must not claim the
        # first sweep point's budget or label.
        assert nominal.overlay_three_sigma_nm is None
        assert nominal.scenario_label == "sv0-strap256-be"

    def test_memoized_rerun_without_store(self, node, monkeypatch):
        doe = StudyDOE(array_sizes=(16,))
        campaign = SimulationCampaign(node, doe=doe)
        first = campaign.run()
        monkeypatch.setattr(
            CampaignWorkerState,
            "run_item",
            lambda self, item: pytest.fail("memoized rerun re-simulated"),
        )
        second = campaign.run()
        assert [r.key for r in second] == [r.key for r in first]


class TestResultsAccess:
    def test_unknown_key_raises_campaign_error(self, node):
        doe = StudyDOE(array_sizes=(16,))
        results = SimulationCampaign(node, doe=doe).run()
        with pytest.raises(CampaignError, match="no campaign record"):
            results.record("n999-nominal-sv0-strap256-be")

    def test_report_dict_shape(self, node):
        doe = StudyDOE(array_sizes=(16,))
        campaign = SimulationCampaign(node, doe=doe)
        report = campaign.report_dict(campaign.run())
        assert report["n_records"] == 4
        assert {r["kind"] for r in report["records"]} == {"nominal", "corner"}
        json.dumps(report)                          # must be JSON-serialisable
