"""Shared fixtures for the test suite.

Expensive objects (technology node, array layouts, extraction results,
read-path simulator) are session scoped: they are immutable for the tests
that use them, and sharing them keeps the full suite fast.
"""

from __future__ import annotations

import pytest

from repro.core.analytical import model_from_technology
from repro.extraction.lpe import ParameterizedLPE
from repro.layout.array import generate_array_layout
from repro.layout.sram_cell import generate_cell_layout
from repro.patterning import euv, le3, sadp
from repro.sram.read_path import ReadPathSimulator
from repro.technology.node import n10

#: Worst-case corner parameter sets used across tests (Table I corners).
LE3_WORST_CORNER = {"cd:A": 3.0, "cd:B": 3.0, "cd:C": 3.0, "ol:B": -8.0, "ol:C": 8.0}
SADP_WORST_CORNER = {"cd:core": -3.0, "spacer": -1.5}
EUV_WORST_CORNER = {"cd:euv": 3.0}


@pytest.fixture(scope="session")
def node():
    """The N10-class technology node with the paper's 8 nm overlay budget."""
    return n10()


@pytest.fixture(scope="session")
def cell_layout(node):
    return generate_cell_layout(node=node)


@pytest.fixture(scope="session")
def array16(node):
    return generate_array_layout(n_wordlines=16, node=node)


@pytest.fixture(scope="session")
def array64(node):
    return generate_array_layout(n_wordlines=64, node=node)


@pytest.fixture(scope="session")
def lpe(node):
    return ParameterizedLPE(node)


@pytest.fixture(scope="session")
def nominal_extraction64(lpe, array64):
    return lpe.extract_pattern(array64.metal1_pattern)


@pytest.fixture(scope="session")
def simulator(node):
    return ReadPathSimulator(node)


@pytest.fixture(scope="session")
def analytical_model(node):
    return model_from_technology(node)


@pytest.fixture(scope="session")
def le3_option():
    return le3()


@pytest.fixture(scope="session")
def sadp_option():
    return sadp()


@pytest.fixture(scope="session")
def euv_option():
    return euv()
