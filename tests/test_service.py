"""Tests of the service layer (repro.service).

The acceptance bar: a cache hit returns bit-identical rows, identical
in-flight submissions coalesce into one computation, and a full HTTP
round trip (submit → wait → fetch) reproduces a direct ``api.run`` at
``rtol <= 1e-12`` for at least two experiment kinds.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.api import ResultSet, run
from repro.core.spec import (
    SCHEMA_VERSION,
    ArraySpec,
    ExecutionSpec,
    ExperimentSpec,
    OperationSpec,
    SpecError,
    spec_fingerprint,
)
from repro.core.results import atomic_write_text
from repro.service.cache import ResultCache
from repro.service.client import ExperimentClient, ServiceError
from repro.service.queue import ExperimentQueue, JobError, JobState
from repro.service.server import ExperimentServer


def campaign_spec(**overrides) -> ExperimentSpec:
    return ExperimentSpec(
        kind="campaign", array=ArraySpec(sizes=(16,)), **overrides
    )


def worst_case_spec() -> ExperimentSpec:
    return ExperimentSpec(kind="worst_case", array=ArraySpec(sizes=(16,)))


def tiny_result(spec: ExperimentSpec, value: float = 1.0) -> ResultSet:
    """A synthetic ResultSet for queue/cache plumbing tests."""
    return ResultSet(
        spec=spec,
        records=[{"record": "stub", "value": value, "nested": {"a": [1, 2]}}],
        meta={"stub": True},
    )


def wait_until(predicate, timeout_s=5.0, interval_s=0.01):
    """Poll until ``predicate()`` is truthy (the settle callbacks run on
    worker threads, slightly after ``result()`` returns)."""
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() >= deadline:
            return False
        time.sleep(interval_s)
    return True


def assert_records_match(actual, reference, rtol=1e-12):
    """Element-wise record parity; ``wall_s`` is wall-clock, not physics."""
    assert len(actual) == len(reference)
    for got, want in zip(actual, reference):
        want = json.loads(json.dumps(want))  # tuples -> lists, like the wire
        assert set(got) == set(want)
        for key, expected in want.items():
            if key == "wall_s":
                continue
            value = got[key]
            if isinstance(expected, float) and not isinstance(expected, bool):
                np.testing.assert_allclose(value, expected, rtol=rtol)
            else:
                assert value == expected, (key, value, expected)


# -- fingerprints ------------------------------------------------------------------------


class TestFingerprint:
    def test_stable_and_hex(self):
        spec = campaign_spec()
        assert spec.fingerprint() == spec.fingerprint() == spec_fingerprint(spec)
        assert len(spec.fingerprint()) == 64
        int(spec.fingerprint(), 16)

    def test_execution_placement_is_neutral(self):
        serial = campaign_spec(execution=ExecutionSpec(backend="serial"))
        pooled = campaign_spec(
            execution=ExecutionSpec(backend="process", workers=8, store_dir="runs/x")
        )
        assert serial.fingerprint() == pooled.fingerprint()

    def test_result_bearing_fields_change_it(self):
        base = campaign_spec()
        assert base.fingerprint() != campaign_spec(
            execution=ExecutionSpec(seed=7)
        ).fingerprint()
        assert base.fingerprint() != campaign_spec(
            execution=ExecutionSpec(max_segments=32)
        ).fingerprint()
        assert base.fingerprint() != worst_case_spec().fingerprint()
        assert base.fingerprint() != campaign_spec(
            operation=OperationSpec(samples=100)
        ).fingerprint()

    def test_canonical_dict_keeps_schema_version(self):
        payload = campaign_spec().canonical_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert "backend" not in payload["execution"]
        assert "seed" in payload["execution"]


# -- ResultSet persistence ---------------------------------------------------------------


class TestResultSetRoundTrip:
    def test_from_dict_restores_records_meta_and_spec(self):
        spec = campaign_spec()
        original = tiny_result(spec, value=0.1 + 0.2)
        restored = ResultSet.from_json(original.to_json())
        assert restored.spec == spec
        assert restored.records == original.records
        assert restored.meta["stub"] is True
        assert restored.payload is None
        assert restored.to_dict() == original.to_dict()

    def test_float_bits_survive(self):
        value = 5.381559323179346e-12
        restored = ResultSet.from_json(tiny_result(campaign_spec(), value).to_json())
        assert restored.records[0]["value"] == value  # exact, not approximate

    def test_payload_free_text_rendering(self):
        restored = ResultSet.from_json(tiny_result(campaign_spec()).to_json())
        text = restored.to_text()
        assert "record" in text and "stub" in text

    def test_malformed_payloads_rejected(self):
        with pytest.raises(SpecError):
            ResultSet.from_json("not json")
        with pytest.raises(SpecError):
            ResultSet.from_dict({"records": []})
        with pytest.raises(SpecError):
            ResultSet.from_dict(
                {"spec": campaign_spec().to_dict(), "records": "nope"}
            )


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "one")
        atomic_write_text(target, "two")
        assert target.read_text() == "two"
        assert list(tmp_path.iterdir()) == [target]  # no tmp litter


# -- the result cache --------------------------------------------------------------------


class TestResultCache:
    def test_miss_then_hit_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = campaign_spec()
        assert cache.get(spec) is None
        result = tiny_result(spec, value=1.0 / 3.0)
        cache.put(spec, result)
        hit = cache.get(spec)
        assert hit is not None
        assert hit.records == result.records  # bit-identical through JSON
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_schema_version_mismatch_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = campaign_spec()
        cache.put(spec, tiny_result(spec))
        entry = cache.path_for(spec.fingerprint())
        payload = json.loads(entry.read_text())
        payload["schema_version"] = SCHEMA_VERSION + 1
        entry.write_text(json.dumps(payload))
        assert cache.get(spec) is None
        assert not entry.exists()
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 1

    def test_corrupt_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = campaign_spec()
        cache.put(spec, tiny_result(spec))
        entry = cache.path_for(spec.fingerprint())
        entry.write_text("{ torn")
        assert cache.get(spec) is None
        # Quarantined, not deleted: the corrupt bytes survive for
        # post-mortems under .json.corrupt, invisible to the store.
        quarantined = entry.with_name(entry.name + ".corrupt")
        assert not entry.exists()
        assert quarantined.read_text() == "{ torn"
        assert cache.stats.quarantined == 1
        assert cache.stats.invalidations == 0
        assert cache.stats.misses == 1
        assert len(cache) == 0
        # The next get is a plain miss and the next put repopulates.
        cache.put(spec, tiny_result(spec))
        assert cache.get(spec) is not None

    def test_lru_eviction_prefers_stale_entries(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        specs = [
            campaign_spec(execution=ExecutionSpec(seed=seed)) for seed in (1, 2, 3)
        ]
        cache.put(specs[0], tiny_result(specs[0]))
        time.sleep(0.02)
        cache.put(specs[1], tiny_result(specs[1]))
        time.sleep(0.02)
        # Touch the oldest so the middle entry becomes LRU.
        assert cache.get(specs[0]) is not None
        time.sleep(0.02)
        cache.put(specs[2], tiny_result(specs[2]))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get(specs[1]) is None      # evicted
        assert cache.get(specs[0]) is not None  # kept (recently used)
        assert cache.get(specs[2]) is not None  # kept (just written)

    def test_clear_and_stats_dict(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = campaign_spec()
        cache.put(spec, tiny_result(spec))
        stats = cache.stats_dict()
        assert stats["entries"] == 1 and stats["max_entries"] == 256
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_api_run_uses_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ExperimentSpec(kind="worst_case", array=ArraySpec(sizes=(16,)))
        first = run(spec, cache=cache)
        assert cache.stats.stores == 1
        second = run(spec, cache=cache)
        assert cache.stats.hits == 1
        assert second.payload is None
        assert_records_match(second.records, first.records)


# -- the job queue -----------------------------------------------------------------------


class TestExperimentQueue:
    def test_submit_runs_and_returns_result(self):
        spec = campaign_spec()
        with ExperimentQueue(workers=1, runner=lambda s: tiny_result(s, 42.0)) as queue:
            job = queue.submit(spec)
            assert job.fingerprint == spec.fingerprint()
            result = queue.result(job.id, timeout=5)
            assert result.records[0]["value"] == 42.0
            assert queue.status(job.id)["state"] == JobState.DONE
            assert queue.status(job.id)["n_records"] == 1

    def test_identical_inflight_submissions_coalesce(self):
        release = threading.Event()
        started = threading.Event()
        calls = []

        def slow_runner(spec):
            calls.append(spec.fingerprint())
            started.set()
            release.wait(timeout=10)
            return tiny_result(spec, 7.0)

        spec = campaign_spec()
        with ExperimentQueue(workers=2, runner=slow_runner) as queue:
            first = queue.submit(spec)
            assert started.wait(timeout=5)
            second = queue.submit(spec)
            third = queue.submit(campaign_spec(execution=ExecutionSpec(seed=9)))
            assert second.coalesced and not first.coalesced and not third.coalesced
            release.set()
            a = queue.result(first.id, timeout=10)
            b = queue.result(second.id, timeout=10)
            assert a is b  # one computation, shared result
            queue.result(third.id, timeout=10)
            assert wait_until(lambda: queue.stats()["completed"] == 3)
            stats = queue.stats()
        assert calls.count(spec.fingerprint()) == 1
        assert stats["coalesced"] == 1 and stats["submitted"] == 3

    def test_cache_short_circuits_submission(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = campaign_spec()
        cache.put(spec, tiny_result(spec, 3.0))

        def forbidden(spec):
            raise AssertionError("cached submission must not compute")

        with ExperimentQueue(workers=1, cache=cache, runner=forbidden) as queue:
            job = queue.submit(spec)
            assert job.cached and job.state == JobState.DONE
            assert queue.result(job.id).records[0]["value"] == 3.0
            assert queue.stats()["cache_hits"] == 1

    def test_fresh_results_land_in_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = campaign_spec()
        with ExperimentQueue(workers=1, cache=cache, runner=tiny_result) as queue:
            queue.result(queue.submit(spec).id, timeout=5)
            second = queue.submit(spec)
            assert second.cached

    def test_failed_job_reports_its_error(self):
        def boom(spec):
            raise RuntimeError("solver exploded")

        with ExperimentQueue(workers=1, runner=boom) as queue:
            job = queue.submit(campaign_spec())
            with pytest.raises(JobError, match="solver exploded"):
                queue.result(job.id, timeout=5)
            status = queue.status(job.id)
            assert status["state"] == JobState.FAILED
            assert "solver exploded" in status["error"]
            assert queue.stats()["failed"] == 1

    def test_unknown_job_id(self):
        with ExperimentQueue(workers=1, runner=tiny_result) as queue:
            with pytest.raises(JobError):
                queue.status("job-999999")
            with pytest.raises(JobError):
                queue.result("job-999999")

    def test_cancel_queued_job(self):
        release = threading.Event()

        def slow_runner(spec):
            release.wait(timeout=10)
            return tiny_result(spec)

        with ExperimentQueue(workers=1, runner=slow_runner) as queue:
            blocker = queue.submit(campaign_spec())
            queued = queue.submit(campaign_spec(execution=ExecutionSpec(seed=5)))
            assert queue.cancel(queued.id) is True
            assert queue.status(queued.id)["state"] == JobState.CANCELLED
            with pytest.raises(JobError, match="cancelled"):
                queue.result(queued.id)
            release.set()
            queue.result(blocker.id, timeout=10)
            assert queue.stats()["cancelled"] == 1

    def test_cancelling_a_coalesced_job_keeps_the_shared_computation(self):
        release = threading.Event()
        started = threading.Event()

        def slow_runner(spec):
            started.set()
            release.wait(timeout=10)
            return tiny_result(spec, 11.0)

        spec = campaign_spec()
        with ExperimentQueue(workers=1, runner=slow_runner) as queue:
            first = queue.submit(spec)
            assert started.wait(timeout=5)
            second = queue.submit(spec)
            assert queue.cancel(second.id) is True
            release.set()
            assert queue.result(first.id, timeout=10).records[0]["value"] == 11.0


# -- the HTTP server ---------------------------------------------------------------------


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    with ExperimentServer(
        cache_dir=tmp_path_factory.mktemp("service-cache"), workers=2
    ) as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    return ExperimentClient(server.url, timeout_s=30.0)


class TestServerRoundTrip:
    @pytest.mark.parametrize(
        "spec_factory", [campaign_spec, worst_case_spec], ids=["campaign", "worst_case"]
    )
    def test_parity_with_direct_run(self, client, spec_factory):
        spec = spec_factory()
        direct = run(spec)
        remote = client.run(spec, timeout_s=120.0)
        assert remote.kind == spec.kind
        assert remote.spec == spec
        assert_records_match(remote.records, direct.records)

    def test_second_submission_is_a_cache_hit(self, client):
        spec = campaign_spec()
        first = client.submit(spec)
        client.wait(first["id"], timeout_s=120.0)
        second = client.submit(spec)
        assert second["cached"] is True
        assert second["state"] == "done"
        assert_records_match(
            client.result_set(second["id"]).records,
            client.result_set(first["id"]).records,
            rtol=0,  # served bytes are identical, not merely close
        )

    def test_result_formats(self, client):
        spec = worst_case_spec()
        ticket = client.submit(spec)
        client.wait(ticket["id"], timeout_s=60.0)
        as_json = client.result_text(ticket["id"], fmt="json")
        as_csv = client.result_text(ticket["id"], fmt="csv")
        as_text = client.result_text(ticket["id"], fmt="text")
        payload = json.loads(as_json)
        assert payload["kind"] == "worst_case" and payload["n_records"] > 0
        assert as_csv.splitlines()[0].startswith("record,")
        assert "worst_corner" in as_text
        with pytest.raises(ServiceError, match="unknown result format"):
            client.result_text(ticket["id"], fmt="yaml")

    def test_identical_bytes_for_cached_and_fresh_responses(self, client):
        spec = campaign_spec()
        first = client.submit(spec)
        client.wait(first["id"], timeout_s=120.0)
        second = client.submit(spec)
        for fmt in ("json", "csv", "text"):
            assert client.result_text(first["id"], fmt) == client.result_text(
                second["id"], fmt
            )

    def test_healthz_reports_cache_and_queue(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert set(health["cache"]) >= {"hits", "misses", "stores", "entries"}
        assert set(health["queue"]) >= {"submitted", "completed", "in_flight"}

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.status("job-424242")
        assert err.value.status == 404

    def test_invalid_spec_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client._request_json(
                "/v1/experiments", method="POST", body='{"kind": "bogus"}'
            )
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client._request_json("/v1/experiments", method="POST", body="{ torn")
        assert err.value.status == 400

    def test_job_listing(self, client):
        jobs = client._request_json("/v1/experiments")["jobs"]
        assert jobs and all("state" in job for job in jobs)

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._request_json("/v1/nope")
        assert err.value.status == 404


# -- fault tolerance: retries, drops, truncation, restart recovery -----------------------


class TestClientRetries:
    def test_unreachable_server_reports_every_attempt(self):
        client = ExperimentClient(
            "http://127.0.0.1:9", timeout_s=0.5, max_retries=2, backoff_s=0.001
        )
        with pytest.raises(ServiceError, match="after 3 attempts"):
            client.health()

    def test_zero_retries_is_single_shot(self):
        client = ExperimentClient(
            "http://127.0.0.1:9", timeout_s=0.5, max_retries=0
        )
        with pytest.raises(ServiceError, match="after 1 attempt"):
            client.health()

    def test_retry_knob_validation(self):
        with pytest.raises(ValueError):
            ExperimentClient(max_retries=-1)
        with pytest.raises(ValueError):
            ExperimentClient(backoff_s=-0.1)

    def test_http_errors_are_not_retried(self, client):
        # The server answered: surface its message immediately (a retry
        # would repeat the same 400).
        with pytest.raises(ServiceError) as err:
            client._request_json(
                "/v1/experiments", method="POST", body='{"kind": "bogus"}'
            )
        assert err.value.status == 400

    def test_dropped_response_is_retried_transparently(self, tmp_path):
        from repro.testing import FaultPlan
        from repro.testing.faults import injected

        with ExperimentServer(workers=1) as server:
            retrying = ExperimentClient(
                server.url, timeout_s=10.0, max_retries=2, backoff_s=0.01
            )
            plan = FaultPlan(state_dir=str(tmp_path / "faults"), http_drop_first=1)
            with injected(plan):
                # First response severed mid-request; the retry succeeds
                # and coalesces/dedupes on the server side.
                health = retrying.health()
            assert health["status"] == "ok"

    def test_dropped_response_without_retries_fails(self, tmp_path):
        from repro.testing import FaultPlan
        from repro.testing.faults import injected

        with ExperimentServer(workers=1) as server:
            single_shot = ExperimentClient(server.url, timeout_s=10.0, max_retries=0)
            plan = FaultPlan(state_dir=str(tmp_path / "faults"), http_drop_first=1)
            with injected(plan):
                with pytest.raises(ServiceError, match="after 1 attempt"):
                    single_shot.health()


class TestCacheTruncationFault:
    def test_truncated_put_is_quarantined_on_read(self, tmp_path):
        from repro.testing import FaultPlan
        from repro.testing.faults import injected

        cache = ResultCache(tmp_path)
        spec = campaign_spec()
        plan = FaultPlan(cache_truncate_fingerprints=(spec.fingerprint(),))
        with injected(plan):
            cache.put(spec, tiny_result(spec))
        # The stored entry was torn mid-write; reading it quarantines.
        assert cache.get(spec) is None
        assert cache.stats.quarantined == 1
        corrupt = list(tmp_path.glob("*.json.corrupt"))
        assert len(corrupt) == 1


class TestServerDurability:
    def test_restart_recovers_journaled_jobs_byte_identically(self, tmp_path):
        cache_dir = tmp_path / "cache"
        spec = campaign_spec()
        # A dead server journaled this submission and was killed -9
        # before computing it.
        from repro.service.journal import JobJournal

        JobJournal(cache_dir / "journal.jsonl").record_submitted(
            spec.fingerprint(), spec
        )
        with ExperimentServer(cache_dir=cache_dir, workers=1) as server:
            assert server.recovered == 1
            recovered_client = ExperimentClient(server.url, timeout_s=30.0)
            # The recovered job is visible and completes.
            jobs = server.queue.jobs()
            assert len(jobs) == 1
            recovered_client.wait(jobs[0]["id"], timeout_s=120.0)
            recovered_bytes = recovered_client.result_text(jobs[0]["id"], fmt="json")
            # A fresh submission of the same spec re-serves the recovered
            # computation from the cache, byte-identically.
            ticket = recovered_client.submit(spec)
            assert ticket["cached"] is True
            assert (
                recovered_client.result_text(ticket["id"], fmt="json")
                == recovered_bytes
            )
            # And the journal is settled: nothing outstanding remains.
            health = recovered_client.health()
            assert health["queue"]["recovered"] == 1
            assert health["queue"]["journal"]["outstanding"] == 0
        # Parity with a direct run (the recovered records are the real
        # computation, not a placeholder).
        direct = run(spec)
        assert_records_match(
            ResultSet.from_json(recovered_bytes).records, direct.records
        )

    def test_journal_defaults_beside_the_cache(self, tmp_path):
        with ExperimentServer(cache_dir=tmp_path / "cache", workers=1) as server:
            assert server.journal is not None
            assert server.journal.path == tmp_path / "cache" / "journal.jsonl"
        with ExperimentServer(workers=1) as server:
            assert server.journal is None

    def test_stop_serving_then_drain_completes_inflight_work(self, tmp_path):
        with ExperimentServer(cache_dir=tmp_path / "cache", workers=1) as server:
            submitting = ExperimentClient(server.url, timeout_s=30.0)
            ticket = submitting.submit(campaign_spec())
            server.stop_serving()
            # Listener closed, but the in-flight job still completes
            # within the drain budget and settles its journal obligation.
            assert server.drain(timeout_s=120.0) is True
            assert server.queue.status(ticket["id"])["state"] == "done"
            assert server.journal.outstanding_count() == 0
