"""Tests of the GDS-like text export / import."""

import io

import pytest

from repro.layout.gds import (
    GDSCell,
    GDSFormatError,
    GDSLibrary,
    dumps_gdt,
    library_from_wires,
    loads_gdt,
    read_gdt,
    write_gdt,
)
from repro.layout.geometry import Rect
from repro.layout.wire import NetRole, Wire


def sample_wires():
    return [
        Wire(net="BL", layer="metal1", rect=Rect(0.0, 24.0, 960.0, 54.0), role=NetRole.BITLINE),
        Wire(net="VSS", layer="metal1", rect=Rect(0.0, 0.0, 960.0, 24.0), role=NetRole.VSS),
        Wire(net="WL0", layer="metal2", rect=Rect(100.0, 0.0, 124.0, 200.0), role=NetRole.WORDLINE),
    ]


class TestExport:
    def test_dumps_contains_cell_and_boundaries(self):
        library = library_from_wires("sram_cell", sample_wires())
        text = dumps_gdt(library)
        assert "CELL sram_cell" in text
        assert text.count("BOUNDARY") == 3
        assert "net=BL" in text
        assert "role=bitline" in text

    def test_write_to_file(self, tmp_path):
        library = library_from_wires("cellA", sample_wires())
        path = tmp_path / "cell.gdt"
        write_gdt(library, path)
        assert path.exists()
        assert "CELL cellA" in path.read_text()

    def test_duplicate_cells_rejected(self):
        library = library_from_wires("cellA", sample_wires())
        with pytest.raises(GDSFormatError):
            library.add_cell(GDSCell(name="cellA"))


class TestRoundTrip:
    def test_round_trip_preserves_geometry(self):
        library = library_from_wires("cellA", sample_wires())
        recovered = loads_gdt(dumps_gdt(library))
        cell = recovered.cell("cellA")
        assert len(cell.wires) == 3
        original = {wire.net: wire for wire in sample_wires()}
        for wire in cell.wires:
            assert wire.rect.x_min == pytest.approx(original[wire.net].rect.x_min, abs=1e-3)
            assert wire.rect.y_max == pytest.approx(original[wire.net].rect.y_max, abs=1e-3)
            assert wire.layer == original[wire.net].layer
            assert wire.role == original[wire.net].role

    def test_round_trip_through_file(self, tmp_path):
        library = library_from_wires("cellA", sample_wires())
        path = tmp_path / "cell.gdt"
        write_gdt(library, path)
        recovered = read_gdt(path)
        assert recovered.cell("cellA").nets() == ["BL", "VSS", "WL0"]

    def test_array_layout_round_trip(self, array16):
        library = library_from_wires("array", array16.wires(), layer_map=array16.layer_map)
        recovered = loads_gdt(dumps_gdt(library), layer_map=array16.layer_map)
        assert len(recovered.cell("array").wires) == len(array16.wires())


class TestParserErrors:
    def test_unknown_record_rejected(self):
        with pytest.raises(GDSFormatError):
            loads_gdt("HEADER unit_nm=1.0\nFOO bar\n")

    def test_unclosed_cell_rejected(self):
        with pytest.raises(GDSFormatError):
            loads_gdt("HEADER unit_nm=1.0\nCELL open_cell\n")

    def test_xy_outside_boundary_rejected(self):
        text = "HEADER unit_nm=1.0\nCELL c\nXY 0 0 1 0 1 1 0 1\nENDCELL\n"
        with pytest.raises(GDSFormatError):
            loads_gdt(text)

    def test_endcell_without_cell_rejected(self):
        with pytest.raises(GDSFormatError):
            loads_gdt("ENDCELL\n")

    def test_malformed_xy_rejected(self):
        text = (
            "HEADER unit_nm=1.0\nCELL c\n"
            "BOUNDARY layer=15 datatype=0 net=BL role=bitline\nXY 0 0 1\nENDEL\nENDCELL\n"
        )
        with pytest.raises(GDSFormatError):
            loads_gdt(text)

    def test_unknown_cell_lookup_raises(self):
        library = GDSLibrary()
        with pytest.raises(GDSFormatError):
            library.cell("missing")

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "# a comment\n\nHEADER unit_nm=1.0\nCELL c\n"
            "BOUNDARY layer=15 datatype=0 net=BL role=bitline\n"
            "XY 0 0 10 0 10 5 0 5\nENDEL\nENDCELL\n"
        )
        library = loads_gdt(text)
        assert len(library.cell("c").wires) == 1

    def test_header_unit_parsed(self):
        library = loads_gdt("HEADER unit_nm=0.5\nCELL c\nENDCELL\n")
        assert library.unit_nm == pytest.approx(0.5)
