"""Tests of the declarative spec layer (repro.core.spec).

Covers the golden checked-in spec documents (one per SRAM operation),
the lossless JSON round trip, strict validation, the spec↔engine
bridges and the campaign store's schema-version handling.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.campaign import CampaignError, CampaignScenario, CampaignStore, scenario_grid
from repro.core.spec import (
    EXPERIMENT_KINDS,
    SCHEMA_VERSION,
    ArraySpec,
    ExecutionSpec,
    ExperimentSpec,
    OperationSpec,
    ScenarioSpec,
    SpecError,
    TechnologySpec,
    scenario_spec_grid,
)
from repro.core.study import MultiPatterningSRAMStudy

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "examples" / "specs"
GOLDEN_SPECS = sorted(GOLDEN_DIR.glob("*.json"))


class TestGoldenSpecs:
    def test_golden_directory_covers_every_operation(self):
        names = {path.stem for path in GOLDEN_SPECS}
        assert {"smoke", "read", "write", "hold_snm", "read_snm", "yield_hs"} <= names

    @pytest.mark.parametrize("path", GOLDEN_SPECS, ids=lambda p: p.stem)
    def test_golden_spec_round_trips_losslessly(self, path):
        spec = ExperimentSpec.from_json(path.read_text(encoding="utf-8"))
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert spec.schema_version == SCHEMA_VERSION

    @pytest.mark.parametrize("path", GOLDEN_SPECS, ids=lambda p: p.stem)
    def test_golden_file_is_the_canonical_serialisation(self, path):
        text = path.read_text(encoding="utf-8")
        assert ExperimentSpec.from_json(text).to_json() == text

    def test_golden_operations_span_all_four(self):
        operations = set()
        for path in GOLDEN_SPECS:
            spec = ExperimentSpec.from_json(path.read_text(encoding="utf-8"))
            operations.update(spec.operation.operations)
            operations.update(s.operation for s in spec.scenarios)
        assert operations >= {"read", "write", "hold_snm", "read_snm"}


class TestRoundTrip:
    def test_default_spec_round_trips(self):
        spec = ExperimentSpec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("kind", EXPERIMENT_KINDS)
    def test_every_kind_round_trips(self, kind):
        spec = ExperimentSpec(
            kind=kind,
            technology=TechnologySpec(overlay_three_sigma_nm=5.0),
            array=ArraySpec(sizes=(16, 64), overlay_budgets_nm=(3.0, 8.0)),
            scenarios=scenario_spec_grid(stored_values=(0, 1)),
            operation=OperationSpec(
                operations=("write", "read"), samples=64, mc_sigma=True
            ),
            execution=ExecutionSpec(
                backend="process", workers=3, seed=7, store_dir="runs/x"
            ),
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_json_integers_and_floats_coerce_stably(self):
        payload = json.loads(ExperimentSpec().to_json())
        payload["technology"]["overlay_three_sigma_nm"] = 8  # int instead of float
        spec = ExperimentSpec.from_dict(payload)
        assert spec == ExperimentSpec()

    def test_scenario_lists_become_tuples(self):
        spec = ExperimentSpec(scenarios=[ScenarioSpec()])
        assert isinstance(spec.scenarios, tuple)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError, match="kind"):
            ExperimentSpec(kind="erase")

    def test_foreign_schema_version_rejected(self):
        with pytest.raises(SpecError, match="schema_version"):
            ExperimentSpec(schema_version=SCHEMA_VERSION + 1)

    def test_unknown_top_level_key_rejected(self):
        payload = ExperimentSpec().to_dict()
        payload["flux_capacitor"] = True
        with pytest.raises(SpecError, match="flux_capacitor"):
            ExperimentSpec.from_dict(payload)

    def test_unknown_nested_key_rejected(self):
        payload = ExperimentSpec().to_dict()
        payload["execution"]["threads"] = 8
        with pytest.raises(SpecError, match="threads"):
            ExperimentSpec.from_dict(payload)

    def test_unknown_operation_rejected(self):
        with pytest.raises(SpecError, match="unknown operation"):
            OperationSpec(operations=("erase",))

    def test_unknown_backend_rejected(self):
        with pytest.raises(SpecError, match="backend"):
            ExecutionSpec(backend="quantum")

    def test_unknown_node_rejected(self):
        with pytest.raises(SpecError, match="node"):
            TechnologySpec(node="n3")

    def test_duplicate_scenario_labels_rejected(self):
        with pytest.raises(SpecError, match="unique"):
            ExperimentSpec(scenarios=(ScenarioSpec(), ScenarioSpec()))

    def test_empty_scenarios_rejected(self):
        with pytest.raises(SpecError, match="scenario"):
            ExperimentSpec(scenarios=())

    def test_bad_stored_value_rejected(self):
        with pytest.raises(SpecError, match="stored_value"):
            ScenarioSpec(stored_value=2)

    def test_bad_array_rejected(self):
        with pytest.raises(SpecError):
            ArraySpec(sizes=())

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError, match="JSON"):
            ExperimentSpec.from_json("{not json")


class TestBridges:
    def test_scenario_spec_matches_campaign_scenario(self):
        spec = ScenarioSpec(
            label="x", operation="write", stored_value=1, method="trapezoidal"
        )
        scenario = spec.to_scenario()
        assert isinstance(scenario, CampaignScenario)
        assert scenario.sim_key == "write-sv1-strap256-trap"
        assert ScenarioSpec.from_scenario(scenario) == spec

    def test_scenario_spec_grid_mirrors_scenario_grid_labels(self):
        kwargs = dict(
            overlay_budgets_nm=(None, 5.0),
            stored_values=(0, 1),
            operations=("read", "write"),
        )
        spec_labels = [s.label for s in scenario_spec_grid(**kwargs)]
        engine_labels = [s.label for s in scenario_grid(**kwargs)]
        assert spec_labels == engine_labels

    def test_technology_spec_builds_the_requested_overlay(self):
        node = TechnologySpec(overlay_three_sigma_nm=5.0).build()
        assert node.variations.litho_etch.overlay.three_sigma_nm == 5.0

    def test_array_spec_to_doe(self):
        doe = ArraySpec(sizes=(16,), options=("EUV",)).to_doe()
        assert doe.array_sizes == (16,)
        assert doe.option_names == ("EUV",)

    def test_study_to_spec_from_spec_round_trip(self, node):
        study = MultiPatterningSRAMStudy(node, monte_carlo_samples=64, seed=9)
        spec = study.to_spec(kind="monte_carlo")
        again = MultiPatterningSRAMStudy.from_spec(spec)
        assert again.doe == study.doe
        assert again.monte_carlo_samples == 64
        assert again.seed == 9
        assert (
            again.node.variations.litho_etch.overlay.three_sigma_nm
            == node.variations.litho_etch.overlay.three_sigma_nm
        )


class TestStoreSchemaVersion:
    SIGNATURE = {"array_sizes": [16], "seed": 2015}

    def test_store_rejects_mismatching_schema_version(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        store.prepare({**self.SIGNATURE, "schema_version": SCHEMA_VERSION})
        with pytest.raises(CampaignError, match="different campaign"):
            CampaignStore(tmp_path / "store").prepare(
                {**self.SIGNATURE, "schema_version": SCHEMA_VERSION + 1}
            )

    def test_pre_spec_store_backfills_version_one(self, tmp_path):
        # Stores written before the spec layer carry no schema_version;
        # they are definitionally version-1 stores and must keep resuming.
        store = CampaignStore(tmp_path / "store")
        store.prepare(dict(self.SIGNATURE))
        CampaignStore(tmp_path / "store").prepare(
            {**self.SIGNATURE, "schema_version": 1}
        )

    def test_spec_stamped_store_resumes_under_same_version(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        store.prepare({**self.SIGNATURE, "schema_version": SCHEMA_VERSION})
        CampaignStore(tmp_path / "store").prepare(
            {**self.SIGNATURE, "schema_version": SCHEMA_VERSION}
        )


class TestStrictCoercion:
    def test_scalar_string_sizes_rejected(self):
        payload = ExperimentSpec().to_dict()
        payload["array"]["sizes"] = "16"  # would iterate to (1, 6)
        with pytest.raises(SpecError, match="sequence of integers"):
            ExperimentSpec.from_dict(payload)

    def test_scalar_string_overlay_budgets_rejected(self):
        payload = ExperimentSpec().to_dict()
        payload["array"]["overlay_budgets_nm"] = "8.0"
        with pytest.raises(SpecError, match="sequence of numbers"):
            ExperimentSpec.from_dict(payload)

    def test_scalar_string_operations_rejected(self):
        payload = ExperimentSpec().to_dict()
        payload["operation"]["operations"] = "read"
        with pytest.raises(SpecError, match="bare string"):
            ExperimentSpec.from_dict(payload)


class TestScalarCoercionErrors:
    """Bad scalar values raise SpecError (exit-2 material), not bare
    ValueError tracebacks."""

    def test_non_numeric_samples_rejected_as_spec_error(self):
        payload = ExperimentSpec().to_dict()
        payload["operation"]["samples"] = "many"
        with pytest.raises(SpecError, match="operation.samples"):
            ExperimentSpec.from_dict(payload)

    def test_non_numeric_overlay_rejected_as_spec_error(self):
        payload = ExperimentSpec().to_dict()
        payload["technology"]["overlay_three_sigma_nm"] = "eight"
        with pytest.raises(SpecError, match="technology.overlay_three_sigma_nm"):
            ExperimentSpec.from_dict(payload)

    def test_non_numeric_schema_version_rejected_as_spec_error(self):
        payload = ExperimentSpec().to_dict()
        payload["schema_version"] = "one"
        with pytest.raises(SpecError, match="schema_version"):
            ExperimentSpec.from_dict(payload)

    def test_non_numeric_workers_rejected_as_spec_error(self):
        payload = ExperimentSpec().to_dict()
        payload["execution"]["workers"] = [2]
        with pytest.raises(SpecError, match="execution.workers"):
            ExperimentSpec.from_dict(payload)

    def test_non_numeric_stored_value_rejected_as_spec_error(self):
        payload = ExperimentSpec().to_dict()
        payload["scenarios"][0]["stored_value"] = "zero"
        with pytest.raises(SpecError, match="scenario.stored_value"):
            ExperimentSpec.from_dict(payload)
