"""Tests of the performance-introspection layer: sampling profiler,
convergence telemetry, bench history regression gate, and the ``repro
top`` dashboard."""

import importlib.util
import io
import json
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.convergence import (
    lane_group_label,
    record_convergence,
    record_lane_stats,
    record_step_rejections,
)
from repro.obs.dashboard import (
    DashboardError,
    parse_prometheus_text,
    render_frame,
    run_top,
)
from repro.obs.history import (
    BENCH_SCHEMA_VERSION,
    REGRESSION_EXIT_CODE,
    append_entry,
    check_metrics,
    format_findings,
    has_regressions,
    history_path,
    load_entries,
    validate_report,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    cumulate,
    histogram_quantile,
    registry,
    reset_registry,
)
from repro.obs.profile import (
    SamplingProfiler,
    disable_profiling,
    enable_profiling,
    merge_folded,
    phase_totals,
    read_folded,
    top_frames,
)
from repro.obs.trace import disable_tracing, span
from repro.reporting.tables import format_flame_summary


@pytest.fixture(autouse=True)
def clean_observability():
    disable_profiling()
    disable_tracing()
    reset_registry()
    yield
    disable_profiling()
    disable_tracing()
    reset_registry()


# -- histogram quantiles (shared by repro top and repro report) --------------------------


class TestHistogramQuantile:
    def test_cumulate_produces_le_counts(self):
        buckets = (1.0, 2.0, 4.0)
        assert cumulate([0.5, 1.5, 3.0, 9.0], buckets) == [1, 2, 3]

    def test_interpolates_within_a_bucket(self):
        # 100 observations uniformly in (0, 1]: p50 should land near 0.5.
        buckets = (0.25, 0.5, 0.75, 1.0)
        counts = [25, 50, 75, 100]
        assert histogram_quantile(0.5, buckets, counts) == pytest.approx(0.5)
        assert histogram_quantile(0.25, buckets, counts) == pytest.approx(0.25)
        # Within-bucket linear interpolation.
        assert histogram_quantile(0.6, buckets, counts) == pytest.approx(0.6)

    def test_empty_histogram_is_none(self):
        assert histogram_quantile(0.5, (1.0, 2.0), [0, 0]) is None

    def test_overflow_quantile_clamps_to_largest_bound(self):
        # All mass beyond the last finite bucket: the estimate cannot
        # exceed what the histogram can represent.
        assert histogram_quantile(0.99, (1.0, 2.0), [0, 0], count=10) == 2.0

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            histogram_quantile(1.5, (1.0,), [1])


# -- bench history and the regression gate -----------------------------------------------


def _seed_history(history_dir, values, metric="wall_s", config=None):
    for value in values:
        append_entry(history_dir, "demo", {metric: value}, config=config)


class TestHistoryGate:
    def test_two_x_slowdown_is_a_regression(self, tmp_path):
        _seed_history(tmp_path, [1.0, 1.02, 0.98, 1.01])
        findings = check_metrics(
            load_entries(tmp_path, "demo"), {"wall_s": 2.0}, {"wall_s": "lower"}
        )
        assert has_regressions(findings)
        assert findings[0]["status"] == "regression"
        assert "REGRESSION" in format_findings(findings)

    def test_five_percent_wobble_passes(self, tmp_path):
        _seed_history(tmp_path, [1.0, 1.02, 0.98, 1.01])
        for wobble in (0.95, 1.05):
            findings = check_metrics(
                load_entries(tmp_path, "demo"),
                {"wall_s": wobble},
                {"wall_s": "lower"},
            )
            assert not has_regressions(findings), wobble

    def test_higher_direction_gates_throughput_drops(self, tmp_path):
        _seed_history(tmp_path, [100.0, 101.0, 99.0], metric="items_per_s")
        entries = load_entries(tmp_path, "demo")
        ok = check_metrics(entries, {"items_per_s": 97.0}, {"items_per_s": "higher"})
        assert not has_regressions(ok)
        bad = check_metrics(entries, {"items_per_s": 50.0}, {"items_per_s": "higher"})
        assert has_regressions(bad)

    def test_insufficient_history_never_fails(self, tmp_path):
        _seed_history(tmp_path, [1.0, 1.0])  # below min_samples=3
        findings = check_metrics(
            load_entries(tmp_path, "demo"), {"wall_s": 99.0}, {"wall_s": "lower"}
        )
        assert findings[0]["status"] == "insufficient-history"
        assert not has_regressions(findings)

    def test_noisy_history_widens_the_band(self, tmp_path):
        # MAD of this history is large; a value that a quiet ±10% band
        # would reject must pass here.
        _seed_history(tmp_path, [1.0, 1.5, 0.7, 1.4, 0.8, 1.6, 0.9])
        findings = check_metrics(
            load_entries(tmp_path, "demo"), {"wall_s": 1.3}, {"wall_s": "lower"}
        )
        assert findings[0]["tolerance"] > 0.10
        assert not has_regressions(findings)

    def test_config_isolation(self, tmp_path):
        # Full-DOE baselines must not judge a smoke run.
        _seed_history(tmp_path, [10.0, 10.0, 10.0], config={"sizes": [1024]})
        findings = check_metrics(
            load_entries(tmp_path, "demo"),
            {"wall_s": 0.5},
            {"wall_s": "lower"},
            config={"sizes": [16]},
        )
        assert findings[0]["status"] == "insufficient-history"

    def test_missing_metric_is_flagged_but_not_a_regression(self, tmp_path):
        _seed_history(tmp_path, [1.0, 1.0, 1.0])
        findings = check_metrics(
            load_entries(tmp_path, "demo"), {}, {"wall_s": "lower"}
        )
        assert findings[0]["status"] == "missing"
        assert not has_regressions(findings)

    def test_torn_history_lines_are_skipped(self, tmp_path):
        _seed_history(tmp_path, [1.0, 1.0, 1.0])
        path = history_path(tmp_path, "demo")
        with path.open("a") as handle:
            handle.write('{"suite": "demo", "metrics": {"wall_s"')  # torn tail
        entries = load_entries(tmp_path, "demo")
        assert len(entries) == 3

    def test_validate_report_provenance(self):
        good = {
            "bench_schema_version": BENCH_SCHEMA_VERSION,
            "timestamp_utc": "2026-08-08T12:00:00Z",
        }
        assert validate_report(good) == []
        assert validate_report({}) != []
        assert validate_report({**good, "bench_schema_version": 99}) != []
        assert validate_report({**good, "timestamp_utc": "yesterday"}) != []


def _load_bench_harness():
    root = Path(__file__).resolve().parents[1]
    spec = importlib.util.spec_from_file_location(
        "bench_harness", root / "benchmarks" / "run_benchmarks.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchHarnessGate:
    """Exit-code contract of ``run_benchmarks.py --record/--check``."""

    @pytest.fixture()
    def harness(self, tmp_path, monkeypatch):
        bench = _load_bench_harness()

        def fake_obs_bench(sizes, repetitions=5, trace_path=None, profile_path=None):
            wall = fake_obs_bench.wall_s
            return {
                "sizes": list(sizes),
                "repetitions": repetitions,
                "untraced": {"best_wall_s": wall},
                "traced": {"best_wall_s": wall},
                "profiled": {"best_wall_s": wall},
                "overhead_percent": 0.5,
                "profiler_overhead_percent": 1.0,
                "parity": {"bit_identical": True, "mismatches": 0},
                "attribution": {"coverage_percent": 99.0},
            }

        fake_obs_bench.wall_s = 1.0
        monkeypatch.setattr(bench, "run_obs_bench", fake_obs_bench)
        monkeypatch.setattr(
            bench, "bench_environment", lambda workers=None: {"fake": True}
        )

        def run(*extra):
            argv = [
                "run_benchmarks.py",
                "--suite", "obs",
                "--obs-sizes", "16",
                "--obs-reps", "1",
                "--obs-output", str(tmp_path / "BENCH.json"),
                "--history-dir", str(tmp_path / "history"),
                *extra,
            ]
            monkeypatch.setattr(sys, "argv", argv)
            return bench.main()

        run.fake = fake_obs_bench
        return run

    def test_record_then_check_passes_unchanged(self, harness, capsys):
        for _ in range(3):
            assert harness("--record") == 0
        assert harness("--check") == 0
        assert "OK" in capsys.readouterr().out

    def test_injected_2x_slowdown_exits_4(self, harness, capsys):
        for _ in range(3):
            assert harness("--record") == 0
        harness.fake.wall_s = 2.0
        assert harness("--check") == REGRESSION_EXIT_CODE
        out = capsys.readouterr().out
        assert "PERF REGRESSION" in out

    def test_check_before_record_in_one_invocation(self, harness, capsys):
        for _ in range(3):
            assert harness("--record") == 0
        harness.fake.wall_s = 2.0
        # --record --check together: still gated (fresh measurement must
        # not join its own baseline), and the bad run is still recorded.
        assert harness("--record", "--check") == REGRESSION_EXIT_CODE


# -- sampling profiler -------------------------------------------------------------------


def _spin(stop_event):
    while not stop_event.is_set():
        sum(i * i for i in range(500))


class TestSamplingProfiler:
    def test_hot_function_dominates_folded_output(self, tmp_path):
        out = tmp_path / "profile.folded"
        stop = threading.Event()
        worker = threading.Thread(target=_spin, args=(stop,), daemon=True)
        worker.start()
        try:
            profiler = enable_profiling(out, hz=401.0)
            time.sleep(0.4)
        finally:
            stop.set()
            disable_profiling()
            worker.join(timeout=5.0)
        samples = read_folded(out)
        assert sum(samples.values()) >= 10
        hot = dict(top_frames(samples, n=50))
        assert any("_spin" in frame or "genexpr" in frame for frame in hot)

    def test_samples_carry_the_active_span_phase(self, tmp_path):
        out = tmp_path / "profile.folded"
        stop = threading.Event()

        def spin_in_span():
            with span("solver.hot_loop"):
                _spin(stop)

        worker = threading.Thread(target=spin_in_span, daemon=True)
        try:
            profiler = enable_profiling(out, hz=401.0)
            worker.start()
            time.sleep(0.4)
        finally:
            stop.set()
            disable_profiling()
            worker.join(timeout=5.0)
        phases = phase_totals(read_folded(out))
        assert phases.get("solver.hot_loop", 0) > 0

    def test_worker_aggregates_merge_once(self, tmp_path):
        out = tmp_path / "profile.folded"
        worker_dir = tmp_path / "profile.folded.workers"
        worker_dir.mkdir()
        (worker_dir / "profile-1234.folded").write_text(
            "phase:item.solve;mod.func 7\n"
        )
        (worker_dir / "profile-5678.folded").write_text(
            "phase:item.solve;mod.func 3\nnot a folded line\n"
        )
        profiler = SamplingProfiler(out, worker_dir=worker_dir)
        profiler.samples["phase:item.solve;mod.func"] = 5
        profiler.stop()
        samples = read_folded(out)
        assert samples["phase:item.solve;mod.func"] == 15
        assert profiler.merged_workers == 2
        assert not worker_dir.exists()  # consumed exactly once

    def test_merge_folded_sums_aggregates(self):
        merged = merge_folded([{"a;b": 2}, {"a;b": 3, "c;d": 1}])
        assert merged == {"a;b": 5, "c;d": 1}

    def test_read_folded_skips_garbage(self, tmp_path):
        path = tmp_path / "x.folded"
        path.write_text("a;b 3\n\nbroken-line\nc;d notanumber\na;b 2\n")
        assert read_folded(path) == {"a;b": 5}

    def test_flame_summary_and_cli_report(self, tmp_path, capsys):
        path = tmp_path / "profile.folded"
        path.write_text(
            "phase:solver.dc;campaign.run;dc.newton 80\n"
            "phase:item.prepare;campaign.run;lpe.extract 20\n"
        )
        assert main(["report", str(path), "--flame"]) == 0
        out = capsys.readouterr().out
        assert "solver.dc" in out and "80.0%" in out
        assert "dc.newton" in out

    def test_flame_report_errors_are_typed(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.folded"), "--flame"]) == 2
        empty = tmp_path / "empty.folded"
        empty.write_text("")
        assert main(["report", str(empty), "--flame"]) == 2
        with pytest.raises(Exception):
            format_flame_summary({})


# -- solver convergence telemetry --------------------------------------------------------


class TestConvergenceTelemetry:
    def test_iteration_histogram_and_outcome_counters(self):
        record_convergence("dc", 5, True)
        record_convergence("dc", 700, False)
        record_convergence("transient", 12, True, lane_group="1-8")
        snap = registry().snapshot()
        key = ("repro_solver_iterations", (("kind", "dc"),))
        hist = snap["histograms"][key]
        assert hist["count"] == 2
        assert snap["counters"][("repro_solver_converged_total", (("kind", "dc"),))] == 1
        assert (
            snap["counters"][("repro_solver_nonconverged_total", (("kind", "dc"),))] == 1
        )

    def test_step_rejections_zero_is_free(self):
        record_step_rejections("transient", 0)
        assert not registry().snapshot()["counters"]
        record_step_rejections("transient", 3)
        counters = registry().snapshot()["counters"]
        assert (
            counters[("repro_solver_step_rejections_total", (("kind", "transient"),))]
            == 3
        )

    def test_lane_stats_gauges(self):
        record_lane_stats(
            {
                "batch_lane_iterations": 50,
                "batch_lane_slots": 100,
                "batch_lanes": 9,
                "scalar_fallbacks": 1,
            }
        )
        gauges = registry().snapshot()["gauges"]
        assert gauges[("repro_solver_lane_occupancy", ())] == pytest.approx(0.5)
        assert gauges[("repro_solver_scalar_fallback_rate", ())] == pytest.approx(0.1)

    def test_lane_group_labels_are_bounded(self):
        assert lane_group_label(4) == "1-8"
        assert lane_group_label(64) == "33-128"
        assert lane_group_label(1000) == "129+"

    def test_scalar_transient_run_records_convergence(self):
        # End to end: a real transient solve must land in the histogram.
        from repro.circuit.elements import Capacitor, Resistor, VoltageSource
        from repro.circuit.netlist import Circuit
        from repro.circuit.transient import TransientOptions, TransientSolver

        circuit = Circuit("rc")
        circuit.add(VoltageSource.dc("vin", "in", "0", 1.0))
        circuit.add(Resistor("r1", "in", "out", 1e4))
        circuit.add(Capacitor("c1", "out", "0", 1e-15))
        options = TransientOptions(t_stop_s=1e-10, record_nodes=["out"])
        TransientSolver(circuit, options).run()
        snap = registry().snapshot()
        assert any(
            name == "repro_solver_iterations" and dict(labels)["kind"] == "transient"
            for (name, labels) in snap["histograms"]
        )


# -- dashboard ---------------------------------------------------------------------------


CANNED_METRICS = """\
# HELP repro_queue_in_flight Experiments currently executing or queued.
# TYPE repro_queue_in_flight gauge
repro_queue_in_flight 3
repro_solver_sparse_solves_total 1000
repro_items_total{operation="read"} 40
repro_items_total{operation="write"} 2
repro_item_failures_total{classification="timeout"} 5
repro_item_failures_total{classification="solver_error"} 2
repro_item_wall_seconds_bucket{le="0.1",operation="read"} 10
repro_item_wall_seconds_bucket{le="1.0",operation="read"} 40
repro_item_wall_seconds_bucket{le="+Inf",operation="read"} 42
repro_item_wall_seconds_count{operation="read"} 42
repro_item_wall_seconds_sum{operation="read"} 12.5
garbage line that must be skipped
"""

CANNED_HEALTH = {
    "status": "ok",
    "version": "1.3.0",
    "uptime_s": 60.0,
    "cache": {"hits": 30, "misses": 10, "entries": 12},
    "queue": {"submitted": 42, "completed": 38, "failed": 1, "cancelled": 0},
}


class TestDashboard:
    def test_prometheus_parser_reassembles_histograms(self):
        parsed = parse_prometheus_text(CANNED_METRICS)
        key = ("repro_item_wall_seconds", (("operation", "read"),))
        hist = parsed["histograms"][key]
        assert hist["buckets"] == [0.1, 1.0]
        assert hist["counts"] == [10, 40]
        assert hist["count"] == 42
        assert hist["sum"] == pytest.approx(12.5)
        samples = parsed["samples"]
        assert samples[("repro_queue_in_flight", ())] == 3
        assert samples[("repro_items_total", (("operation", "read"),))] == 40

    def test_render_frame_lifetime_totals(self):
        frame = render_frame(parse_prometheus_text(CANNED_METRICS), CANNED_HEALTH)
        assert "depth    3" in frame
        assert "hit rate  75.0%" in frame
        assert "timeout 5" in frame
        assert "p50" in frame and "p99" in frame
        assert "version 1.3.0" in frame

    def test_render_frame_rates_from_counter_deltas(self):
        parsed = parse_prometheus_text(CANNED_METRICS)
        prev = dict(parsed["samples"])
        prev[("repro_solver_sparse_solves_total", ())] = 900.0
        frame = render_frame(parsed, CANNED_HEALTH, prev_samples=prev, dt_s=2.0)
        assert "sparse solves     50.0/s" in frame

    def test_render_frame_empty_server(self):
        frame = render_frame(
            parse_prometheus_text(""), {"status": "ok", "version": "x"}
        )
        assert "no items observed yet" in frame
        assert "failures none" in frame
        assert "cache    disabled" in frame

    def test_run_top_raises_when_server_is_down(self):
        with pytest.raises(DashboardError):
            run_top("http://127.0.0.1:1", once=True, stream=io.StringIO())

    def test_run_top_renders_frames(self, monkeypatch):
        import repro.obs.dashboard as dashboard

        monkeypatch.setattr(
            dashboard, "fetch_metrics", lambda url, timeout_s=5.0:
            parse_prometheus_text(CANNED_METRICS),
        )
        monkeypatch.setattr(
            dashboard, "fetch_health", lambda url, timeout_s=5.0: CANNED_HEALTH
        )
        out = io.StringIO()
        frames = run_top(
            "http://example", interval_s=0.0, count=2, stream=out, clear=False
        )
        assert frames == 2
        assert out.getvalue().count("repro top — server ok") == 2
