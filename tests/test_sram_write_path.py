"""Tests of the write-path simulator (transient delay + DC write margin)."""

import pytest

from repro.sram.read_path import ColumnParasitics, ReadPathSimulator
from repro.sram.write_path import WritePathSimulator, WriteSimulationError

from tests.conftest import LE3_WORST_CORNER


@pytest.fixture(scope="module")
def write_sim(node):
    return WritePathSimulator(node)


class TestWriteDelay:
    def test_nominal_write_flips_and_measures(self, write_sim):
        measurement = write_sim.measure_nominal(16)
        assert measurement.write_delay_s > 0.0
        assert measurement.stop_reason == "stop-condition"
        assert measurement.flip_time_s > measurement.wordline_time_s
        assert measurement.label == "nominal"

    def test_write_value_one_is_the_mirror_case(self, write_sim):
        zero = write_sim.measure_nominal(16, write_value=0)
        one = write_sim.measure_nominal(16, write_value=1)
        assert one.write_delay_s > 0.0
        # The cell and drivers are symmetric; only the (slightly asymmetric)
        # extracted bit-line pair distinguishes the two polarities.
        assert one.write_delay_s == pytest.approx(zero.write_delay_s, rel=0.2)

    def test_nominal_measurement_is_memoized(self, write_sim):
        assert write_sim.measure_nominal(16) is write_sim.measure_nominal(16)

    def test_bitline_resistance_slows_the_write(self, write_sim):
        nominal = write_sim.measure_nominal(64)
        slowed = write_sim.measure_with_variation(64, rvar=2.0, cvar=1.0)
        assert slowed.write_delay_s > nominal.write_delay_s

    def test_patterning_corner_changes_the_delay(self, write_sim, le3_option):
        nominal = write_sim.measure_nominal(16)
        varied = write_sim.measure_with_patterning(16, le3_option, LE3_WORST_CORNER)
        assert varied.label == le3_option.name
        assert varied.write_delay_s != nominal.write_delay_s
        assert abs(varied.penalty_percent_vs(nominal)) < 50.0

    def test_invalid_write_value_rejected(self, write_sim):
        with pytest.raises(WriteSimulationError, match="write_value"):
            column = write_sim.column_parasitics(16)
            write_sim.build_circuit(16, column, write_value=2)


class TestWriteMargin:
    def test_nominal_margin_is_a_fraction_of_vdd(self, write_sim, node):
        margin = write_sim.measure_nominal_margin(16)
        assert margin.flipped
        assert 0.0 < margin.margin_v < node.operating_conditions.vdd_v
        assert 0.0 < margin.margin_fraction() < 1.0

    def test_margin_memoized(self, write_sim):
        assert write_sim.measure_nominal_margin(16) is write_sim.measure_nominal_margin(16)

    def test_bitline_resistance_eats_the_margin(self, write_sim):
        column = write_sim.column_parasitics(64)
        nominal = write_sim.measure_margin(64, column)
        distorted = ColumnParasitics(
            bitline=column.bitline.scaled(3.0, 1.0),
            bitline_bar=column.bitline_bar.scaled(3.0, 1.0),
            vss_rail_resistance_ohm=column.vss_rail_resistance_ohm,
            vdd_rail_resistance_ohm=column.vdd_rail_resistance_ohm,
        )
        harder = write_sim.measure_margin(64, distorted)
        assert harder.margin_v < nominal.margin_v

    def test_unwritable_column_reports_zero_margin(self, write_sim):
        column = write_sim.column_parasitics(1024)
        hopeless = ColumnParasitics(
            bitline=column.bitline.scaled(5.0, 1.0),
            bitline_bar=column.bitline_bar.scaled(5.0, 1.0),
            vss_rail_resistance_ohm=column.vss_rail_resistance_ohm,
            vdd_rail_resistance_ohm=column.vdd_rail_resistance_ohm,
        )
        margin = write_sim.measure_margin(1024, hopeless)
        assert not margin.flipped
        assert margin.margin_v == 0.0


class TestGeometrySharing:
    def test_composed_geometry_is_shared(self, node):
        donor = ReadPathSimulator(node)
        write_sim = WritePathSimulator(node, geometry=donor)
        assert write_sim.geometry is donor
        donor.nominal_extraction(16)
        # The write simulator sees the donor's extraction cache directly.
        assert 16 in donor._nominal_extraction_cache
        write_sim.measure_nominal(16)
        assert 16 in donor._layout_cache

    def test_mismatched_geometry_rejected(self, node):
        donor = ReadPathSimulator(node, n_bitline_pairs=4)
        with pytest.raises(WriteSimulationError, match="geometry donor"):
            WritePathSimulator(node, geometry=donor)

    def test_invalidate_caches_drops_the_memos(self, node):
        write_sim = WritePathSimulator(node)
        first = write_sim.measure_nominal(16)
        write_sim.invalidate_caches()
        assert write_sim.measure_nominal(16) is not first
