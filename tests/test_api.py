"""Tests of the declarative facade (repro.api).

The acceptance bar: a spec equivalent to the classic ``repro campaign``
defaults must reproduce the campaign engine's records at ``rtol <=
1e-12`` with both one and two workers, and every ResultSet view (rows,
JSON, CSV, text) must stay consistent with the records.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import EXECUTOR_BACKENDS, ResultSet, load_spec, resolve_workers, run
from repro.core.campaign import SimulationCampaign
from repro.core.montecarlo import MonteCarloTdpStudy
from repro.core.spec import (
    ArraySpec,
    ExecutionSpec,
    ExperimentSpec,
    OperationSpec,
    SpecError,
)
from repro.core.worst_case import WorstCaseStudy
from repro.variability.doe import StudyDOE


def campaign_spec(**execution) -> ExperimentSpec:
    """The spec equivalent of ``repro campaign --sizes 16``."""
    return ExperimentSpec(
        kind="campaign",
        array=ArraySpec(sizes=(16,)),
        execution=ExecutionSpec(**execution),
    )


@pytest.fixture(scope="module")
def campaign_result(node):
    return run(campaign_spec())


@pytest.fixture(scope="module")
def reference_campaign(node):
    campaign = SimulationCampaign(node, doe=StudyDOE(array_sizes=(16,)))
    return campaign, campaign.run()


class TestCampaignParity:
    def test_spec_run_reproduces_the_campaign_records(
        self, campaign_result, reference_campaign
    ):
        _, reference = reference_campaign
        by_key = {record["key"]: record for record in campaign_result}
        assert set(by_key) == {record.key for record in reference}
        for record in reference:
            spec_record = by_key[record.key]
            np.testing.assert_allclose(spec_record["td_s"], record.td_s, rtol=1e-12)
            np.testing.assert_allclose(spec_record["value"], record.value, rtol=1e-12)
            assert spec_record["seed"] == record.seed
            assert spec_record["operation"] == record.operation

    def test_two_worker_pool_matches_serial(self, campaign_result):
        # Force the process pool even on a single-CPU host (the facade
        # itself clamps to the available CPUs, like `make -j`).
        pooled = SimulationCampaign.from_spec(
            campaign_spec(backend="process", workers=2)
        ).run(workers=2, clamp_to_cpus=False)
        by_key = {record["key"]: record for record in campaign_result}
        assert len(pooled) == len(by_key)
        for record in pooled:
            np.testing.assert_allclose(
                by_key[record.key]["td_s"], record.td_s, rtol=1e-12
            )

    def test_workers_override_does_not_change_records(self, campaign_result):
        again = run(campaign_spec(), workers=2)
        assert [r["td_s"] for r in again] == [r["td_s"] for r in campaign_result]

    def test_impact_percent_matches_engine_penalties(
        self, campaign_result, reference_campaign
    ):
        campaign, reference = reference_campaign
        for record in campaign_result:
            expected = reference.penalty_percent_for(reference.record(record["key"]))
            if expected is None:
                assert record["impact_percent"] is None
            else:
                np.testing.assert_allclose(
                    record["impact_percent"], expected, rtol=1e-12
                )

    def test_store_round_trip(self, tmp_path):
        spec = campaign_spec(store_dir=str(tmp_path / "store"))
        first = run(spec)
        assert (tmp_path / "store" / "campaign.json").exists()
        meta = json.loads((tmp_path / "store" / "campaign.json").read_text())
        assert meta["signature"]["schema_version"] == spec.schema_version
        again = run(spec)
        assert [r["td_s"] for r in again] == [r["td_s"] for r in first]


class TestResultSet:
    def test_rows_and_len_and_iter(self, campaign_result):
        assert isinstance(campaign_result, ResultSet)
        assert len(campaign_result) == 4
        assert bool(campaign_result)
        rows = campaign_result.rows()
        assert rows == list(campaign_result)
        rows.append({})  # rows() hands out a copy
        assert len(campaign_result) == 4

    def test_to_json_shape(self, campaign_result):
        payload = json.loads(campaign_result.to_json())
        assert payload["kind"] == "campaign"
        assert payload["schema_version"] == campaign_result.spec.schema_version
        assert payload["n_records"] == 4
        assert payload["spec"]["array"]["sizes"] == [16]
        assert payload["campaign"]["array_sizes"] == [16]
        assert {record["kind"] for record in payload["records"]} == {
            "nominal",
            "corner",
        }

    def test_to_csv_keeps_campaign_columns(self, campaign_result):
        lines = campaign_result.to_csv().splitlines()
        assert lines[0].startswith("key,kind,scenario,")
        assert len(lines) == 5

    def test_to_text_renders_a_table(self, campaign_result):
        text = campaign_result.to_text()
        assert "Simulation campaign: 4 records" in text
        assert "(nominal)" in text and "LELELE" in text

    def test_generic_csv_for_non_campaign_kinds(self):
        result = run(ExperimentSpec(kind="worst_case"))
        lines = result.to_csv().splitlines()
        assert lines[0].split(",")[0] == "record"
        assert len(lines) == 4


class TestWorstCaseKind:
    def test_matches_the_worst_case_study(self, node):
        result = run(ExperimentSpec(kind="worst_case"))
        reference = {row.option_name: row for row in WorstCaseStudy(node).table1()}
        assert len(result) == len(reference)
        for record in result:
            row = reference[record["option"]]
            np.testing.assert_allclose(
                record["delta_cbl_percent"], row.delta_cbl_percent, rtol=1e-12
            )
            np.testing.assert_allclose(
                record["delta_rbl_percent"], row.delta_rbl_percent, rtol=1e-12
            )
        assert "Table I" in result.to_text()


class TestMonteCarloKind:
    def test_matches_table4(self, node):
        spec = ExperimentSpec(
            kind="monte_carlo",
            operation=OperationSpec(samples=40),
            execution=ExecutionSpec(seed=3),
        )
        result = run(spec)
        reference = MonteCarloTdpStudy(node, n_samples=40, seed=3).table4()
        assert len(result) == len(reference)
        for record, row in zip(result, reference):
            assert record["option"] == row.option_name
            assert record["overlay_three_sigma_nm"] == row.overlay_three_sigma_nm
            np.testing.assert_allclose(
                record["sigma_percent"], row.sigma_percent, rtol=1e-12
            )
        assert "Table IV" in result.to_text()


class TestOperationsKind:
    def test_write_operation_records(self):
        result = run(
            ExperimentSpec(
                kind="operations",
                array=ArraySpec(sizes=(16,)),
                operation=OperationSpec(operations=("write",)),
            )
        )
        assert len(result) == 3  # three options at one array size
        for record in result:
            assert record["operation"] == "write"
            assert record["unit"] == "s"
            assert record["nominal_value"] > 0.0
        assert "Operation suite (write)" in result.to_text()


class TestYieldKind:
    def test_compliance_records_and_requirement(self):
        result = run(
            ExperimentSpec(
                kind="yield",
                operation=OperationSpec(
                    samples=40, budget_percent=8.0, target_ppm=1000.0
                ),
                execution=ExecutionSpec(seed=3),
            )
        )
        assert len(result) == 6  # 4 LE3 budgets + SADP + EUV
        for record in result:
            assert 0.0 <= record["violation_probability"] <= 1.0
            assert 0.0 <= record["array_yield"] <= 1.0
        assert result.to_dict()["requirement"]["budget_percent"] == 8.0
        text = result.to_text()
        assert "violation_probability" in text and "ppm target" in text


class TestSpecLoading:
    def test_load_spec_passthrough_mapping_json_and_path(self, tmp_path):
        spec = campaign_spec()
        assert load_spec(spec) is spec
        assert load_spec(spec.to_dict()) == spec
        assert load_spec(spec.to_json()) == spec
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        assert load_spec(path) == spec
        assert load_spec(str(path)) == spec

    def test_load_spec_rejects_unreadable_path(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            load_spec(tmp_path / "missing.json")

    def test_load_spec_rejects_unsupported_types(self):
        with pytest.raises(SpecError, match="cannot load"):
            load_spec(42)


class TestExecutorBackends:
    def test_registry_is_complete(self):
        assert set(EXECUTOR_BACKENDS) == {"serial", "process", "auto"}

    def test_serial_resolves_one(self):
        assert resolve_workers(ExecutionSpec(backend="serial", workers=5)) == 1

    def test_process_resolves_the_requested_count(self):
        assert resolve_workers(ExecutionSpec(backend="process", workers=3)) == 3

    def test_auto_resolves_the_available_cpus(self):
        assert (
            resolve_workers(ExecutionSpec(backend="auto"))
            == SimulationCampaign.available_cpus()
        )


class TestOperationsScenarios:
    """The scenarios section of an operations spec is honoured, never
    silently replaced."""

    def test_explicit_scenarios_are_used(self):
        from repro.core.spec import ScenarioSpec

        result = run(
            ExperimentSpec(
                kind="operations",
                array=ArraySpec(sizes=(16,)),
                scenarios=(
                    ScenarioSpec(
                        label="write-strap64",
                        operation="write",
                        vss_strap_interval_cells=64,
                    ),
                ),
                operation=OperationSpec(operations=("write",)),
            )
        )
        assert list(result.payload["impact"]) == ["write-strap64"]
        assert all(record["operation"] == "write" for record in result)

    def test_mismatched_scenarios_and_operations_rejected(self):
        from repro.core.spec import ScenarioSpec

        spec = ExperimentSpec(
            kind="operations",
            scenarios=(ScenarioSpec(label="w", operation="write"),),
            operation=OperationSpec(operations=("hold_snm",)),
        )
        with pytest.raises(SpecError, match="must cover exactly"):
            run(spec)

    def test_default_scenarios_derive_from_operations(self):
        result = run(
            ExperimentSpec(
                kind="operations",
                array=ArraySpec(sizes=(16,)),
                operation=OperationSpec(operations=("write",)),
            )
        )
        assert list(result.payload["impact"]) == ["write"]


class TestGenericCsvQuoting:
    def test_nested_values_stay_parseable_json(self):
        import csv as csv_module
        import io as io_module

        result = run(ExperimentSpec(kind="worst_case"))
        reader = csv_module.reader(io_module.StringIO(result.to_csv()))
        rows = list(reader)
        headers = rows[0]
        corner_index = headers.index("corner_parameters")
        for row in rows[1:]:
            parsed = json.loads(row[corner_index])
            assert isinstance(parsed, dict) and parsed
