"""Tests of the observability layer: metrics, tracing, reports, sidecar."""

import json
import threading
import urllib.request
from dataclasses import replace

import pytest

from repro.cli import main
from repro.core.campaign import SimulationCampaign, scenario_grid
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    MetricsRegistry,
    absorb_cache_stats,
    absorb_queue_stats,
    observe_item_wall,
    record_item_failure,
    record_solver_delta,
    registry,
    reset_registry,
)
from repro.obs.trace import (
    CAMPAIGN_PHASES,
    active_tracer,
    campaign_attribution,
    disable_tracing,
    enable_tracing,
    read_trace,
    span,
    to_chrome_trace,
)
from repro.service.sidecar import StatsSidecar, sidecar_path_for
from repro.technology.node import n10
from repro.variability.doe import StudyDOE

FAST = ["--sizes", "16", "--samples", "40", "--seed", "3"]


@pytest.fixture(autouse=True)
def clean_observability():
    """Every test starts and ends with tracing off and a fresh registry."""
    disable_tracing()
    reset_registry()
    yield
    disable_tracing()
    reset_registry()


# -- metrics registry --------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_labels_are_separate_series(self):
        reg = MetricsRegistry()
        reg.inc("repro_runs_total", kind="campaign")
        reg.inc("repro_runs_total", kind="campaign")
        reg.inc("repro_runs_total", kind="worst_case")
        counters = reg.snapshot()["counters"]
        assert counters[("repro_runs_total", (("kind", "campaign"),))] == 2
        assert counters[("repro_runs_total", (("kind", "worst_case"),))] == 1

    def test_set_total_is_absolute_not_additive(self):
        reg = MetricsRegistry()
        reg.set_total("repro_cache_hits_total", 7)
        reg.set_total("repro_cache_hits_total", 7)
        assert reg.snapshot()["counters"][("repro_cache_hits_total", ())] == 7

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.003, buckets=(0.001, 0.01, 0.1))
        reg.observe("lat", 0.05, buckets=(0.001, 0.01, 0.1))
        reg.observe("lat", 99.0, buckets=(0.001, 0.01, 0.1))
        hist = reg.snapshot()["histograms"][("lat", ())]
        assert hist["counts"] == [0, 1, 2]  # le=0.001, le=0.01, le=0.1
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(0.003 + 0.05 + 99.0)

    def test_delta_since_reports_only_growth(self):
        reg = MetricsRegistry()
        reg.inc("a", 2)
        reg.inc("b", 5)
        before = reg.snapshot()
        reg.inc("a", 3)
        reg.observe("lat", 0.02)
        delta = reg.delta_since(before)
        assert delta["counters"] == {("a", ()): 3}
        assert delta["histograms"][("lat", ())]["count"] == 1

    def test_concurrent_increments_lose_nothing(self):
        reg = MetricsRegistry()
        n_threads, n_incs = 8, 1000

        def hammer():
            for _ in range(n_incs):
                reg.inc("hits", worker="shared")

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        counters = reg.snapshot()["counters"]
        assert counters[("hits", (("worker", "shared"),))] == n_threads * n_incs

    def test_prometheus_text_golden(self):
        reg = MetricsRegistry()
        reg.inc("repro_runs_total", kind="campaign", source="computed")
        reg.set_gauge("repro_queue_in_flight", 2)
        reg.observe("repro_item_wall_seconds", 0.02, buckets=(0.01, 0.1), operation="read")
        assert reg.to_prometheus() == (
            "# HELP repro_runs_total Completed repro.api.run invocations by spec kind.\n"
            "# TYPE repro_runs_total counter\n"
            'repro_runs_total{kind="campaign",source="computed"} 1\n'
            "# HELP repro_queue_in_flight Jobs currently queued or computing.\n"
            "# TYPE repro_queue_in_flight gauge\n"
            "repro_queue_in_flight 2\n"
            "# HELP repro_item_wall_seconds Per-item measurement wall time.\n"
            "# TYPE repro_item_wall_seconds histogram\n"
            'repro_item_wall_seconds_bucket{operation="read",le="0.01"} 0\n'
            'repro_item_wall_seconds_bucket{operation="read",le="0.1"} 1\n'
            'repro_item_wall_seconds_bucket{operation="read",le="+Inf"} 1\n'
            'repro_item_wall_seconds_sum{operation="read"} 0.02\n'
            'repro_item_wall_seconds_count{operation="read"} 1\n'
        )

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.inc("odd", note='quote " slash \\ newline \n end')
        line = reg.to_prometheus().splitlines()[-1]
        assert line == 'odd{note="quote \\" slash \\\\ newline \\n end"} 1'

    def test_default_buckets_cover_ms_to_minute(self):
        assert DEFAULT_LATENCY_BUCKETS_S[0] == 0.001
        assert DEFAULT_LATENCY_BUCKETS_S[-1] == 60.0
        assert list(DEFAULT_LATENCY_BUCKETS_S) == sorted(DEFAULT_LATENCY_BUCKETS_S)


class TestAdapters:
    def test_solver_delta_skips_zero_counters(self):
        record_solver_delta({"factorizations": 3, "dense_solves": 0})
        counters = registry().snapshot()["counters"]
        assert counters[("repro_solver_factorizations_total", ())] == 3
        assert ("repro_solver_dense_solves_total", ()) not in counters

    def test_cache_stats_absorbed_as_absolute_totals(self):
        stats = {"hits": 4, "misses": 1, "entries": 2, "max_entries": None}
        absorb_cache_stats(stats)
        absorb_cache_stats(stats)  # idempotent: source of truth accumulates
        snap = registry().snapshot()
        assert snap["counters"][("repro_cache_hits_total", ())] == 4
        assert snap["gauges"][("repro_cache_entries", ())] == 2
        assert snap["gauges"][("repro_cache_max_entries", ())] == 0

    def test_queue_stats_include_journal_gauges(self):
        absorb_queue_stats(
            {"submitted": 9, "in_flight": 1, "journal": {"outstanding": 3, "skipped_lines": 1}}
        )
        snap = registry().snapshot()
        assert snap["counters"][("repro_queue_submitted_total", ())] == 9
        assert snap["gauges"][("repro_journal_outstanding", ())] == 3
        assert snap["gauges"][("repro_journal_skipped_lines", ())] == 1

    def test_failures_and_item_walls(self):
        record_item_failure("solver_error")
        observe_item_wall(0.2, "read")
        snap = registry().snapshot()
        key = ("repro_item_failures_total", (("classification", "solver_error"),))
        assert snap["counters"][key] == 1
        hist = snap["histograms"][("repro_item_wall_seconds", (("operation", "read"),))]
        assert hist["count"] == 1


# -- tracing -----------------------------------------------------------------------------


class TestTracing:
    def test_disabled_by_default_and_costless(self, tmp_path):
        assert active_tracer() is None
        first = span("anything", key="value")
        with first:
            pass
        assert span("other") is first  # the shared no-op singleton
        assert list(tmp_path.iterdir()) == []

    def test_spans_record_nesting_args_and_errors(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        enable_tracing(trace)
        with span("outer", item="x") as outer:
            outer.annotate(extra=1)
            with span("inner"):
                pass
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("no")
        disable_tracing()

        records = {r["name"]: r for r in read_trace(trace)}
        assert records["outer"]["depth"] == 0
        assert records["inner"]["depth"] == 1
        assert records["outer"]["args"] == {"item": "x", "extra": 1}
        assert records["boom"]["error"] == "ValueError"
        assert all(r["dur"] >= 0 and r["ts"] > 0 for r in records.values())

    def test_read_trace_skips_torn_and_corrupt_lines(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            '{"name": "good", "ts": 1, "dur": 2}\n'
            "not json at all\n"
            '{"name": "torn", "ts": 3'  # no newline: a crash mid-write
        )
        records = read_trace(trace)
        assert [r["name"] for r in records] == ["good"]
        assert read_trace(tmp_path / "missing.jsonl") == []

    def test_worker_merge_tolerates_torn_tails(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        tracer = enable_tracing(trace)
        worker = tracer.worker_dir / "trace-12345.jsonl"
        worker.write_text(
            '{"name": "w1", "ts": 1, "dur": 1, "pid": 12345}\n'
            "garbage line\n"
            '{"name": "w2", "ts": 2'  # torn tail, no newline
        )
        assert tracer.merge_workers() == 1
        assert tracer.skipped_lines == 1

        # The torn record completes later (the worker kept writing).
        with open(worker, "a", encoding="utf-8") as fh:
            fh.write(', "dur": 9, "pid": 12345}\n')
        assert tracer.merge_workers() == 1
        disable_tracing()

        names = [r["name"] for r in read_trace(trace)]
        assert names == ["w1", "w2"]
        assert not tracer.worker_dir.exists()  # drained files cleaned up

    def test_enable_truncates_previous_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        enable_tracing(trace)
        with span("old"):
            pass
        disable_tracing()
        enable_tracing(trace)
        with span("new"):
            pass
        disable_tracing()
        assert [r["name"] for r in read_trace(trace)] == ["new"]

    def test_chrome_trace_export(self):
        records = [{"name": "a", "ph": "X", "ts": 5, "dur": 7, "pid": 1, "tid": 2,
                    "args": {"item": "x"}}]
        chrome = to_chrome_trace(records)
        assert chrome["displayTimeUnit"] == "ms"
        event = chrome["traceEvents"][0]
        assert event["name"] == "a" and event["dur"] == 7
        assert event["cat"] == "repro" and event["args"] == {"item": "x"}

    def test_attribution_unions_nested_phases(self):
        records = [
            {"name": "campaign.run", "ts": 0, "dur": 100, "pid": 1},
            {"name": "campaign.prepare", "ts": 0, "dur": 40, "pid": 1},
            {"name": "campaign.joint_solve", "ts": 40, "dur": 50, "pid": 1},
            # Nested inside the joint solve: must not double-count.
            {"name": "campaign.commit", "ts": 50, "dur": 10, "pid": 1},
            # Another process: outside this run's window.
            {"name": "campaign.prepare", "ts": 0, "dur": 100, "pid": 2},
        ]
        attribution = campaign_attribution(records)
        assert attribution["campaign_runs"] == 1
        assert attribution["campaign_wall_s"] == pytest.approx(100e-6)
        assert attribution["attributed_wall_s"] == pytest.approx(90e-6)
        assert attribution["coverage_percent"] == pytest.approx(90.0)
        assert {"item.measure", "campaign.chunk"} <= CAMPAIGN_PHASES


class TestTracedCampaignParity:
    def test_records_bit_identical_with_tracing_on(self, tmp_path):
        def run_once():
            campaign = SimulationCampaign(
                n10(),
                doe=StudyDOE(array_sizes=(16,)),
                scenarios=scenario_grid(stored_values=(0, 1)),
            )
            return campaign.run(kinds=("nominal",))

        def keyed(results):
            return {r.key: replace(r, wall_s=0.0) for r in results.records}

        untraced = run_once()
        trace = tmp_path / "trace.jsonl"
        enable_tracing(trace)
        try:
            traced = run_once()
        finally:
            disable_tracing()

        assert not untraced.failures and not traced.failures
        assert keyed(traced) == keyed(untraced)

        records = read_trace(trace)
        assert any(r["name"] == "campaign.run" for r in records)
        attribution = campaign_attribution(records)
        assert attribution["coverage_percent"] >= 95.0


# -- the report CLI verb -----------------------------------------------------------------


class TestReportCli:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        spec_path = tmp_path / "campaign.json"
        assert main(["spec", "dump", "--output", str(spec_path)] + FAST) == 0
        trace = tmp_path / "trace.jsonl"
        out = tmp_path / "run.json"
        assert main(["run", str(spec_path), "--trace", str(trace),
                     "--format", "json", "--output", str(out)]) == 0
        assert active_tracer() is None  # run turned tracing back off
        return trace

    def test_report_summarises_a_trace(self, trace_file, capsys):
        assert main(["report", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "Trace summary" in out
        assert "campaign.run" in out
        assert "Campaign attribution:" in out

    def test_report_exports_chrome_trace(self, trace_file, tmp_path, capsys):
        chrome_path = tmp_path / "chrome.json"
        assert main(["report", str(trace_file), "--chrome-out", str(chrome_path)]) == 0
        chrome = json.loads(chrome_path.read_text())
        assert chrome["traceEvents"]

    def test_report_errors_are_typed(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "missing.jsonl")]) == 2
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["report", str(empty)]) == 2
        assert main(["report", str(tmp_path)]) == 2  # dir without trace.jsonl


# -- the stats sidecar and the service surface -------------------------------------------


class TestStatsSidecar:
    def test_path_is_a_sibling_of_the_cache_dir(self, tmp_path):
        assert sidecar_path_for(tmp_path / "cache") == tmp_path / "cache.stats.json"

    def test_counters_accumulate_across_restarts(self, tmp_path):
        path = tmp_path / "cache.stats.json"
        first = StatsSidecar(path)
        cache_total = first.cumulative_cache({"hits": 2, "entries": 5})
        assert cache_total["hits"] == 2 and cache_total["entries"] == 5
        first.persist(cache_total, first.cumulative_queue({"submitted": 3}))

        second = StatsSidecar(path)  # the restarted process
        merged = second.cumulative_cache({"hits": 4, "entries": 1})
        assert merged["hits"] == 6
        assert merged["entries"] == 1  # levels describe now, not a lifetime
        assert second.cumulative_queue({"submitted": 1})["submitted"] == 4

    def test_corrupt_sidecar_loads_as_zeros(self, tmp_path):
        path = tmp_path / "cache.stats.json"
        path.write_text("{definitely not json")
        sidecar = StatsSidecar(path)
        assert sidecar.cumulative_cache({"hits": 1})["hits"] == 1


class TestServiceSurface:
    def test_metrics_endpoint_and_cumulative_health(self, tmp_path):
        from repro.service import ExperimentClient, ExperimentServer

        cache_dir = tmp_path / "cache"

        def get(url):
            with urllib.request.urlopen(url, timeout=30) as response:
                return response.headers.get("Content-Type"), response.read().decode()

        with ExperimentServer(cache_dir=cache_dir, workers=1) as server:
            client = ExperimentClient(server.url, timeout_s=30.0)
            spec = tmp_path / "spec.json"
            # A campaign spec: its compute exercises the circuit solver,
            # so the solver counters must surface in /v1/metrics too.
            assert main(["spec", "dump", "--output", str(spec)] + FAST) == 0
            ticket = client.submit(spec)
            client.wait(ticket["id"], timeout_s=120.0)
            client.submit(spec)  # cache hit

            health = client.health()
            assert health["queue"]["submitted"] == 2
            assert health["queue"]["cache_hits"] == 1
            assert "observability" in health
            assert health["observability"]["tracing"] is False

            content_type, text = get(server.url + "/v1/metrics")
            assert content_type.startswith("text/plain; version=0.0.4")
            assert "repro_queue_submitted_total 2" in text
            assert "repro_cache_stores_total 1" in text
            assert 'repro_http_requests_total{method="GET",status="200"}' in text
            # The compute ran in this process: solver counters landed too.
            assert "repro_solver_factorizations_total" in text

        # Restart against the same cache dir: the sidecar carries the
        # lifetime totals, so the counters keep growing instead of resetting.
        with ExperimentServer(cache_dir=cache_dir, workers=1) as server:
            client = ExperimentClient(server.url, timeout_s=30.0)
            ticket = client.submit(tmp_path / "spec.json")
            assert ticket["cached"]
            health = client.health()
            assert health["queue"]["submitted"] == 3
            assert health["cache"]["hits"] >= 2
            assert health["observability"]["stats_sidecar"].endswith("cache.stats.json")
