"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so that editable installs work on environments whose setuptools/pip
predate full PEP 660 support (no ``wheel`` package available offline).
"""

from setuptools import setup

setup()
